"""Typed failure classes for the simulated stack.

The seed code let bare ``RuntimeError`` escape the event loop — one
unlucky high-loss seed aborted an entire campaign (or crashed a pool
worker under ``--jobs N``). Every failure a fault plan can provoke now
has a type, so the experiment layer can convert it into a recorded
:class:`~repro.faults.outcome.HandshakeOutcome` instead of unwinding.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for simulation-level (non-TLS) failures."""


class TransportError(FaultError):
    """The simulated transport gave up (retransmission exhaustion,
    connection driven in an impossible state)."""


class FailureQuotaExceeded(FaultError):
    """An experiment burned its failure budget without enough successes.

    Raised by :func:`repro.core.experiment.run_experiment` when the
    retry-with-fresh-seed policy exhausts the per-config quota — the one
    failure that *should* surface to the operator, because it means the
    (scenario, fault plan) combination cannot produce a measurement.
    """
