"""repro.faults — deterministic fault injection & failure taxonomy.

The robustness subsystem: declarative :class:`FaultPlan` recipes that the
netem layer executes from the forkable DRBG (seed-reproducible chaos),
typed :class:`HandshakeOutcome` values every simulated handshake ends in,
and the typed errors (:class:`TransportError`, ...) that replace bare
``RuntimeError`` unwinding through the event loop.

Layering: ``faults`` sits between ``tls`` and ``netsim`` — it may import
``tls`` (alert names) and below; ``netsim`` and ``core`` import it.
"""

from repro.faults.errors import FailureQuotaExceeded, FaultError, TransportError
from repro.faults.outcome import (
    FAILURE_KINDS,
    KIND_ALERT,
    KIND_SUCCESS,
    KIND_TIMEOUT,
    KIND_TRANSPORT,
    SUCCESS,
    HandshakeOutcome,
)
from repro.faults.plan import (
    CORRUPT_CHECKSUM,
    CORRUPT_DELIVER,
    FAULT_PLANS,
    FaultPlan,
    resolve_fault_plan,
)

__all__ = [
    "CORRUPT_CHECKSUM",
    "CORRUPT_DELIVER",
    "FAILURE_KINDS",
    "FAULT_PLANS",
    "FailureQuotaExceeded",
    "FaultError",
    "FaultPlan",
    "HandshakeOutcome",
    "KIND_ALERT",
    "KIND_SUCCESS",
    "KIND_TIMEOUT",
    "KIND_TRANSPORT",
    "SUCCESS",
    "TransportError",
    "resolve_fault_plan",
]
