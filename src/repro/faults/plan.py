"""Declarative fault plans: the deterministic-chaos DSL.

A :class:`FaultPlan` names the ``tc netem`` knobs the paper's scenarios
leave at zero — per-frame corruption, duplication, and reordering — plus
testbed-only precision knobs (``corrupt_nth``). Plans compose with the
existing ``SCENARIOS`` table: the scenario sets loss/delay/rate, the plan
layers chaos on top, and both draw from the same forkable DRBG, so every
injected fault is seed-reproducible and cacheable.

Corruption has two fidelity modes:

``checksum`` (default)
    The bit-flipped frame fails the receiver's TCP checksum and is
    discarded *after* consuming link capacity — what ``tc netem corrupt``
    does to a real TCP flow in almost every case. Works with scripted
    replay (the transport recovers; payload contents never reach TLS).

``deliver``
    The flipped bytes are delivered to the TLS layer — the rare
    checksum-collision case, kept as an explicit mode because it is the
    one that exercises record-layer alerts (``bad_record_mac``,
    ``decode_error``). Requires real TLS endpoints: scripted replay only
    counts bytes and would sail past a flipped bit.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

CORRUPT_CHECKSUM = "checksum"
CORRUPT_DELIVER = "deliver"


@dataclass(frozen=True)
class FaultPlan:
    """One declarative chaos recipe, applied per link direction."""

    corrupt: float = 0.0          # per-data-frame bit-flip probability
    corrupt_nth: int = 0          # flip a bit in exactly the Nth data frame (1-based; 0 = off)
    corrupt_mode: str = CORRUPT_CHECKSUM
    dup: float = 0.0              # per-frame duplication probability
    reorder: float = 0.0          # probability a frame is held back past its successors
    reorder_delay: float = 0.01   # extra holding delay for reordered frames, seconds

    def __post_init__(self) -> None:
        for knob in ("corrupt", "dup", "reorder"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be a probability in [0, 1], got {value!r}")
        if self.corrupt_nth < 0:
            raise ValueError(f"corrupt_nth must be >= 0, got {self.corrupt_nth!r}")
        if self.reorder_delay < 0:
            raise ValueError(f"reorder_delay must be >= 0, got {self.reorder_delay!r}")
        if self.corrupt_mode not in (CORRUPT_CHECKSUM, CORRUPT_DELIVER):
            raise ValueError(
                f"corrupt_mode must be '{CORRUPT_CHECKSUM}' or '{CORRUPT_DELIVER}', "
                f"got {self.corrupt_mode!r}")

    @property
    def active(self) -> bool:
        return bool(self.corrupt or self.corrupt_nth or self.dup or self.reorder)

    @property
    def spec(self) -> str:
        """Canonical ``key=value`` encoding (field order, defaults omitted).

        Stable across processes, so it is safe inside cache keys; the
        inactive plan canonicalizes to ``"none"``.
        """
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec (the CLI / config syntax)."""
        if spec in ("", "none"):
            return cls()
        kwargs: dict[str, object] = {}
        valid = {field.name: field.type for field in fields(cls)}
        for part in spec.split(","):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in valid:
                raise ValueError(
                    f"bad fault-plan entry {part!r}; expected key=value with key in "
                    f"{sorted(valid)}")
            raw = raw.strip()
            if key == "corrupt_mode":
                kwargs[key] = raw
            elif key == "corrupt_nth":
                kwargs[key] = int(raw)
            else:
                kwargs[key] = float(raw)
        return cls(**kwargs)


# Named plans, composable with any scenario (``--faults chaos``).
FAULT_PLANS: dict[str, FaultPlan] = {
    "none": FaultPlan(),
    # steady background bit-rot, invisible to TLS (checksum discards)
    "bit-rot": FaultPlan(corrupt=0.02),
    # the checksum-collision case: flipped bytes reach the record layer
    "bit-rot-deliver": FaultPlan(corrupt=0.02, corrupt_mode=CORRUPT_DELIVER),
    # duplicated frames (LTE handover retransmissions, buggy middleboxes)
    "dup": FaultPlan(dup=0.05),
    # held-back frames arriving behind their successors
    "reorder": FaultPlan(reorder=0.10, reorder_delay=0.03),
    # everything at once, still seed-reproducible
    "chaos": FaultPlan(corrupt=0.01, dup=0.02, reorder=0.05, reorder_delay=0.02),
}


def resolve_fault_plan(plan: "FaultPlan | str | None") -> FaultPlan:
    """Coerce a plan object, plan name, or ``key=value`` spec to a plan."""
    if plan is None:
        return FAULT_PLANS["none"]
    if isinstance(plan, FaultPlan):
        return plan
    named = FAULT_PLANS.get(plan)
    if named is not None:
        return named
    return FaultPlan.parse(plan)
