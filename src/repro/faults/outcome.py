"""Typed handshake outcomes: how a simulated handshake ended.

Every handshake run through the testbed terminates in exactly one
outcome — the happy path is just the ``success`` kind. Failures carry
enough structure for results and metrics to say *why* a run failed
(``handshake.failures.<kind>`` counters, ``outcomes`` histogram on
:class:`~repro.core.experiment.ExperimentResult`) without anyone having
to parse exception strings.
"""

from __future__ import annotations

from dataclasses import dataclass

KIND_SUCCESS = "success"
KIND_ALERT = "alert"                     # a TLS endpoint aborted with an alert
KIND_TIMEOUT = "timeout"                 # simulated clock ran out / stack stalled
KIND_TRANSPORT = "transport-error"       # TCP gave up (retransmission limit)

FAILURE_KINDS = (KIND_ALERT, KIND_TIMEOUT, KIND_TRANSPORT)


@dataclass(frozen=True)
class HandshakeOutcome:
    """Terminal state of one simulated handshake.

    ``alert`` is the TLS alert description code when ``kind == "alert"``
    (the *originating* endpoint's alert, not the peer's echo); ``detail``
    is a short human-readable reason, never used for control flow.
    """

    kind: str
    detail: str = ""
    alert: int | None = None

    @property
    def ok(self) -> bool:
        return self.kind == KIND_SUCCESS

    @property
    def key(self) -> str:
        """Stable dotted key for metrics / result histograms.

        ``success``, ``timeout``, ``transport-error``, or
        ``alert.<alert-name>`` (e.g. ``alert.bad_record_mac``).
        """
        if self.kind == KIND_ALERT and self.alert is not None:
            from repro.tls.errors import alert_name

            return f"{self.kind}.{alert_name(self.alert)}"
        return self.kind

    # -- constructors --------------------------------------------------------
    @classmethod
    def success(cls) -> "HandshakeOutcome":
        return cls(KIND_SUCCESS)

    @classmethod
    def from_alert(cls, alert: int, detail: str = "") -> "HandshakeOutcome":
        return cls(KIND_ALERT, detail=detail, alert=alert)

    @classmethod
    def timeout(cls, detail: str = "") -> "HandshakeOutcome":
        return cls(KIND_TIMEOUT, detail=detail)

    @classmethod
    def transport(cls, detail: str = "") -> "HandshakeOutcome":
        return cls(KIND_TRANSPORT, detail=detail)


SUCCESS = HandshakeOutcome.success()
