"""Frame model and byte accounting.

On-wire sizes follow the paper's testbed: Ethernet (14 B) + IPv4 (20 B) +
TCP with timestamps (32 B) = 66 B of headers per segment; SYN frames carry
8 extra bytes of options (MSS/SACK/WScale).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

HEADER_OVERHEAD = 66
SYN_EXTRA_OPTIONS = 8

_frame_counter = itertools.count()


@dataclass
class Segment:
    src: str
    dst: str
    seq: int                 # first payload byte (TCP sequence space)
    payload: bytes
    ack: int                 # cumulative ack number
    syn: bool = False
    fin: bool = False
    push: bool = False
    is_ack_only: bool = False
    labels: tuple[str, ...] = ()   # TLS flight labels carried (ground truth)
    frame_id: int = field(default_factory=lambda: next(_frame_counter))

    @property
    def wire_bytes(self) -> int:
        extra = SYN_EXTRA_OPTIONS if self.syn else 0
        return HEADER_OVERHEAD + extra + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag for flag, on in
            (("S", self.syn), ("F", self.fin), ("P", self.push), ("A", True)) if on
        )
        return (f"<Seg {self.src}->{self.dst} seq={self.seq} len={len(self.payload)} "
                f"{flags} {'/'.join(self.labels)}>")
