"""The hardware profile: CPU cost per cryptographic operation.

Pure-Python crypto is orders of magnitude slower than the C the paper ran,
*with different relative costs*, so the simulated clock advances by this
calibrated per-(algorithm, operation) table instead of wall time (see
DESIGN.md §1). Entries are in milliseconds on the paper's Intel Xeon
D-1518 @ 2.2 GHz.

Provenance of each entry (also §4 of DESIGN.md):

- Classical EC: OpenSSL 1.1.1 ``speed ecdh/ecdsa`` ratios — P-256 has an
  optimized implementation, P-384/P-521 use the generic path and are
  ~15x/30x slower; anchored to the paper's Table 2a part-A medians
  (p256 0.33 ms, p384 3.09 ms, p521 6.97 ms).
- RSA: OpenSSL ``speed rsa`` scaled to 2.2 GHz, anchored to Table 2b part-B
  (rsa:1024 .. rsa:4096 ~ 0.35 / 1.15 / 3.1 / 6.5 ms sign — the classic
  ~cubic growth).
- PQC: liboqs 0.7 (round-3 code) benchmark ratios scaled to 2.2 GHz,
  anchored where the paper exposes an algorithm directly (BIKE decaps from
  bikel1/bikel3 part B, SPHINCS+ sign from Table 2b part B, HQC encaps
  from Table 2a part A).
- Generic TLS costs (framing, record AEAD, kernel, driver): chosen so the
  white-box totals and library distribution of Table 3 are approximated
  (libcrypto + kernel + libssl ~ 90 %).

Hybrids cost the sum of their components (computed recursively).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pqc.hybrid import CompositeSignature, HybridKem
from repro.pqc.registry import get_kem, get_sig

MS = 1e-3

# (keygen, encaps, decaps) in ms
KEM_COSTS: dict[str, tuple[float, float, float]] = {
    "x25519":       (0.045, 0.090, 0.045),
    "p256":         (0.110, 0.220, 0.110),
    "p384":         (1.500, 3.000, 1.500),
    "p521":         (3.400, 6.800, 3.400),
    "kyber512":     (0.030, 0.040, 0.030),
    "kyber768":     (0.050, 0.060, 0.045),
    "kyber1024":    (0.070, 0.080, 0.065),
    "kyber90s512":  (0.024, 0.032, 0.024),
    "kyber90s768":  (0.040, 0.048, 0.036),
    "kyber90s1024": (0.056, 0.064, 0.052),
    "bikel1":       (0.600, 0.120, 2.100),
    "bikel3":       (1.900, 0.280, 5.200),
    "hqc128":       (0.150, 0.150, 0.250),
    "hqc192":       (0.300, 0.300, 0.500),
    "hqc256":       (0.550, 0.550, 0.900),
}

# (sign, verify) in ms
SIG_COSTS: dict[str, tuple[float, float]] = {
    "rsa:1024":   (0.350, 0.020),
    "rsa:2048":   (1.150, 0.040),
    "rsa:3072":   (3.100, 0.070),
    "rsa:4096":   (6.500, 0.110),
    "p256ecdsa":  (0.120, 0.140),
    "p384ecdsa":  (1.550, 1.600),
    "p521ecdsa":  (3.500, 3.500),
    "falcon512":  (0.350, 0.040),
    "falcon1024": (0.750, 0.090),
    "dilithium2":     (0.250, 0.080),
    "dilithium3":     (0.400, 0.120),
    "dilithium5":     (0.550, 0.180),
    "dilithium2_aes": (0.200, 0.065),
    "dilithium3_aes": (0.330, 0.100),
    "dilithium5_aes": (0.460, 0.150),
    "sphincs128": (13.500, 0.700),
    "sphincs192": (22.500, 1.000),
    "sphincs256": (48.000, 1.100),
    "sphincs-shake-128f": (20.000, 1.100),
}

# generic work: (fixed ms, ms per byte), attribution
GENERIC_COSTS: dict[str, tuple[float, float, str]] = {
    "tls_frame":    (0.040, 0.000020, "libssl"),
    "record_crypt": (0.008, 0.0000011, "libcrypto"),
    "key_schedule": (0.060, 0.0, "libcrypto"),
    "finished_mac": (0.015, 0.0, "libcrypto"),
    # session lifecycle: PSK binder HMAC chain (compute or verify) and
    # NewSessionTicket minting/receipt (HKDF expand + ticket bookkeeping)
    "psk_binder":     (0.018, 0.0, "libcrypto"),
    "session_ticket": (0.025, 0.000002, "libssl"),
}

# per-packet processing (ms), attribution
KERNEL_PER_PACKET = 0.030
DRIVER_PER_PACKET = 0.007
# experiment-tooling CPU per handshake (the paper's python testbed scripts)
PYTHON_PER_HANDSHAKE = 0.080

# the paper notes perf sampling itself perturbs latencies (§4); white-box
# runs scale CPU costs by this factor
PROFILING_OVERHEAD = 1.35


@dataclass(frozen=True)
class Cost:
    ms: float
    library: str

    @property
    def seconds(self) -> float:
        return self.ms * MS


def op_label(op) -> str:
    """Span name for one :class:`repro.tls.actions.CryptoOp`.

    ``kem_decaps:kyber512 (SH)`` — operation, algorithm when keyed, and
    the TLS-message context the endpoint recorded.
    """
    name = f"{op.op}:{op.algorithm}" if op.algorithm else op.op
    detail = getattr(op, "detail", "")
    return f"{name} ({detail})" if detail else name


def _kem_cost(name: str, index: int) -> float:
    if name in KEM_COSTS:
        return KEM_COSTS[name][index]
    kem = get_kem(name)
    if isinstance(kem, HybridKem):
        return _kem_cost(kem.classical.name, index) + _kem_cost(kem.pq.name, index)
    raise KeyError(f"no cost entry for KEM {name!r}")


def _sig_cost(name: str, index: int) -> float:
    if name in SIG_COSTS:
        return SIG_COSTS[name][index]
    sig = get_sig(name)
    if isinstance(sig, CompositeSignature):
        return _sig_cost(sig.classical.name, index) + _sig_cost(sig.pq.name, index)
    raise KeyError(f"no cost entry for signature scheme {name!r}")


def _kem_attribution(name: str, role: str) -> str:
    kem = get_kem(name)
    return kem.client_attribution if role == "client" else kem.server_attribution


class CostModel:
    """Maps CryptoOps to simulated CPU time with a library attribution."""

    def __init__(self, profiling: bool = False):
        self._factor = PROFILING_OVERHEAD if profiling else 1.0

    def op_cost(self, op, role: str) -> Cost:
        """Price one :class:`repro.tls.actions.CryptoOp` for *role*."""
        kind = op.op
        if kind == "kem_keygen":
            return self._mk(_kem_cost(op.algorithm, 0), _kem_attribution(op.algorithm, role))
        if kind == "kem_encaps":
            return self._mk(_kem_cost(op.algorithm, 1), _kem_attribution(op.algorithm, role))
        if kind == "kem_decaps":
            return self._mk(_kem_cost(op.algorithm, 2), _kem_attribution(op.algorithm, role))
        if kind == "sig_sign":
            return self._mk(_sig_cost(op.algorithm, 0), "libcrypto")
        if kind in ("sig_verify", "cert_verify"):
            return self._mk(_sig_cost(op.algorithm, 1), "libcrypto")
        if kind in GENERIC_COSTS:
            fixed, per_byte, library = GENERIC_COSTS[kind]
            return self._mk(fixed + per_byte * op.size, library)
        raise KeyError(f"no cost model entry for op {kind!r}")

    def packet_cost(self) -> list[Cost]:
        """CPU charged per packet sent or received."""
        return [
            self._mk(KERNEL_PER_PACKET, "kernel"),
            self._mk(DRIVER_PER_PACKET, "ixgbe"),
        ]

    def tooling_cost(self) -> Cost:
        """Per-handshake testbed tooling work (python, libc)."""
        return self._mk(PYTHON_PER_HANDSHAKE, "python")

    def _mk(self, ms: float, library: str) -> Cost:
        return Cost(ms * self._factor, library)
