"""The 3-node testbed: client host, server host, tapped links between them.

``Testbed.run_handshake`` executes one complete TLS 1.3 handshake over
simulated TCP and returns a :class:`HandshakeTrace` with everything the
paper measures: the two wire-visible phases, data volumes, packet counts,
and per-library CPU time on both hosts.

The same wiring also runs *scripted* endpoints (recorded action scripts,
see :mod:`repro.netsim.scripted`) so a 60-second measurement period does
not have to re-run heavyweight crypto for every sequential handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.crypto.drbg import Drbg
from repro.faults.outcome import SUCCESS, HandshakeOutcome
from repro.faults.plan import FaultPlan
from repro.netsim.costmodel import CostModel
from repro.netsim.eventloop import EventLoop
from repro.netsim.hosts import Host
from repro.netsim.netem import Link, NetemConfig, SCENARIOS
from repro.netsim.tcp import TcpEndpoint
from repro.netsim.timestamper import Timestamper
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.tls.certs import Certificate, TrustStore
from repro.tls.client import TlsClient
from repro.tls.errors import PeerAlert, TlsError
from repro.tls.server import BufferPolicy, TlsServer


class App(Protocol):
    """What a host runs: produce actions on connect / on received bytes."""

    def start(self) -> list: ...          # client side, empty list for servers
    def receive(self, data: bytes) -> list: ...
    @property
    def handshake_complete(self) -> bool: ...
    # terminal failure bookkeeping (False/None on apps that cannot fail)
    failed: bool
    failure: Exception | None


@dataclass(frozen=True)
class HandshakeTrace:
    part_a: float                  # CH -> SH (seconds)
    part_b: float                  # SH -> client Finished
    total: float                   # CH -> client Finished
    wall_end: float                # when the last event settled (incl. ACKs)
    client_wire_bytes: int
    server_wire_bytes: int
    client_packets: int
    server_packets: int
    client_cpu: dict               # library -> seconds
    server_cpu: dict
    flight_labels: tuple[str, ...]
    outcome: HandshakeOutcome = SUCCESS  # how the handshake ended
    # absolute phase timestamps on the simulated clock (0 = TCP connect);
    # zeroed, like the phase durations, when no complete handshake happened
    t_ch: float = 0.0                    # ClientHello on the wire
    t_sh: float = 0.0                    # ServerHello flight starts
    t_fin: float = 0.0                   # client Finished on the wire
    # connect -> first application byte back at the client: the client
    # Finished timestamp plus one analytic MSS transit of the response
    # (read with getattr for pre-lifecycle cached traces)
    ttfb: float = 0.0


# analytic first-response transit: one full MSS segment with TCP/IP/
# Ethernet framing (matches repro.traffic.profile's transit model)
_TTFB_MSS = 1448
_TTFB_HEADER_BYTES = 66


def first_byte_transit(scenario: NetemConfig) -> float:
    """One-way flight time of the first application-data segment."""
    wire_bits = 8.0 * (_TTFB_MSS + _TTFB_HEADER_BYTES)
    return scenario.one_way_delay + wire_bits / scenario.rate_bps


def _tapped(tap_fn, tracer, direction: str):
    """Wrap a Timestamper tap so every frame also lands in the trace."""
    track = f"wire-{direction}"

    def _record(time: float, segment) -> None:
        tap_fn(time, segment)
        if segment.syn:
            name = "SYN"
        elif segment.labels:
            name = "/".join(segment.labels)
        elif segment.is_ack_only:
            name = "ACK"
        else:
            name = "seg"
        tracer.instant(track, name, time, cat="wire",
                       seq=segment.seq, bytes=segment.wire_bytes)
    return _record


def _determine_outcome(client_app, server_app, client_tcp, server_tcp,
                       client_host, server_host, *, scenario_name: str,
                       max_sim_seconds: float) -> HandshakeOutcome:
    """Classify how a non-successful run ended (checked in causal order)."""
    # a TLS endpoint aborted: the alert originator is authoritative
    for app in (client_app, server_app):
        failure = app.failure if app.failed else None
        if isinstance(failure, TlsError) and not isinstance(failure, PeerAlert):
            return HandshakeOutcome.from_alert(failure.alert, detail=str(failure))
    for app in (client_app, server_app):
        if app.failed and isinstance(app.failure, PeerAlert):
            return HandshakeOutcome.from_alert(app.failure.code,
                                               detail=str(app.failure))
    # host backstop (a TlsError that escaped the endpoint's own guard)
    for host in (client_host, server_host):
        if isinstance(host.failure, TlsError):
            return HandshakeOutcome.from_alert(host.failure.alert,
                                               detail=str(host.failure))
    # the transport gave up
    for tcp in (client_tcp, server_tcp):
        if tcp.failure is not None:
            return HandshakeOutcome.transport(f"{tcp.name}: {tcp.failure}")
    # nothing failed, nothing finished: the clock ran out
    return HandshakeOutcome.timeout(
        f"incomplete after {max_sim_seconds} simulated seconds "
        f"(scenario {scenario_name})")


def run_simulated_handshake(client_app: App, server_app: App, *,
                            scenario: NetemConfig, netem_drbg: Drbg,
                            cost_model: CostModel,
                            max_sim_seconds: float = 120.0,
                            plan: FaultPlan | None = None,
                            tracer=NULL_TRACER,
                            metrics=NULL_METRICS) -> HandshakeTrace:
    """Wire two apps through TCP + netem + taps and run to a typed outcome.

    Never raises on handshake failure: every run ends in the trace's
    ``outcome`` (success, alert, timeout, or transport-error), with the
    timing fields zeroed when no complete handshake happened. *plan*
    layers fault injection (corruption/duplication/reordering) on both
    link directions. *tracer* / *metrics* default to the null
    implementations: an un-observed run takes exactly the
    pre-observability code paths and produces bit-identical traces.
    """
    loop = EventLoop()
    tap = Timestamper()
    client_host = Host("client", "client", loop, cost_model, tracer=tracer)
    server_host = Host("server", "server", loop, cost_model, tracer=tracer)

    def client_established():
        client_host.process_actions(client_app.start())

    client_tcp = TcpEndpoint(loop, "client", "server",
                             on_deliver=client_host.on_tcp_deliver,
                             on_established=client_established,
                             tracer=tracer, metrics=metrics)
    server_tcp = TcpEndpoint(loop, "server", "client",
                             on_deliver=server_host.on_tcp_deliver,
                             tracer=tracer, metrics=metrics)

    def deliver_to_server(segment):
        server_host.charge_packet()
        server_tcp.on_segment(segment)

    def deliver_to_client(segment):
        client_host.charge_packet()
        client_tcp.on_segment(segment)

    tap_c2s, tap_s2c = tap.tap("c2s"), tap.tap("s2c")
    if tracer.enabled:
        tap_c2s = _tapped(tap_c2s, tracer, "c2s")
        tap_s2c = _tapped(tap_s2c, tracer, "s2c")
    c2s = Link(loop, scenario, netem_drbg.fork("c2s"),
               deliver=deliver_to_server, tap=tap_c2s,
               plan=plan, metrics=metrics, name="c2s")
    s2c = Link(loop, scenario, netem_drbg.fork("s2c"),
               deliver=deliver_to_client, tap=tap_s2c,
               plan=plan, metrics=metrics, name="s2c")
    client_tcp.attach_link(c2s)
    server_tcp.attach_link(s2c)
    client_host.attach(client_tcp, client_app.receive)
    server_host.attach(server_tcp, server_app.receive)
    client_host.charge_tooling()
    server_host.charge_tooling()

    server_tcp.listen()
    client_tcp.connect()
    loop.run(until=max_sim_seconds)

    outcome = SUCCESS
    if not (client_app.handshake_complete and server_app.handshake_complete):
        outcome = _determine_outcome(
            client_app, server_app, client_tcp, server_tcp,
            client_host, server_host,
            scenario_name=scenario.name, max_sim_seconds=max_sim_seconds)

    # end of the handshake's wire activity (stale cancelled timers may have
    # advanced loop.now far beyond the last real packet)
    wall_end = max((record.time for record in tap.records), default=loop.now)
    labels = tuple(
        "/".join(r.segment.labels) for r in tap.records
        if r.direction == "s2c" and r.segment.labels
    )
    ttfb = 0.0
    if outcome.ok:
        t_ch, t_sh, t_fin = tap.phase_times()
        ttfb = t_fin + first_byte_transit(scenario)
    else:
        t_ch = t_sh = t_fin = 0.0  # no complete handshake: no phase timings
        if tracer.enabled:
            tracer.instant("phases", f"failed:{outcome.key}", wall_end,
                           cat="phase", detail=outcome.detail)
        if metrics.enabled:
            metrics.inc(f"handshake.failures.{outcome.key}")
    if tracer.enabled and outcome.ok:
        # the phase lane Figure 1 defines, nested under one root span that
        # covers the entire simulated run (SYN to last trailing ACK)
        tracer.begin("phases", "handshake", 0.0, cat="batch",
                     scenario=scenario.name)
        tracer.span("phases", "tcp-connect", 0.0, t_ch, cat="phase")
        tracer.span("phases", "partA (CH..SH)", t_ch, t_sh, cat="phase")
        tracer.span("phases", "partB (SH..CliFin)", t_sh, t_fin, cat="phase")
        tracer.span("phases", "tail (trailing ACKs)", t_fin, wall_end, cat="phase")
        tracer.end("phases", wall_end)
    if metrics.enabled:
        if outcome.ok:
            metrics.observe("handshake.part_a", t_sh - t_ch)
            metrics.observe("handshake.part_b", t_fin - t_sh)
            metrics.observe("handshake.total", t_fin - t_ch)
            metrics.observe("handshake.ttfb", ttfb)
        metrics.inc("wire.c2s.bytes", tap.bytes_in_direction("c2s"))
        metrics.inc("wire.s2c.bytes", tap.bytes_in_direction("s2c"))
        metrics.inc("wire.c2s.packets", tap.packets_in_direction("c2s"))
        metrics.inc("wire.s2c.packets", tap.packets_in_direction("s2c"))
        metrics.inc("handshake.count")
    return HandshakeTrace(
        part_a=t_sh - t_ch,
        part_b=t_fin - t_sh,
        total=t_fin - t_ch,
        wall_end=wall_end,
        client_wire_bytes=tap.bytes_in_direction("c2s"),
        server_wire_bytes=tap.bytes_in_direction("s2c"),
        client_packets=tap.packets_in_direction("c2s"),
        server_packets=tap.packets_in_direction("s2c"),
        client_cpu=client_host.cpu_log.total_by_library(),
        server_cpu=server_host.cpu_log.total_by_library(),
        flight_labels=labels,
        outcome=outcome,
        t_ch=t_ch,
        t_sh=t_sh,
        t_fin=t_fin,
        ttfb=ttfb,
    )


class _ClientApp:
    def __init__(self, tls: TlsClient):
        self._tls = tls

    def start(self):
        return self._tls.start()

    def receive(self, data: bytes):
        return self._tls.receive(data)

    @property
    def handshake_complete(self) -> bool:
        return self._tls.handshake_complete

    @property
    def failed(self) -> bool:
        return self._tls.failed

    @property
    def failure(self):
        return self._tls.failure


class _ServerApp:
    def __init__(self, tls: TlsServer):
        self._tls = tls

    def start(self):
        return []

    def receive(self, data: bytes):
        return self._tls.receive(data)

    @property
    def handshake_complete(self) -> bool:
        return self._tls.handshake_complete

    @property
    def failed(self) -> bool:
        return self._tls.failed

    @property
    def failure(self):
        return self._tls.failure


class Testbed:
    """One (KA, SA, scenario, policy) configuration running *real* TLS."""

    __test__ = False  # not a pytest collection target

    def __init__(self, kem_name: str, sig_name: str, certificate: Certificate,
                 server_secret: bytes, trust_store: TrustStore, *,
                 scenario: NetemConfig | str = "none",
                 policy: BufferPolicy = BufferPolicy.OPTIMIZED,
                 profiling: bool = False,
                 drbg: Drbg | None = None,
                 session: str = "full",
                 client_credentials=None):
        self.kem_name = kem_name
        self.sig_name = sig_name
        self._certificate = certificate
        self._server_secret = server_secret
        self._trust_store = trust_store
        self.scenario = SCENARIOS[scenario] if isinstance(scenario, str) else scenario
        self.policy = policy
        self.session = session
        self._client_credentials = client_credentials
        self._cost_model = CostModel(profiling=profiling)
        self._drbg = drbg if drbg is not None else Drbg(
            f"testbed:{kem_name}:{sig_name}:{self.scenario.name}:{policy.value}"
        )
        self._handshake_index = 0

    def run_handshake(self, max_sim_seconds: float = 120.0, *,
                      plan: FaultPlan | None = None,
                      tracer=NULL_TRACER, metrics=NULL_METRICS) -> HandshakeTrace:
        from repro.tls.scenarios import build_session_endpoints

        index = self._handshake_index
        self._handshake_index += 1
        tls_drbg = self._drbg.fork(f"tls:{index}")
        # build_session_endpoints forks "client"/"server" exactly like the
        # pre-lifecycle testbed, so session="full" stays byte-identical
        tls_client, tls_server = build_session_endpoints(
            self.session, self.kem_name, self.sig_name, self._certificate,
            self._server_secret, self._trust_store, tls_drbg,
            policy=self.policy, client_credentials=self._client_credentials)
        return run_simulated_handshake(  # pqtls: allow[LEAK001] — outcome labels are alert codes, not key material (object-granularity taint over the credential)
            _ClientApp(tls_client), _ServerApp(tls_server),
            scenario=self.scenario,
            netem_drbg=self._drbg.fork(f"netem:{index}"),
            cost_model=self._cost_model,
            max_sim_seconds=max_sim_seconds,
            plan=plan,
            tracer=tracer, metrics=metrics,
        )
