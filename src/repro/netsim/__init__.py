"""Deterministic discrete-event testbed.

Substitutes the paper's 3-node hardware setup (client, server, passive
optical-tap timestamper on 10 Gbit/s fiber): simulated hosts with a
single-core CPU driven by a calibrated cost model, a simplified TCP with
Linux-like slow start, netem-style link emulation, and a passive tap that
timestamps every frame.
"""

from repro.netsim.eventloop import EventLoop
from repro.netsim.netem import NetemConfig
from repro.netsim.testbed import HandshakeTrace, Testbed

__all__ = ["EventLoop", "NetemConfig", "Testbed", "HandshakeTrace"]
