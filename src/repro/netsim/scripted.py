"""Recorded handshake scripts: run real crypto once, replay its shape.

A 60-second measurement period covers up to ~30 000 sequential handshakes
(Table 2); re-running pure-Python SPHINCS+ for each would be absurd when
the simulated clock is driven by the cost model anyway. Instead we run
*one* real handshake per (KA, SA, policy) in lockstep, record each TLS
endpoint's behaviour as byte-offset milestones — "after N cumulative
in-order bytes, perform these Compute ops and Send these flight lengths" —
and replay that script through TCP/netem with fresh loss randomness.

Replay is exact because a sans-io TLS endpoint is a deterministic function
of the in-order byte stream: message sizes, flush boundaries, and crypto
op sequences do not depend on network behaviour. A regression test checks
real-vs-scripted traces match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.tls.actions import Compute, Send
from repro.tls.certs import make_server_credentials
from repro.tls.client import TlsClient
from repro.tls.records import decode_records
from repro.tls.server import BufferPolicy, TlsServer


class RecordingError(RuntimeError):
    """Lockstep script recording went off the rails (a real-endpoint bug —
    recording runs on a perfect link, so it must always complete)."""


@dataclass(frozen=True)
class ScriptedSend:
    length: int
    label: str


@dataclass(frozen=True)
class Milestone:
    after_bytes: int                  # fire once this many in-order bytes arrived
    actions: tuple                    # Compute | ScriptedSend, in order


@dataclass(frozen=True)
class HandshakeScript:
    kem_name: str
    sig_name: str
    policy: str
    client_milestones: tuple[Milestone, ...]
    server_milestones: tuple[Milestone, ...]
    client_total_in: int              # bytes the client must consume to finish
    server_total_in: int


def _record_side(actions) -> tuple:
    recorded = []
    for action in actions:
        if isinstance(action, Compute):
            recorded.append(action)
        elif isinstance(action, Send):
            recorded.append(ScriptedSend(len(action.data), action.label))
    return tuple(recorded)


def _split_record_boundaries(stream: bytes) -> list[bytes]:
    records, rest = decode_records(stream)
    if rest:
        raise RecordingError("stream does not end on a record boundary")
    return [r.encode() for r in records]


def load_credentials(sig_name: str, seed: str = "paper"):
    """Per-SA credentials (CA + leaf + trust store), cached on disk.

    Key generation and CA issuance dominate recording time for the slow
    signature schemes (Falcon keygen, SPHINCS+ signing), and credentials
    are shared across every experiment using the same SA — so generation
    is single-flighted under a per-key file lock: concurrent recorders of
    different (KA, SA) scripts with the same SA wait for one generator
    instead of each re-deriving the same keys.
    """
    from repro import cache

    key = f"{sig_name}|{seed}"
    creds = cache.load("creds", key)
    if creds is None:
        with cache.lock("creds", key):
            creds = cache.load("creds", key)
            if creds is None:
                creds = make_server_credentials(
                    sig_name, Drbg(f"creds:{sig_name}:{seed}"))
                cache.store("creds", key, creds)
    return creds


def record_script(kem_name: str, sig_name: str,
                  policy: BufferPolicy = BufferPolicy.OPTIMIZED,
                  seed: str = "paper") -> HandshakeScript:
    """Run one real handshake in lockstep and capture both endpoint scripts."""
    drbg = Drbg(f"script:{kem_name}:{sig_name}:{policy.value}:{seed}")
    cert, sk, store = load_credentials(sig_name, seed)
    client = TlsClient(kem_name, sig_name, store, drbg.fork("client"))
    server = TlsServer(kem_name, sig_name, cert, sk, drbg.fork("server"),
                       policy=policy)

    client_milestones: list[Milestone] = []
    server_milestones: list[Milestone] = []

    start_actions = client.start()
    client_milestones.append(Milestone(0, _record_side(start_actions)))
    client_out = b"".join(a.data for a in start_actions if isinstance(a, Send))

    # feed the server record-by-record (a sans-io endpoint can only act on
    # complete records, so record boundaries are the exact trigger points)
    server_in = 0
    server_out = b""
    for record in _split_record_boundaries(client_out):
        server_in += len(record)
        actions = server.receive(record)
        if actions:
            server_milestones.append(Milestone(server_in, _record_side(actions)))
            server_out += b"".join(a.data for a in actions if isinstance(a, Send))

    client_in = 0
    client_out2 = b""
    for record in _split_record_boundaries(server_out):
        client_in += len(record)
        actions = client.receive(record)
        if actions:
            client_milestones.append(Milestone(client_in, _record_side(actions)))
            client_out2 += b"".join(a.data for a in actions if isinstance(a, Send))

    for record in _split_record_boundaries(client_out2):
        server_in += len(record)
        actions = server.receive(record)
        if actions:
            server_milestones.append(Milestone(server_in, _record_side(actions)))

    if not (client.handshake_complete and server.handshake_complete):
        for endpoint in (client, server):
            if endpoint.failed:
                raise RecordingError(
                    f"lockstep recording aborted: {endpoint.failure}"
                ) from endpoint.failure
        raise RecordingError("lockstep recording did not complete the handshake")

    return HandshakeScript(
        kem_name=kem_name,
        sig_name=sig_name,
        policy=policy.value,
        client_milestones=tuple(client_milestones),
        server_milestones=tuple(server_milestones),
        client_total_in=client_in,
        server_total_in=server_in,
    )


class ScriptedApp:
    """Replays one side of a recorded script against the byte stream."""

    # scripts replay successful recordings, so a replay app never fails on
    # its own — the attributes exist so hosts treat both app kinds uniformly
    failed = False
    failure = None

    def __init__(self, milestones: tuple[Milestone, ...], total_in: int,
                 is_client: bool):
        self._milestones = list(milestones)
        self._total_in = total_in
        self._is_client = is_client
        self._received = 0
        self._next = 0

    def start(self):
        if not self._is_client:
            return []
        return self._fire()

    def receive(self, data: bytes):
        self._received += len(data)
        return self._fire()

    def _fire(self):
        actions = []
        while (self._next < len(self._milestones)
               and self._milestones[self._next].after_bytes <= self._received):
            for action in self._milestones[self._next].actions:
                if isinstance(action, ScriptedSend):
                    actions.append(Send(bytes(action.length), action.label))
                else:
                    actions.append(action)
            self._next += 1
        return actions

    @property
    def handshake_complete(self) -> bool:
        return self._next >= len(self._milestones) and self._received >= self._total_in


def scripted_apps(script: HandshakeScript) -> tuple[ScriptedApp, ScriptedApp]:
    """Fresh (client, server) replay apps for one handshake."""
    client = ScriptedApp(script.client_milestones, script.client_total_in, True)
    server = ScriptedApp(script.server_milestones, script.server_total_in, False)
    return client, server
