"""Recorded handshake scripts: run real crypto once, replay its shape.

A 60-second measurement period covers up to ~30 000 sequential handshakes
(Table 2); re-running pure-Python SPHINCS+ for each would be absurd when
the simulated clock is driven by the cost model anyway. Instead we run
*one* real handshake per (KA, SA, policy) in lockstep, record each TLS
endpoint's behaviour as byte-offset milestones — "after N cumulative
in-order bytes, perform these Compute ops and Send these flight lengths" —
and replay that script through TCP/netem with fresh loss randomness.

Replay is exact because a sans-io TLS endpoint is a deterministic function
of the in-order byte stream: message sizes, flush boundaries, and crypto
op sequences do not depend on network behaviour. A regression test checks
real-vs-scripted traces match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.tls.actions import Compute, Send
from repro.tls.certs import (
    make_chain_credentials,
    make_client_credentials,
    make_server_credentials,
)
from repro.tls.records import decode_records
from repro.tls.scenarios import DEFAULT_SESSION, build_session_endpoints
from repro.tls.server import BufferPolicy


class RecordingError(RuntimeError):
    """Lockstep script recording went off the rails (a real-endpoint bug —
    recording runs on a perfect link, so it must always complete)."""


@dataclass(frozen=True)
class ScriptedSend:
    length: int
    label: str


@dataclass(frozen=True)
class Milestone:
    after_bytes: int                  # fire once this many in-order bytes arrived
    actions: tuple                    # Compute | ScriptedSend, in order


@dataclass(frozen=True)
class HandshakeScript:
    kem_name: str
    sig_name: str
    policy: str
    client_milestones: tuple[Milestone, ...]
    server_milestones: tuple[Milestone, ...]
    client_total_in: int              # bytes the client must consume to finish
    server_total_in: int
    # session shape and chain profile (defaults keep pre-lifecycle cache
    # entries loadable; read with getattr for the same reason)
    session: str = "full"
    chain: str = "direct"


def _record_side(actions) -> tuple:
    recorded = []
    for action in actions:
        if isinstance(action, Compute):
            recorded.append(action)
        elif isinstance(action, Send):
            recorded.append(ScriptedSend(len(action.data), action.label))
    return tuple(recorded)


def _split_record_boundaries(stream: bytes) -> list[bytes]:
    records, rest = decode_records(stream)
    if rest:
        raise RecordingError("stream does not end on a record boundary")
    return [r.encode() for r in records]


def load_credentials(sig_name: str, seed: str = "paper"):
    """Per-SA credentials (CA + leaf + trust store), cached on disk.

    Key generation and CA issuance dominate recording time for the slow
    signature schemes (Falcon keygen, SPHINCS+ signing), and credentials
    are shared across every experiment using the same SA — so generation
    is single-flighted under a per-key file lock: concurrent recorders of
    different (KA, SA) scripts with the same SA wait for one generator
    instead of each re-deriving the same keys.
    """
    from repro import cache

    key = f"{sig_name}|{seed}"
    creds = cache.load("creds", key)
    if creds is None:
        with cache.lock("creds", key):
            creds = cache.load("creds", key)
            if creds is None:
                creds = make_server_credentials(
                    sig_name, Drbg(f"creds:{sig_name}:{seed}"))
                cache.store("creds", key, creds)
    return creds


def load_chain_credentials(sig_name: str, chain: str = "direct",
                           seed: str = "paper"):
    """Credentials for one chain profile (direct reuses the legacy cache)."""
    if chain == "direct":
        return load_credentials(sig_name, seed)
    from repro import cache

    key = f"{sig_name}|{seed}|chain={chain}"
    creds = cache.load("creds", key)
    if creds is None:
        with cache.lock("creds", key):
            creds = cache.load("creds", key)
            if creds is None:
                creds = make_chain_credentials(
                    sig_name, Drbg(f"creds:{sig_name}:{seed}:chain={chain}"),
                    chain=chain)
                cache.store("creds", key, creds)
    return creds


def load_client_credentials(sig_name: str, seed: str = "paper"):
    """Client chain + key + server-side trust store for mutual TLS."""
    from repro import cache

    key = f"{sig_name}|{seed}|client"
    creds = cache.load("creds", key)
    if creds is None:
        with cache.lock("creds", key):
            creds = cache.load("creds", key)
            if creds is None:
                creds = make_client_credentials(
                    sig_name, Drbg(f"creds:{sig_name}:{seed}:client"))
                cache.store("creds", key, creds)
    return creds


def record_script(kem_name: str, sig_name: str,
                  policy: BufferPolicy = BufferPolicy.OPTIMIZED,
                  seed: str = "paper", session: str = DEFAULT_SESSION,
                  chain: str = "direct") -> HandshakeScript:
    """Run one real handshake in lockstep and capture both endpoint scripts.

    *session* selects the handshake shape (full / resume / mtls / hrr, see
    :mod:`repro.tls.scenarios`); *chain* the server's certificate-chain
    profile. Defaults reproduce the pre-lifecycle recordings bit-exactly
    (same DRBG label, same fork structure).
    """
    label = f"script:{kem_name}:{sig_name}:{policy.value}:{seed}"
    if session != DEFAULT_SESSION:
        label += f":{session}"
    if chain != "direct":
        label += f":chain={chain}"
    drbg = Drbg(label)
    cert, sk, store = load_chain_credentials(sig_name, chain, seed)
    client_credentials = None
    if session == "mtls":
        client_credentials = load_client_credentials(sig_name, seed)
    client, server = build_session_endpoints(
        session, kem_name, sig_name, cert, sk, store, drbg,
        policy=policy, client_credentials=client_credentials)

    client_milestones: list[Milestone] = []
    server_milestones: list[Milestone] = []

    start_actions = client.start()
    client_milestones.append(Milestone(0, _record_side(start_actions)))
    to_server = b"".join(a.data for a in start_actions if isinstance(a, Send))
    to_client = b""

    # feed each endpoint record-by-record (a sans-io endpoint can only act
    # on complete records, so record boundaries are the exact trigger
    # points), alternating directions until the link goes quiet — the
    # HelloRetryRequest shape needs an extra round trip the fixed
    # three-pass lockstep of earlier recordings could not express
    client_in = server_in = 0
    for _round in range(12):
        if not to_server and not to_client:
            break
        out = b""
        for record in _split_record_boundaries(to_server):
            server_in += len(record)
            actions = server.receive(record)
            if actions:
                server_milestones.append(
                    Milestone(server_in, _record_side(actions)))
                out += b"".join(a.data for a in actions if isinstance(a, Send))
        to_server = b""
        to_client += out
        out = b""
        for record in _split_record_boundaries(to_client):
            client_in += len(record)
            actions = client.receive(record)
            if actions:
                client_milestones.append(
                    Milestone(client_in, _record_side(actions)))
                out += b"".join(a.data for a in actions if isinstance(a, Send))
        to_client = b""
        to_server = out

    if not (client.handshake_complete and server.handshake_complete):
        for endpoint in (client, server):
            if endpoint.failed:
                raise RecordingError(
                    f"lockstep recording aborted: {endpoint.failure}"
                ) from endpoint.failure
        raise RecordingError("lockstep recording did not complete the handshake")

    return HandshakeScript(
        kem_name=kem_name,
        sig_name=sig_name,
        policy=policy.value,
        client_milestones=tuple(client_milestones),
        server_milestones=tuple(server_milestones),
        client_total_in=client_in,
        server_total_in=server_in,
        session=session,
        chain=chain,
    )


class ScriptedApp:
    """Replays one side of a recorded script against the byte stream."""

    # scripts replay successful recordings, so a replay app never fails on
    # its own — the attributes exist so hosts treat both app kinds uniformly
    failed = False
    failure = None

    def __init__(self, milestones: tuple[Milestone, ...], total_in: int,
                 is_client: bool):
        self._milestones = list(milestones)
        self._total_in = total_in
        self._is_client = is_client
        self._received = 0
        self._next = 0

    def start(self):
        if not self._is_client:
            return []
        return self._fire()

    def receive(self, data: bytes):
        self._received += len(data)
        return self._fire()

    def _fire(self):
        actions = []
        while (self._next < len(self._milestones)
               and self._milestones[self._next].after_bytes <= self._received):
            for action in self._milestones[self._next].actions:
                if isinstance(action, ScriptedSend):
                    actions.append(Send(bytes(action.length), action.label))
                else:
                    actions.append(action)
            self._next += 1
        return actions

    @property
    def handshake_complete(self) -> bool:
        return self._next >= len(self._milestones) and self._received >= self._total_in


def scripted_apps(script: HandshakeScript) -> tuple[ScriptedApp, ScriptedApp]:
    """Fresh (client, server) replay apps for one handshake."""
    client = ScriptedApp(script.client_milestones, script.client_total_in, True)
    server = ScriptedApp(script.server_milestones, script.server_total_in, False)
    return client, server
