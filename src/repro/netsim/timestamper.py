"""The passive third node: hardware-timestamping taps on both fibers.

Like the paper's MoonGen box behind optical splitters, it never touches
traffic — it records (timestamp, direction, frame) and recovers the two
handshake phases of Figure 1 from the first unencrypted bytes: ClientHello,
ServerHello, and the client's ChangeCipherSpec+Finished packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.packets import Segment


class MissingMarker(RuntimeError):
    """A handshake phase marker never appeared on the wire (the handshake
    failed or stalled before reaching it)."""


@dataclass
class TapRecord:
    time: float
    direction: str  # "c2s" | "s2c"
    segment: Segment


@dataclass
class Timestamper:
    records: list[TapRecord] = field(default_factory=list)

    def tap(self, direction: str):
        def _record(time: float, segment: Segment) -> None:
            self.records.append(TapRecord(time, direction, segment))
        return _record

    # -- phase extraction (first sighting of each marker) ----------------------
    # Flight labels are '+'-joined when the server's buffer coalesces
    # messages ("SH+EE+Cert+CV+Fin" under the default OpenSSL policy), so a
    # marker matches if it appears as a component — mirroring the paper's
    # tap, which recognises the unencrypted ServerHello header wherever it
    # sits inside a packet.
    def _first(self, direction: str, marker: str) -> TapRecord | None:
        marker_parts = set(marker.split("+"))
        for record in self.records:
            if record.direction != direction:
                continue
            for label in record.segment.labels:
                if marker_parts <= set(label.split("+")):
                    return record
        return None

    def phase_times(self) -> tuple[float, float, float]:
        """(t_CH, t_SH, t_ClientFinished); raises if a marker never appeared."""
        ch = self._first("c2s", "ClientHello")
        sh = self._first("s2c", "SH")
        fin = self._first("c2s", "CCS+Fin")
        missing = [f"{marker} ({direction})"
                   for record, marker, direction in
                   ((ch, "ClientHello", "c2s"), (sh, "SH", "s2c"),
                    (fin, "CCS+Fin", "c2s"))
                   if record is None]
        if missing:
            raise MissingMarker(
                "handshake markers missing from the tap records: "
                + ", ".join(missing)
                + f" ({len(self.records)} frames tapped)")
        return ch.time, sh.time, fin.time

    def phase_times_or_none(self) -> tuple[float, float, float] | None:
        """Like :meth:`phase_times`, but ``None`` for failed handshakes."""
        try:
            return self.phase_times()
        except MissingMarker:
            return None

    def part_a(self) -> float:
        t_ch, t_sh, _ = self.phase_times()
        return t_sh - t_ch

    def part_b(self) -> float:
        _, t_sh, t_fin = self.phase_times()
        return t_fin - t_sh

    def total(self) -> float:
        t_ch, _, t_fin = self.phase_times()
        return t_fin - t_ch

    # -- byte / packet accounting ----------------------------------------------
    def bytes_in_direction(self, direction: str) -> int:
        return sum(r.segment.wire_bytes for r in self.records if r.direction == direction)

    def packets_in_direction(self, direction: str) -> int:
        return sum(1 for r in self.records if r.direction == direction)
