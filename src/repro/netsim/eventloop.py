"""Minimal deterministic discrete-event scheduler (time unit: seconds)."""

from __future__ import annotations

import heapq
from typing import Callable


class EventLoopRunaway(RuntimeError):
    """The event budget was exhausted — almost always a protocol deadlock
    (two endpoints retransmitting at each other forever)."""


class EventLoop:
    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule *callback* after *delay* seconds; returns a token."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback))
        return self._sequence

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (or simulated time passes *until*)."""
        events = 0
        while self._queue:
            at, _, callback = self._queue[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._queue)
            self.now = max(self.now, at)
            callback()
            events += 1
            if events > max_events:
                raise EventLoopRunaway("event loop runaway (likely a protocol deadlock)")
        if until is not None:
            # the clock reflects the requested horizon even when idle, so
            # callers interleaving run(until=...) with direct calls (tests,
            # interactive drivers) get consistent timestamps
            self.now = max(self.now, until)

    def idle(self) -> bool:
        return not self._queue
