"""Simulated single-core hosts running the sans-io TLS state machines.

A host's CPU serializes all work: crypto operations advance a busy-until
mark by the cost model's price, and outgoing TLS flights reach TCP only
once the CPU gets there. This is what makes the paper's §5.2 effect
emerge: with the optimized flush policy the *client* burns its decaps /
verification time while the *server* is still signing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.costmodel import CostModel, op_label
from repro.netsim.eventloop import EventLoop
from repro.obs.tracer import NULL_TRACER
from repro.tls.actions import Compute, Send
from repro.tls.errors import TlsError


@dataclass
class CpuInterval:
    start: float
    end: float
    library: str


@dataclass
class CpuLog:
    intervals: list[CpuInterval] = field(default_factory=list)

    def charge(self, start: float, duration: float, library: str) -> float:
        end = start + duration
        if duration > 0:
            self.intervals.append(CpuInterval(start, end, library))
        return end

    def total_by_library(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for interval in self.intervals:
            totals[interval.library] = totals.get(interval.library, 0.0) + (
                interval.end - interval.start
            )
        return totals

    @property
    def total(self) -> float:
        return sum(i.end - i.start for i in self.intervals)


class Host:
    """Glue between a TLS state machine, TCP, and the cost model."""

    def __init__(self, name: str, role: str, loop: EventLoop, cost_model: CostModel,
                 tracer=NULL_TRACER):
        self.name = name
        self.role = role  # "client" | "server"
        self._loop = loop
        self._cost = cost_model
        self._tracer = tracer
        self._track = f"{name}-cpu"
        self.cpu_log = CpuLog()
        self._cpu_free = 0.0
        self.tcp = None   # attached later
        self._tls_receive = None
        self.failure: Exception | None = None

    def attach(self, tcp, tls_receive) -> None:
        self.tcp = tcp
        self._tls_receive = tls_receive

    # -- CPU accounting ------------------------------------------------------
    def _run_ops(self, start: float, ops) -> float:
        at = start
        tracing = self._tracer.enabled
        for op in ops:
            cost = self._cost.op_cost(op, self.role)
            end = self.cpu_log.charge(at, cost.seconds, cost.library)
            if tracing and end > at:
                self._tracer.span(self._track, op_label(op), at, end,
                                  cat=cost.library, size=op.size)
            at = end
        return at

    def charge_packet(self) -> None:
        """Per-packet kernel + driver work (tally; negligible latency)."""
        at = max(self._loop.now, self._cpu_free)
        for cost in self._cost.packet_cost():
            end = self.cpu_log.charge(at, cost.seconds, cost.library)
            if self._tracer.enabled and end > at:
                self._tracer.span(self._track, f"packet:{cost.library}",
                                  at, end, cat=cost.library)
            at = end
        self._cpu_free = at

    def charge_tooling(self) -> None:
        cost = self._cost.tooling_cost()
        at = max(self._loop.now, self._cpu_free)
        end = self.cpu_log.charge(at, cost.seconds, cost.library)
        if self._tracer.enabled and end > at:
            self._tracer.span(self._track, "tooling", at, end, cat=cost.library)
        self._cpu_free = end

    # -- TLS action processing ---------------------------------------------------
    def process_actions(self, actions) -> None:
        """Execute a TLS action list starting when the CPU is free."""
        at = max(self._loop.now, self._cpu_free)
        tracing = self._tracer.enabled and bool(actions)
        if tracing:
            # container span wrapping the whole batch; its children are the
            # per-op spans _run_ops records (flame.CONTAINER_CAT excludes it
            # from library sums)
            sends = [a.label for a in actions if isinstance(a, Send)]
            self._tracer.begin(self._track, "tls-actions"
                               + (f" →{'/'.join(sends)}" if sends else ""),
                               at, cat="batch")
        for action in actions:
            if isinstance(action, Compute):
                at = self._run_ops(at, action.ops)
            elif isinstance(action, Send):
                data, label = action.data, action.label
                delay = max(0.0, at - self._loop.now)
                self._loop.schedule(delay, lambda d=data, l=label: self.tcp.send(d, l))
        if tracing:
            self._tracer.end(self._track, at)
        self._cpu_free = at

    def on_tcp_deliver(self, data: bytes) -> None:
        """TCP hands up in-order bytes; run the TLS machine on them."""
        if self.failure is not None:
            return
        try:
            actions = self._tls_receive(data)
        except TlsError as exc:  # handshake failure: record, stop driving
            self.failure = exc
            return
        self.process_actions(actions)
