"""Simplified TCP with the features the paper's results hinge on.

- 3-way handshake (every measured TLS handshake rides a fresh connection,
  so the congestion window is always at its initial value — §5.4),
- MSS segmentation with PSH boundaries at TLS flush points,
- slow start from initcwnd = 10 segments (the Linux default), growing by
  segments acknowledged (ABC), so sparse ACKs don't stunt the window,
- GRO-style cumulative ACKs: immediate on PSH or out-of-order, every 8th
  in-order segment, otherwise a short delayed-ACK — matching a 10 Gbit/s
  receiver that coalesces segment trains (this is what keeps the client's
  byte count low and the paper's §5.5 amplification factors high),
- NewReno recovery episodes: three duplicate ACKs open an episode that
  halves the window and retransmits the oldest hole; each partial ACK
  inside the episode repairs exactly the next hole (no duplicate
  retransmissions into a fat bottleneck queue); a tail-loss-probe timer
  with exponential backoff is the last resort. This is what keeps the
  paper's lossy-scenario medians within a few RTTs.

Reno-style congestion response (ssthresh halving on loss, linear growth
above ssthresh) keeps rate-limited lossy links (LTE-M) from collapsing
under retransmissions; receive-window flow control is omitted (handshake
flows never fill buffers).
"""

from __future__ import annotations

from typing import Callable

from repro.faults.errors import TransportError
from repro.netsim.eventloop import EventLoop
from repro.netsim.packets import Segment
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

MSS = 1448
INIT_CWND = 10
INITIAL_RTO = 1.0
PTO_FLOOR = 0.025    # ~Linux TLP floor; dup-ACK (RACK) recovery is the
                     # fast path, the timer only catches tail losses
MAX_RETRIES = 30
ACK_EVERY = 8            # GRO-coalesced trains get one ACK per ~8 segments
DELAYED_ACK = 0.0002     # 200 us flush for trains that end without a PSH


class TcpEndpoint:
    """One side of a single TCP connection."""

    def __init__(self, loop: EventLoop, name: str, peer: str, *,
                 on_deliver: Callable[[bytes], None],
                 on_established: Callable[[], None] | None = None,
                 mss: int | None = None, initcwnd: int | None = None,
                 tracer=NULL_TRACER, metrics=NULL_METRICS):
        self._loop = loop
        self.name = name
        self.peer = peer
        self._on_deliver = on_deliver
        self._on_established = on_established
        self._tracer = tracer
        self._metrics = metrics
        self._track = f"tcp-{name}"
        # module attributes read at call time so tests/ablations can patch
        self._mss = mss if mss is not None else MSS
        initcwnd = initcwnd if initcwnd is not None else INIT_CWND
        self._link = None
        self.state = "closed"
        # sender
        self._snd_buffer = bytearray()
        self._snd_base = 0          # seq of _snd_buffer[0]
        self._snd_nxt = 0
        self._snd_una = 0
        self._push_points: set[int] = set()
        self._label_ranges: list[tuple[int, int, str]] = []
        self._inflight: dict[int, Segment] = {}
        self._cwnd = float(initcwnd)
        self._ssthresh = float("inf")
        self._dup_acks = 0
        self._last_ack_seen = -1
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._last_retx_time: dict[int, float] = {}
        self._in_recovery = False
        self._recover_point = 0
        self._pto_token = 0
        self._retries = 0
        # receiver
        self._rcv_nxt = 0
        self._ooo: dict[int, Segment] = {}
        self._segs_since_ack = 0
        self._delack_token = 0
        # stats (wire bytes including headers, as the paper reports)
        self.bytes_sent = 0
        self.packets_sent = 0
        # terminal failure (retransmission exhaustion): recorded, not raised
        self.failure: TransportError | None = None

    def attach_link(self, link) -> None:
        self._link = link

    # -- connection establishment ------------------------------------------
    def connect(self) -> None:
        if self.state != "closed":
            raise TransportError("connect on non-closed endpoint")
        self.state = "syn-sent"
        self._syn_time = self._loop.now
        self._transmit(Segment(self.name, self.peer, seq=0, payload=b"",
                               ack=0, syn=True))
        self._arm_pto(INITIAL_RTO)

    def listen(self) -> None:
        if self.state != "closed":
            raise TransportError("listen on non-closed endpoint")
        self.state = "listen"

    # -- application interface ------------------------------------------------
    def send(self, data: bytes, label: str = "") -> None:
        """Queue application bytes ending in a PSH boundary."""
        if not data:
            return
        if self._metrics.enabled:
            self._metrics.observe(f"tcp.{self.name}.flight_bytes", len(data))
        start = self._snd_base + len(self._snd_buffer)
        self._snd_buffer.extend(data)
        end = start + len(data)
        self._push_points.add(end)
        if label:
            self._label_ranges.append((start, end, label))
        if self.state == "established":
            self._pump()

    # -- internals --------------------------------------------------------------
    def _transmit(self, segment: Segment) -> None:
        self.bytes_sent += segment.wire_bytes
        self.packets_sent += 1
        if self._metrics.enabled:
            self._metrics.inc(f"tcp.{self.name}.segments_sent")
            self._metrics.inc(f"tcp.{self.name}.wire_bytes", segment.wire_bytes)
        self._link.transmit(segment)

    def _labels_for(self, start: int, end: int) -> tuple[str, ...]:
        return tuple(
            label for (s, e, label) in self._label_ranges if s < end and e > start
        )

    def _pump(self) -> None:
        """Send as much queued data as the congestion window allows."""
        while len(self._inflight) < int(self._cwnd):
            offset = self._snd_nxt - self._snd_base
            available = len(self._snd_buffer) - offset
            if available <= 0:
                break
            length = min(self._mss, available)
            seq = self._snd_nxt
            # segments never span a push boundary: each TLS flush goes out
            # as its own segment train (as a real socket write does), which
            # is what makes multi-push server flights exceed initcwnd
            next_push = min((p for p in self._push_points if p > seq),
                            default=None)
            if next_push is not None and next_push - seq < length:
                length = next_push - seq
            end = seq + length
            payload = bytes(self._snd_buffer[offset: offset + length])
            push = end in self._push_points
            segment = Segment(self.name, self.peer, seq=seq, payload=payload,
                              ack=self._rcv_nxt, push=push,
                              labels=self._labels_for(seq, end))
            self._inflight[seq] = segment
            if seq not in self._send_times:
                self._send_times[seq] = self._loop.now
            self._snd_nxt = end
            self._transmit(segment)
        if self._inflight:
            self._arm_pto()

    def _arm_pto(self, override: float | None = None) -> None:
        self._pto_token += 1
        token = self._pto_token
        if override is not None:
            delay = override
        elif self._srtt is None:
            delay = INITIAL_RTO
        else:
            delay = max(self._srtt + 4.0 * self._rttvar, 2.0 * self._srtt, PTO_FLOOR)
        delay *= 2 ** min(self._retries, 6)  # Linux-style RTO cap
        # safety margin: a timer must never tie with the ACK it guards
        # (ties resolve in schedule order and would fire spuriously)
        delay = delay * 1.1 + 0.002
        self._loop.schedule(delay, lambda: self._on_pto(token))

    def _fail(self, reason: str) -> None:
        """Give up on the connection: terminal state, typed failure recorded.

        Raising here would unwind through the event loop and kill the whole
        campaign; instead the endpoint goes quiet and the testbed reads
        ``failure`` into a transport-error outcome.
        """
        self.failure = TransportError(reason)
        self.state = "failed"
        self._pto_token += 1     # cancel the retransmission timer
        self._delack_token += 1  # and any pending delayed ACK
        self._metrics.inc(f"tcp.{self.name}.failed")
        if self._tracer.enabled:
            self._tracer.instant(self._track, "transport-failed", self._loop.now,
                                 reason=reason, retries=self._retries)

    def _on_pto(self, token: int) -> None:
        if token != self._pto_token:
            return
        if self.state == "syn-sent":
            self._retries += 1
            if self._retries > MAX_RETRIES:
                self._fail("SYN retransmission limit reached")
                return
            if self._tracer.enabled:
                self._tracer.instant(self._track, "syn-retransmit",
                                     self._loop.now, retries=self._retries)
            self._metrics.inc(f"tcp.{self.name}.syn_retransmits")
            self._transmit(Segment(self.name, self.peer, seq=0, payload=b"",
                                   ack=0, syn=True))
            self._arm_pto(INITIAL_RTO)
            return
        if not self._inflight:
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._fail("retransmission limit reached")
            return
        if self._tracer.enabled:
            self._tracer.instant(self._track, "pto-fired", self._loop.now,
                                 retries=self._retries)
        self._enter_recovery()
        first = min(self._inflight)
        self._retransmit(first)
        self._arm_pto()

    def _enter_recovery(self) -> None:
        """CUBIC-style multiplicative decrease (beta = 0.7, the Linux
        default congestion control) on a loss signal."""
        self._ssthresh = max(len(self._inflight) * 0.7, 2.0)
        self._cwnd = max(self._ssthresh, 2.0)
        if self._tracer.enabled:
            self._tracer.instant(self._track, "enter-recovery", self._loop.now,
                                 cwnd=self._cwnd, ssthresh=self._ssthresh)
            self._tracer.counter(self._track, "cwnd", self._loop.now, self._cwnd)
        self._metrics.inc(f"tcp.{self.name}.recovery_episodes")

    def _retransmit(self, seq: int) -> None:
        segment = self._inflight[seq]
        self._retransmitted.add(seq)
        self._last_retx_time[seq] = self._loop.now
        if self._tracer.enabled:
            self._tracer.instant(self._track, "retransmit", self._loop.now,
                                 seq=seq, bytes=segment.wire_bytes)
        self._metrics.inc(f"tcp.{self.name}.retransmits")
        self._transmit(segment)

    # -- segment reception ---------------------------------------------------------
    def on_segment(self, segment: Segment) -> None:
        if self.state == "failed":
            return  # terminal: late arrivals are dead letters
        if segment.syn and not segment.payload:
            self._handle_syn(segment)
            return
        if self.state != "established":
            if self.state == "syn-rcvd":
                # any non-SYN segment from the peer completes our handshake
                self._become_established()
            else:
                return  # stray segment in listen/syn-sent/closed
        self._handle_ack(segment.ack)
        if segment.payload:
            self._handle_data(segment)

    def _handle_syn(self, segment: Segment) -> None:
        if self.state == "listen":
            self.state = "syn-rcvd"
            self._transmit(Segment(self.name, self.peer, seq=0, payload=b"",
                                   ack=0, syn=True))
            self._arm_pto(INITIAL_RTO)
        elif self.state == "syn-sent":
            # SYN-ACK: complete the handshake (and take an RTT sample)
            if self._retries == 0:
                self._srtt = self._loop.now - self._syn_time
            self._become_established()
            self._send_ack()
            if self._on_established is not None:
                self._on_established()
            self._pump()
        elif self.state == "syn-rcvd":
            # duplicate SYN (our SYN-ACK was lost): resend SYN-ACK
            self._transmit(Segment(self.name, self.peer, seq=0, payload=b"",
                                   ack=0, syn=True))

    def _become_established(self) -> None:
        self.state = "established"
        self._retries = 0
        self._pto_token += 1  # cancel handshake timer

    def _handle_ack(self, ack: int) -> None:
        if ack > self._snd_una:
            partial = self._in_recovery and ack < self._recover_point
            if self._in_recovery and ack >= self._recover_point:
                self._in_recovery = False
            newly_acked = [s for s in self._inflight if s + len(self._inflight[s].payload) <= ack]
            for seq in newly_acked:
                sent_at = self._send_times.pop(seq, None)
                if sent_at is not None and seq not in self._retransmitted:
                    sample = self._loop.now - sent_at
                    if self._srtt is None:
                        self._srtt = sample
                        self._rttvar = sample / 2
                    else:
                        self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
                        self._srtt = 0.875 * self._srtt + 0.125 * sample
                del self._inflight[seq]
                if self._cwnd < self._ssthresh:
                    self._cwnd += 1          # slow start
                else:
                    self._cwnd += 1.0 / self._cwnd  # congestion avoidance
            if newly_acked and self._tracer.enabled:
                # one cwnd sample per ACK that moved the window, not per segment
                self._tracer.counter(self._track, "cwnd", self._loop.now, self._cwnd)
            self._snd_una = ack
            self._retransmitted = {r for r in self._retransmitted if r >= ack}
            self._dup_acks = 0
            self._last_ack_seen = ack
            self._retries = 0
            # drop acknowledged bytes from the buffer
            drop = ack - self._snd_base
            if drop > 0:
                del self._snd_buffer[:drop]
                self._snd_base = ack
                self._push_points = {p for p in self._push_points if p > ack}
                self._label_ranges = [
                    (s, e, label) for (s, e, label) in self._label_ranges if e > ack
                ]
            if partial and self._inflight:
                # NewReno partial ACK: the next in-flight segment is the
                # next hole — repair it immediately, exactly once
                hole = min(self._inflight)
                if hole not in self._retransmitted:
                    self._retransmit(hole)
            if self._inflight:
                self._arm_pto()
            else:
                self._pto_token += 1  # nothing outstanding: cancel timer
            self._pump()
        elif ack == self._last_ack_seen and self._inflight:
            # Duplicate ACK: the receiver holds out-of-order data. The only
            # reordering source in this simulator is loss, so the first
            # dup-ACK already identifies a hole (RACK with a zero reorder
            # window). Inside the episode, each further dup-ACK repairs the
            # next not-yet-retransmitted hole — approximating SACK's
            # one-RTT multi-hole recovery.
            self._dup_acks += 1
            if not self._in_recovery:
                self._in_recovery = True
                self._recover_point = self._snd_nxt
                self._enter_recovery()
                self._retransmit(min(self._inflight))
            else:
                holes = sorted(seq for seq in self._inflight
                               if seq < self._recover_point
                               and seq not in self._retransmitted)
                if holes:
                    self._retransmit(holes[0])

    def _handle_data(self, segment: Segment) -> None:
        seq = segment.seq
        if seq == self._rcv_nxt:
            self._rcv_nxt += len(segment.payload)
            deliverable = bytearray(segment.payload)
            while self._rcv_nxt in self._ooo:
                queued = self._ooo.pop(self._rcv_nxt)
                deliverable.extend(queued.payload)
                self._rcv_nxt += len(queued.payload)
            self._segs_since_ack += 1
            if segment.push or self._segs_since_ack >= ACK_EVERY or self._ooo:
                self._send_ack()
            else:
                self._arm_delayed_ack()
            self._on_deliver(bytes(deliverable))
        elif seq > self._rcv_nxt:
            self._ooo[seq] = segment
            self._send_ack()  # dup ack signals the gap
        else:
            self._send_ack()  # duplicate data: re-ack

    def _arm_delayed_ack(self) -> None:
        self._delack_token += 1
        token = self._delack_token
        self._loop.schedule(DELAYED_ACK, lambda: self._on_delayed_ack(token))

    def _on_delayed_ack(self, token: int) -> None:
        if token == self._delack_token and self._segs_since_ack:
            self._send_ack()

    def _send_ack(self) -> None:
        self._segs_since_ack = 0
        self._delack_token += 1  # cancel any pending delayed ACK
        self._transmit(Segment(self.name, self.peer, seq=self._snd_nxt, payload=b"",
                               ack=self._rcv_nxt, is_ack_only=True))

    @property
    def fully_acked(self) -> bool:
        return not self._inflight and self._snd_base + len(self._snd_buffer) == self._snd_nxt
