"""netem-style link emulation: loss, delay, and rate limiting.

Mirrors the paper's §5.4 scenarios, which place ``tc netem`` between client
and server. A link serializes frames at its rate (sequential: a frame waits
for the previous one to finish transmitting), applies one-way propagation
delay (RTT/2 per direction), and drops frames i.i.d. with the loss
probability — all driven by a forkable DRBG so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.drbg import Drbg
from repro.netsim.eventloop import EventLoop
from repro.netsim.packets import Segment


@dataclass(frozen=True)
class NetemConfig:
    """One emulated scenario (loss applies per frame, per direction)."""

    name: str
    loss: float = 0.0          # probability in [0, 1]
    rtt: float = 0.0           # seconds, split evenly across directions
    rate_bps: float = 10e9     # link rate in bits/second

    @property
    def one_way_delay(self) -> float:
        return self.rtt / 2.0


# The paper's Table 4 scenarios (Appendix A footnotes give LTE-M and 5G).
SCENARIOS = {
    "none": NetemConfig("none", loss=0.0, rtt=0.0, rate_bps=10e9),
    "high-loss": NetemConfig("high-loss", loss=0.10, rtt=0.0, rate_bps=10e9),
    "low-bandwidth": NetemConfig("low-bandwidth", loss=0.0, rtt=0.0, rate_bps=1e6),
    "high-delay": NetemConfig("high-delay", loss=0.0, rtt=1.0, rate_bps=10e9),
    "lte-m": NetemConfig("lte-m", loss=0.10, rtt=0.200, rate_bps=1e6),
    "5g": NetemConfig("5g", loss=0.04, rtt=0.044, rate_bps=880e6),
}


class Link:
    """One direction of the emulated path, with an optional passive tap."""

    def __init__(self, loop: EventLoop, config: NetemConfig, drbg: Drbg,
                 deliver: Callable[[Segment], None],
                 tap: Callable[[float, Segment], None] | None = None):
        self._loop = loop
        self._config = config
        self._drbg = drbg
        self._deliver = deliver
        self._tap = tap
        self._busy_until = 0.0

    def transmit(self, segment: Segment) -> None:
        """Send one frame: serialize, tap, maybe drop, propagate."""
        serialization = 8.0 * segment.wire_bytes / self._config.rate_bps
        start = max(self._loop.now, self._busy_until)
        done = start + serialization
        self._busy_until = done
        if self._tap is not None:
            # The optical tap sits right after the sender's NIC: it sees the
            # frame when fully on the wire, even if netem later drops it...
            # but the paper's taps sit on the real fiber (loss is emulated
            # *inside* the endpoints via tc), so tap sees what was sent.
            tap_time = done
            tap = self._tap
            self._loop.schedule(max(0.0, done - self._loop.now),
                                lambda: tap(tap_time, segment))
        if self._drbg.random() < self._config.loss:
            return  # dropped by netem
        arrival = done + self._config.one_way_delay
        self._loop.schedule(max(0.0, arrival - self._loop.now),
                            lambda: self._deliver(segment))
