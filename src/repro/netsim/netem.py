"""netem-style link emulation: loss, delay, rate limiting — and faults.

Mirrors the paper's §5.4 scenarios, which place ``tc netem`` between client
and server. A link serializes frames at its rate (sequential: a frame waits
for the previous one to finish transmitting), applies one-way propagation
delay (RTT/2 per direction), and drops frames i.i.d. with the loss
probability — all driven by a forkable DRBG so runs are reproducible.

Stage order follows the real qdisc: netem decides loss *before* the rate
stage, so a dropped frame never occupies the serializer (the seed code had
this backwards, which overcharged the 1 Mbit/s lossy scenarios). The
remaining ``tc netem`` knobs — per-frame corruption, duplication, and
reordering — come from an optional :class:`repro.faults.FaultPlan`:

* **corrupt** flips one DRBG-chosen bit in the payload. In ``checksum``
  mode the frame still consumes link capacity but is discarded at the
  receiver (TCP checksum); in ``deliver`` mode the flipped bytes reach
  the TLS layer (the checksum-collision case that provokes alerts).
* **dup** re-enqueues the frame once, right behind itself — the duplicate
  serializes separately, exactly like ``tc netem duplicate``.
* **reorder** holds the selected frame back by ``reorder_delay`` so it
  arrives behind its successors. (``tc`` fast-paths the selected frame
  past the delayed ones instead; same reordering pressure, and holding
  back composes more simply with the serializer — see DESIGN.md §9.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.crypto.drbg import Drbg
from repro.faults.plan import CORRUPT_DELIVER, FaultPlan
from repro.netsim.eventloop import EventLoop
from repro.netsim.packets import Segment
from repro.obs.metrics import NULL_METRICS


@dataclass(frozen=True)
class NetemConfig:
    """One emulated scenario (loss applies per frame, per direction)."""

    name: str
    loss: float = 0.0          # probability in [0, 1]
    rtt: float = 0.0           # seconds, split evenly across directions
    rate_bps: float = 10e9     # link rate in bits/second

    @property
    def one_way_delay(self) -> float:
        return self.rtt / 2.0


# The paper's Table 4 scenarios (Appendix A footnotes give LTE-M and 5G).
SCENARIOS = {
    "none": NetemConfig("none", loss=0.0, rtt=0.0, rate_bps=10e9),
    "high-loss": NetemConfig("high-loss", loss=0.10, rtt=0.0, rate_bps=10e9),
    "low-bandwidth": NetemConfig("low-bandwidth", loss=0.0, rtt=0.0, rate_bps=1e6),
    "high-delay": NetemConfig("high-delay", loss=0.0, rtt=1.0, rate_bps=10e9),
    "lte-m": NetemConfig("lte-m", loss=0.10, rtt=0.200, rate_bps=1e6),
    "5g": NetemConfig("5g", loss=0.04, rtt=0.044, rate_bps=880e6),
}


def split_scenario(spec: str) -> tuple[str, str]:
    """Parse a combined ``--scenario`` spec into (netem name, session name).

    Accepts a netem scenario (``lte-m``), a session scenario
    (``resume``), or a ``+``-joined combination (``lte-m+resume``), in
    either order. Missing components default to ``none`` / ``full``.
    """
    from repro.tls.scenarios import SESSION_SCENARIOS

    netem_name, session_name = "none", "full"
    netem_seen = session_seen = False
    for part in filter(None, (spec or "").split("+")):
        if part in SCENARIOS:
            if netem_seen:
                raise ValueError(
                    f"scenario spec {spec!r} names two netem scenarios")
            netem_name, netem_seen = part, True
        elif part in SESSION_SCENARIOS:
            if session_seen:
                raise ValueError(
                    f"scenario spec {spec!r} names two session scenarios")
            session_name, session_seen = part, True
        else:
            raise ValueError(
                f"unknown scenario component {part!r}; netem scenarios: "
                f"{sorted(SCENARIOS)}, session scenarios: "
                f"{sorted(SESSION_SCENARIOS)}")
    return netem_name, session_name


class Link:
    """One direction of the emulated path, with an optional passive tap."""

    def __init__(self, loop: EventLoop, config: NetemConfig, drbg: Drbg,
                 deliver: Callable[[Segment], None],
                 tap: Callable[[float, Segment], None] | None = None,
                 plan: FaultPlan | None = None,
                 metrics=NULL_METRICS, name: str = ""):
        self._loop = loop
        self._config = config
        self._drbg = drbg
        self._deliver = deliver
        self._tap = tap
        self._plan = plan if plan is not None and plan.active else None
        self._metrics = metrics
        self._name = name or "link"
        self._busy_until = 0.0
        self._data_frames = 0  # corrupt_nth counts payload-bearing frames

    def _count(self, event: str) -> None:
        if self._metrics.enabled:
            self._metrics.inc(f"netem.{self._name}.{event}")

    def _flip_bit(self, segment: Segment) -> Segment:
        """A copy of *segment* with one DRBG-chosen payload bit flipped."""
        payload = bytearray(segment.payload)
        index = self._drbg.randint_below(len(payload))
        payload[index] ^= 1 << self._drbg.randint_below(8)
        return Segment(segment.src, segment.dst, seq=segment.seq,
                       payload=bytes(payload), ack=segment.ack,
                       syn=segment.syn, fin=segment.fin, push=segment.push,
                       is_ack_only=segment.is_ack_only, labels=segment.labels)

    def transmit(self, segment: Segment, _is_dup: bool = False) -> None:
        """Send one frame: fault stages, maybe drop, serialize, propagate.

        Fault draws happen only when the corresponding knob is active, so
        a plan-free link consumes exactly one DRBG value per frame (the
        loss draw) — the paper scenarios replay bit-identically.
        """
        plan = self._plan
        corrupted = False
        duplicate = False
        extra_delay = 0.0
        if plan is not None:
            if segment.payload:
                self._data_frames += 1
                if plan.corrupt_nth and self._data_frames == plan.corrupt_nth:
                    corrupted = True
                elif plan.corrupt and self._drbg.random() < plan.corrupt:
                    corrupted = True
            # a duplicate is never duplicated again (tc netem semantics)
            if plan.dup and not _is_dup and self._drbg.random() < plan.dup:
                duplicate = True
            if plan.reorder and self._drbg.random() < plan.reorder:
                extra_delay = plan.reorder_delay
                self._count("reordered")
        # netem drops in the qdisc, before the rate stage: a dropped frame
        # never occupies the serializer. The tap still records it (taps sit
        # on the fiber before the receiver-side emulation) at the moment it
        # would have reached the wire.
        if self._drbg.random() < self._config.loss:
            self._count("dropped")
            if self._tap is not None:
                tap_time = max(self._loop.now, self._busy_until)
                tap = self._tap
                self._loop.schedule(max(0.0, tap_time - self._loop.now),
                                    lambda: tap(tap_time, segment))
            if duplicate:
                self._count("duplicated")
                self.transmit(segment, _is_dup=True)
            return
        serialization = 8.0 * segment.wire_bytes / self._config.rate_bps
        start = max(self._loop.now, self._busy_until)
        done = start + serialization
        self._busy_until = done
        if self._tap is not None:
            # The optical tap sits right after the sender's NIC: it sees the
            # frame when fully on the wire (loss/corruption are emulated at
            # the receiving endpoint via tc, so the tap sees what was sent).
            tap_time = done
            tap = self._tap
            self._loop.schedule(max(0.0, done - self._loop.now),
                                lambda: tap(tap_time, segment))
        deliverable = segment
        if corrupted:
            self._count("corrupted")
            if plan.corrupt_mode == CORRUPT_DELIVER:
                deliverable = self._flip_bit(segment)
            else:
                # checksum mode: the frame burned link capacity but the
                # receiver's TCP checksum rejects it — never delivered
                deliverable = None
        if deliverable is not None:
            arrival = done + self._config.one_way_delay + extra_delay
            deliver = self._deliver
            self._loop.schedule(max(0.0, arrival - self._loop.now),
                                lambda: deliver(deliverable))
        if duplicate:
            self._count("duplicated")
            self.transmit(segment, _is_dup=True)
