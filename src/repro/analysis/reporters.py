"""Text, JSON, and SARIF renderings of an analysis report.

Every rendering sorts findings — live, suppressed, and stale baseline
entries alike — by (path, line, col, code) at this boundary, so baseline
files, CI logs, and uploaded SARIF diff stably whatever order checkers
or workers produced them in.
"""

from __future__ import annotations

import json

from repro.analysis.finding import Finding


def _stale_key(entry) -> tuple:
    return (entry.path, entry.code, entry.symbol, entry.message)


def render_text(report, verbose: bool = False) -> str:
    """Human-readable report, grouped by file, ruff/gcc-style lines."""
    lines: list[str] = []
    for finding in sorted(report.findings, key=Finding.sort_key):
        lines.append(
            f"{finding.location}: {finding.code} [{finding.severity}] {finding.message}"
        )
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"suppressed by baseline ({len(report.suppressed)}):")
        for finding in sorted(report.suppressed, key=Finding.sort_key):
            lines.append(f"  {finding.location}: {finding.code} {finding.message}")
    if report.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(report.stale_baseline)}) — "
            "no longer matched, remove them:"
        )
        for entry in sorted(report.stale_baseline, key=_stale_key):
            lines.append(f"  {entry.code} {entry.path} [{entry.symbol}] {entry.message}")
    lines.append("")
    lines.append(summary_line(report))
    return "\n".join(lines).lstrip("\n")


def summary_line(report) -> str:
    checked = f"{report.files_checked} file{'s' if report.files_checked != 1 else ''}"
    if not report.findings and not report.suppressed:
        return f"pqtls-lint: {checked} checked, clean"
    parts = [f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''}"]
    if report.suppressed:
        parts.append(f"{len(report.suppressed)} baselined")
    if report.pragma_suppressed:
        parts.append(f"{report.pragma_suppressed} pragma-allowed")
    return f"pqtls-lint: {checked} checked, " + ", ".join(parts)


def render_json(report) -> str:
    payload = {
        "files_checked": report.files_checked,
        "findings": [f.to_dict() for f in sorted(report.findings, key=Finding.sort_key)],
        "suppressed": [
            f.to_dict() for f in sorted(report.suppressed, key=Finding.sort_key)
        ],
        "pragma_suppressed": report.pragma_suppressed,
        "stale_baseline": [
            entry.to_dict()
            for entry in sorted(report.stale_baseline, key=_stale_key)
        ],
        "summary": summary_line(report),
    }
    return json.dumps(payload, indent=2)


def _rule_meanings() -> dict[str, str]:
    from repro.analysis.registry import all_checkers
    from repro.analysis.runner import ANA_CODES

    meanings = {"SYNTAX": "file cannot be parsed"}
    for checker in all_checkers():
        meanings.update(checker.codes)
    meanings.update(ANA_CODES)
    return meanings


def render_sarif(report) -> str:
    """SARIF 2.1.0 for code-scanning upload (live findings only, sorted).

    Baseline-suppressed findings are deliberately absent: the committed
    baseline is this repo's review surface for accepted findings, and
    re-surfacing them in code scanning would just demand a second
    dismissal in the web UI.
    """
    meanings = _rule_meanings()
    findings = sorted(report.findings, key=Finding.sort_key)
    rule_ids = sorted({f.code for f in findings})
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": meanings.get(code, code)},
        }
        for code in rule_ids
    ]
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    },
                    "logicalLocations": (
                        [{"fullyQualifiedName": finding.symbol}]
                        if finding.symbol else []
                    ),
                }
            ],
        }
        for finding in findings
    ]
    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pqtls-lint",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)
