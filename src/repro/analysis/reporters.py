"""Text and JSON renderings of an analysis report."""

from __future__ import annotations

import json

from repro.analysis.finding import Finding


def render_text(report, verbose: bool = False) -> str:
    """Human-readable report, grouped by file, ruff/gcc-style lines."""
    lines: list[str] = []
    for finding in sorted(report.findings, key=Finding.sort_key):
        lines.append(
            f"{finding.location}: {finding.code} [{finding.severity}] {finding.message}"
        )
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"suppressed by baseline ({len(report.suppressed)}):")
        for finding in sorted(report.suppressed, key=Finding.sort_key):
            lines.append(f"  {finding.location}: {finding.code} {finding.message}")
    if report.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(report.stale_baseline)}) — "
            "no longer matched, remove them:"
        )
        for entry in report.stale_baseline:
            lines.append(f"  {entry.code} {entry.path} [{entry.symbol}] {entry.message}")
    lines.append("")
    lines.append(summary_line(report))
    return "\n".join(lines).lstrip("\n")


def summary_line(report) -> str:
    checked = f"{report.files_checked} file{'s' if report.files_checked != 1 else ''}"
    if not report.findings and not report.suppressed:
        return f"pqtls-lint: {checked} checked, clean"
    parts = [f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''}"]
    if report.suppressed:
        parts.append(f"{len(report.suppressed)} baselined")
    if report.pragma_suppressed:
        parts.append(f"{report.pragma_suppressed} pragma-allowed")
    return f"pqtls-lint: {checked} checked, " + ", ".join(parts)


def render_json(report) -> str:
    payload = {
        "files_checked": report.files_checked,
        "findings": [f.to_dict() for f in sorted(report.findings, key=Finding.sort_key)],
        "suppressed": [
            f.to_dict() for f in sorted(report.suppressed, key=Finding.sort_key)
        ],
        "pragma_suppressed": report.pragma_suppressed,
        "stale_baseline": [entry.to_dict() for entry in report.stale_baseline],
        "summary": summary_line(report),
    }
    return json.dumps(payload, indent=2)
