"""``pqtls-lint``: the command-line front end.

Exit codes: 0 clean (or baselined), 1 findings, 2 usage/configuration
error — so CI can gate on any non-baselined contract violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.registry import all_checkers
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.runner import analyze, find_project_root


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pqtls-lint",
        description="Domain static analysis for the post-quantum TLS reproduction: "
                    "constant-time discipline (CT, intra- and interprocedural), "
                    "secret-leak-to-observability (LEAK), flow-API misuse (FLOW), "
                    "determinism (DET), layering (LAYER), wire sizes (WIRE), and "
                    "exception hygiene (EXC).",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/repro under the project root)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", action="append", metavar="CODE",
                        help="run only matching checkers (name or code prefix, repeatable)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="fan per-file checking over N spawned workers "
                             "(clamped to the core count; output is byte-identical "
                             "to --jobs 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't write the content-addressed result "
                             "cache under .cache/lint/")
    parser.add_argument("--sarif", type=Path, metavar="FILE", default=None,
                        help="also write findings as SARIF 2.1.0 to FILE "
                             "(for code-scanning upload)")
    parser.add_argument("--check-pragmas", action="store_true",
                        help="flag `pqtls: allow[...]` pragmas and baseline entries "
                             "that no longer suppress anything (ANA001/ANA002)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: <project root>/{DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline file and exit 0; "
                             "each new entry still needs a hand-written justification")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file without its stale entries "
                             "and exit 0")
    parser.add_argument("--list-checkers", action="store_true")
    parser.add_argument("--verbose", action="store_true",
                        help="also show baseline-suppressed findings")
    return parser


def _list_checkers() -> str:
    lines = []
    for checker in all_checkers():
        lines.append(f"{checker.name:8s} {checker.description}")
        for code, meaning in sorted(checker.codes.items()):
            lines.append(f"         {code}: {meaning}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        print(_list_checkers())
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    paths = args.paths
    if not paths:
        root = find_project_root(Path.cwd())
        default = root / "src" / "repro"
        if not default.exists():
            parser.error("no paths given and no src/repro under the project root")
        paths = [default]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    project_root = find_project_root(paths[0])
    baseline_path = args.baseline or (project_root / DEFAULT_BASELINE_NAME)
    baseline = None
    if not args.no_baseline and not args.update_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"pqtls-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    if args.prune_baseline and baseline is None:
        print("pqtls-lint: --prune-baseline needs a loadable baseline file",
              file=sys.stderr)
        return 2

    try:
        report = analyze(paths, project_root=project_root, select=args.select,
                         baseline=baseline, jobs=args.jobs,
                         use_cache=not args.no_cache,
                         check_pragmas=args.check_pragmas)
    except KeyError as exc:
        print(f"pqtls-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.update_baseline:
        new_baseline = Baseline.from_findings(report.findings)
        if baseline_path.exists():
            # keep existing justifications for entries that still match
            old = {e.identity(): e for e in Baseline.load(baseline_path).entries}
            new_baseline.entries = [old.get(e.identity(), e) for e in new_baseline.entries]
        new_baseline.save(baseline_path)
        print(f"pqtls-lint: wrote {len(new_baseline.entries)} entries to {baseline_path}")
        todo = [e for e in new_baseline.entries if e.justification.startswith("TODO")]
        if todo:
            print(f"pqtls-lint: {len(todo)} entries need a justification before "
                  "the baseline will load", file=sys.stderr)
        return 0

    if args.prune_baseline:
        stale = {entry.identity() for entry in report.stale_baseline}
        kept = [e for e in baseline.entries if e.identity() not in stale]
        baseline.entries = kept
        baseline.save(baseline_path)
        print(f"pqtls-lint: pruned {len(stale)} stale entries from "
              f"{baseline_path}; {len(kept)} remain")
        return 0

    if args.sarif is not None:
        args.sarif.write_text(render_sarif(report), encoding="utf-8")

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
