"""The whole-program engine: summaries solved to a deterministic fixpoint.

:class:`FlowEngine` ties the pieces together.  Construction builds the
module index and the (purely syntactic, hence iteration-stable) call
graph; :meth:`FlowEngine.solve` then runs a worklist over every indexed
function, recomputing its :class:`~repro.analysis.flow.taint.TaintSummary`
from its callees' current summaries and re-enqueuing callers whenever a
summary grows.  Summaries form a finite lattice and only ever grow, so
the fixpoint exists, is unique, and is independent of worklist order —
which is what makes ``--jobs 1`` and ``--jobs N`` findings bit-identical.

Checkers then ask for per-function *profile* analyses:

- ``"summary"`` — every parameter seeded with its own token (used
  internally to build summaries);
- ``"ct"`` — secret-named parameters (every parameter in the strict
  ``repro.crypto.kernels`` scope) seeded as secrets; crypto scope only;
- ``"leak"`` — secret-named parameters seeded in the crypto/pqc/tls
  units, secret-named attribute reads everywhere.

Soundness limits (see DESIGN.md §11): closures over outer locals,
container element tracking, attribute flow through object graphs, and
``*args``/``**kwargs`` forwarding are over- or under-approximated; the
engine is a reviewer that never sleeps, not a verifier.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.context import FileContext
from repro.analysis.flow.callgraph import FunctionIndex, FunctionInfo
from repro.analysis.flow.imports import ModuleIndex
from repro.analysis.flow.taint import (
    CRYPTO_SCOPES,
    STRICT_SCOPES,
    SECRET_ATTR_RE,
    SECRET_RETURNING,
    FunctionAnalysis,
    SinkRecord,
    TaintSummary,
    _ExprTaint,
    analyze_dataflow,
    header_exprs,
    in_scope,
    is_secret_name,
    iter_ct_sinks,
    iter_leak_sinks,
    token_text,
)

# units whose secret-named parameters seed the leak analysis; elsewhere a
# parameter called `seed` is public campaign configuration
LEAK_SEED_SCOPES = ("repro.crypto", "repro.pqc", "repro.tls")

_SINK_KIND_TEXT = {"branch": "branch", "loop-bound": "loop bound",
                   "subscript": "subscript index", "observability": "sink"}


class FlowEngine:
    """Build once per run over the analyzed contexts, then query."""

    def __init__(self, ctxs: list[FileContext]):
        self.ctxs = ctxs
        self.modules = ModuleIndex(ctxs)
        self.functions = FunctionIndex(ctxs, self.modules)
        self.summaries: dict[str, TaintSummary] = {}
        self._analyses: dict[tuple[str, str], FunctionAnalysis] = {}
        self._solved = False

    # -- public API ---------------------------------------------------------

    def solve(self) -> "FlowEngine":
        """Run the interprocedural fixpoint (idempotent)."""
        if self._solved:
            return self
        order = sorted(self.functions.functions)
        for qualname in order:
            info = self.functions.functions[qualname]
            self.summaries[qualname] = TaintSummary(
                qualname=qualname, param_names=info.param_names)
        callers: dict[str, set[str]] = {}
        for qualname in order:
            for _, callees in self.functions.functions[qualname].call_sites:
                for callee in callees:
                    callers.setdefault(callee, set()).add(qualname)
        pending = deque(order)
        queued = set(order)
        rounds, cap = 0, 20 * max(1, len(order))
        while pending and rounds < cap:
            rounds += 1
            qualname = pending.popleft()
            queued.discard(qualname)
            summary = self._compute_summary(qualname)
            if summary.state() != self.summaries[qualname].state():
                self.summaries[qualname] = summary
                for caller in sorted(callers.get(qualname, ())):
                    if caller not in queued:
                        pending.append(caller)
                        queued.add(caller)
            else:
                self.summaries[qualname] = summary
        self._solved = True
        return self

    def functions_in_scope(self, scopes: tuple[str, ...]) -> list[FunctionInfo]:
        return [self.functions.functions[q]
                for q in sorted(self.functions.functions)
                if in_scope(self.functions.functions[q].module, scopes)]

    def analysis(self, qualname: str, profile: str) -> FunctionAnalysis:
        """Solved dataflow for one function under a seed profile (cached)."""
        key = (qualname, profile)
        if key not in self._analyses:
            self._analyses[key] = self._analyze(
                self.functions.functions[qualname], profile)
        return self._analyses[key]

    def summary(self, qualname: str) -> TaintSummary | None:
        return self.summaries.get(qualname)

    # -- seeds and expression taint ----------------------------------------

    def _seeds(self, info: FunctionInfo, profile: str) -> dict[str, frozenset]:
        env: dict[str, frozenset] = {}
        strict = in_scope(info.module, STRICT_SCOPES)
        for index, name in enumerate(info.param_names):
            if profile == "summary":
                env[name] = frozenset({("param", index, name)})
            elif profile == "ct":
                if strict and name not in ("self", "cls"):
                    env[name] = frozenset(
                        {("secret", f"parameter {name!r} (strict kernel scope)")})
                elif is_secret_name(name):
                    env[name] = frozenset({("secret", f"parameter {name!r}")})
            elif profile == "leak":
                if in_scope(info.module, LEAK_SEED_SCOPES) and is_secret_name(name):
                    env[name] = frozenset({("secret", f"parameter {name!r}")})
        return env

    @staticmethod
    def _attr_sources(node: ast.AST) -> frozenset:
        # `shared_secret_bytes` and friends are *wire-size* constants the
        # algorithm registry publishes, not key material
        if (isinstance(node, ast.Attribute)
                and SECRET_ATTR_RE.search(node.attr)
                and not node.attr.endswith("_bytes")):
            return frozenset({("secret", f"attribute {node.attr!r}")})
        return frozenset()

    def _expr_taint(self, info: FunctionInfo) -> _ExprTaint:
        call_map = {id(call): callees for call, callees in info.call_sites}

        def call_tokens(call: ast.Call, env: dict, expr: _ExprTaint):
            callees = call_map.get(id(call))
            if not callees:
                return None  # unresolved: caller falls back to pass-through
            if any(isinstance(arg, ast.Starred) for arg in call.args) \
                    or any(kw.arg is None for kw in call.keywords):
                return None  # *args/**kwargs forwarding: stay conservative
            out: set = set()
            for qualname in callees:
                summary = self.summaries.get(qualname)
                callee = self.functions.get(qualname)
                if summary is None or callee is None:
                    return None
                for index in sorted(summary.flows_to_return):
                    arg = self._arg_for_index(call, callee, index)
                    if arg is not None:
                        out |= expr.tokens(arg, env)
                if summary.secret_return and (
                        in_scope(callee.module, LEAK_SEED_SCOPES)
                        or callee.name in SECRET_RETURNING):
                    # only crypto/pqc/tls units originate secrets; a netsim
                    # wrapper whose return merely *touched* a secret object
                    # (e.g. Testbed.run_handshake) must not taint every
                    # campaign call site that logs its outcome
                    out.add(("secret", f"{callee.name}() result"))
            return frozenset(out)

        return _ExprTaint(self._attr_sources, call_tokens)

    @staticmethod
    def _arg_for_index(call: ast.Call, callee: FunctionInfo,
                       index: int) -> ast.expr | None:
        offset = 1 if (callee.implicit_self
                       and isinstance(call.func, ast.Attribute)) else 0
        position = index - offset
        if 0 <= position < len(call.args):
            return call.args[position]
        if 0 <= index < len(callee.param_names):
            wanted = callee.param_names[index]
            for keyword in call.keywords:
                if keyword.arg == wanted:
                    return keyword.value
        return None

    def _analyze(self, info: FunctionInfo, profile: str) -> FunctionAnalysis:
        return analyze_dataflow(info.node, self._seeds(info, profile),
                                self._expr_taint(info),
                                parents=info.ctx.parents)

    # -- summary construction ----------------------------------------------

    def _compute_summary(self, qualname: str) -> TaintSummary:
        info = self.functions.functions[qualname]
        analysis = self._analyze(info, "summary")
        flows: set[int] = set()
        secret_return = False
        for token in analysis.return_tokens:
            if token[0] == "param":
                flows.add(token[1])
            elif token[0] == "secret":
                secret_return = True
        sinks: dict[int, SinkRecord] = {}
        allowed_sinks: dict[int, SinkRecord] = {}
        ct_scoped = in_scope(info.module, CRYPTO_SCOPES)
        call_map = {id(call): callees for call, callees in info.call_sites}
        for stmt, env in analysis.iter_env():
            if ct_scoped:
                for kind, code, node, tokens in iter_ct_sinks(stmt, env, analysis.expr):
                    self._record_param_sinks(
                        info, sinks, allowed_sinks, tokens, kind, code,
                        node.lineno,
                        f"`{_SINK_KIND_TEXT[kind]}` at "
                        f"{info.ctx.relpath}:{node.lineno}")
            for code, node, tokens, what in iter_leak_sinks(stmt, env, analysis.expr):
                self._record_param_sinks(
                    info, sinks, allowed_sinks, tokens, "observability", code,
                    node.lineno,
                    f"{what} at {info.ctx.relpath}:{node.lineno}")
            # transitive: an argument that reaches a sink inside a callee
            for expr in header_exprs(stmt):
                for node in ast.walk(expr):
                    if isinstance(node, ast.Call) and id(node) in call_map:
                        self._record_transitive(info, node, call_map[id(node)],
                                                env, analysis, sinks,
                                                allowed_sinks)
        return TaintSummary(
            qualname=qualname, param_names=info.param_names,
            flows_to_return=frozenset(flows), secret_return=secret_return,
            param_sinks=sinks, param_allowed_sinks=allowed_sinks)

    def _record_param_sinks(self, info: FunctionInfo, sinks: dict,
                            allowed_sinks: dict, tokens: frozenset, kind: str,
                            code: str, line: int, description: str) -> None:
        allowed = info.ctx.is_allowed(line, code)
        bucket = allowed_sinks if allowed else sinks
        for token in sorted(tokens):
            if token[0] != "param":
                continue
            index = token[1]
            if index not in bucket:
                bucket[index] = SinkRecord(kind=kind, code=code, line=line,
                                           allowed=allowed,
                                           description=description)

    def _record_transitive(self, info: FunctionInfo, call: ast.Call,
                           callees: list[str], env: dict,
                           analysis: FunctionAnalysis, sinks: dict,
                           allowed_sinks: dict) -> None:
        for qualname in callees:
            summary = self.summaries.get(qualname)
            callee = self.functions.get(qualname)
            if summary is None or callee is None:
                continue
            for callee_index, record in sorted(
                    [*summary.param_sinks.items(),
                     *summary.param_allowed_sinks.items()],
                    key=lambda pair: pair[0]):
                arg = self._arg_for_index(call, callee, callee_index)
                if arg is None:
                    continue
                tokens = analysis.tokens(arg, env)
                bucket = allowed_sinks if record.allowed else sinks
                for token in sorted(tokens):
                    if token[0] != "param" or token[1] in bucket:
                        continue
                    bucket[token[1]] = SinkRecord(
                        kind=record.kind, code=record.code, line=call.lineno,
                        allowed=record.allowed,
                        description=f"via {callee.name}() -> {record.description}")


def origin_text(tokens: frozenset) -> str:
    """Deterministic human origin for a token set (first sorted token)."""
    for token in sorted(tokens):
        return token_text(token)
    return "secret data"
