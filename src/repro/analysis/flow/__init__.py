"""`repro.analysis.flow` — whole-program dataflow engine for pqtls-lint.

The intraprocedural checkers see one function at a time; this package
sees the tree.  It discovers every module under the analyzed paths,
resolves imports to a :class:`~repro.analysis.flow.imports.ModuleIndex`,
indexes every function into a call graph
(:class:`~repro.analysis.flow.callgraph.FunctionIndex`), builds a
per-function control-flow graph with reaching-definition taint states
(:mod:`~repro.analysis.flow.cfg`), and solves per-function *taint
summaries* — which parameters flow to the return value, whether the
return is secret-derived, and which parameters reach a constant-time or
observability sink — to a deterministic interprocedural fixpoint
(:mod:`~repro.analysis.flow.taint`, :mod:`~repro.analysis.flow.engine`).

Checkers consume the solved :class:`FlowEngine`: CT1xx follows secrets
across call and module boundaries, LEAK00x follows them into tracer
spans, metric names, flight-recorder events and exception messages, and
FLOW00x audits `declassify`/`Drbg.fork` API use.  Soundness limits are
documented in DESIGN.md §11.
"""

from repro.analysis.flow.callgraph import FunctionIndex, FunctionInfo
from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.imports import ModuleIndex, import_bindings, resolve_relative
from repro.analysis.flow.taint import FunctionAnalysis, TaintSummary

__all__ = [
    "Cfg",
    "FlowEngine",
    "FunctionAnalysis",
    "FunctionIndex",
    "FunctionInfo",
    "ModuleIndex",
    "TaintSummary",
    "build_cfg",
    "import_bindings",
    "resolve_relative",
]
