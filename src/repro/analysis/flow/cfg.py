"""Per-function control-flow graphs for flow-sensitive taint tracking.

A :class:`Cfg` is a list of basic blocks over the *statements* of one
function.  Compound statements appear inside a block as their own
header — the transfer function evaluates only their header expressions
(an ``if``'s test, a ``for``'s iterable, a ``with``'s items, a
``match``'s subject) — while their bodies live in successor blocks.
``except`` handlers and ``match`` cases are represented by their
``ExceptHandler`` / ``match_case`` nodes as pseudo-statements so the
transfer function can model the names they bind.

Loops get a dedicated header block with a back edge from the body, so a
fixpoint over the graph makes taint survive reassignment *and* loops —
the property the sticky intraprocedural pass can't give (it never kills
a definition, so ``x = sk; x = 0`` stays tainted there).

Conservative choices (documented in DESIGN.md §11): every block inside a
``try`` body edges to every handler (an exception can fly mid-block),
and a ``match`` keeps a fall-through edge even when a wildcard case
exists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

_LOOPS = (ast.While, ast.For, ast.AsyncFor)


@dataclass
class Block:
    """One basic block: straight-line statements plus edge lists."""

    index: int
    stmts: list[ast.AST] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class Cfg:
    """Blocks in creation order; block 0 is the entry."""

    blocks: list[Block]

    @property
    def entry(self) -> Block:
        return self.blocks[0]


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.break_collectors: list[list[int]] = []
        self.loop_headers: list[int] = []

    def new_block(self) -> int:
        self.blocks.append(Block(len(self.blocks)))
        return len(self.blocks) - 1

    def link(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def seq(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        """Emit *stmts* reachable from *frontier*; return the exit frontier."""
        open_id: int | None = None

        def current() -> int:
            nonlocal open_id, frontier
            if open_id is None:
                open_id = self.new_block()
                for src in frontier:
                    self.link(src, open_id)
                frontier = [open_id]
            return open_id

        for stmt in stmts:
            if isinstance(stmt, ast.If):
                header = current()
                self.blocks[header].stmts.append(stmt)
                then_exit = self.seq(stmt.body, [header])
                else_exit = self.seq(stmt.orelse, [header]) if stmt.orelse else [header]
                open_id, frontier = None, then_exit + else_exit
            elif isinstance(stmt, _LOOPS):
                # dedicated header so the back edge re-evaluates only the
                # loop condition / iterable, never earlier statements
                header = self.new_block()
                for src in frontier:
                    self.link(src, header)
                self.blocks[header].stmts.append(stmt)
                self.break_collectors.append([])
                self.loop_headers.append(header)
                for exit_id in self.seq(stmt.body, [header]):
                    self.link(exit_id, header)
                breaks = self.break_collectors.pop()
                self.loop_headers.pop()
                orelse_exit = self.seq(stmt.orelse, [header]) if stmt.orelse else [header]
                open_id, frontier = None, orelse_exit + breaks
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                first_body_block = len(self.blocks)
                body_exit = self.seq(stmt.body, frontier)
                body_blocks = list(range(first_body_block, len(self.blocks)))
                handler_exits: list[int] = []
                for handler in stmt.handlers:
                    entry = self.new_block()
                    self.blocks[entry].stmts.append(handler)
                    for block_id in body_blocks or frontier:
                        self.link(block_id, entry)
                    handler_exits += self.seq(handler.body, [entry])
                orelse_exit = self.seq(stmt.orelse, body_exit) if stmt.orelse else body_exit
                after = orelse_exit + handler_exits
                if stmt.finalbody:
                    after = self.seq(stmt.finalbody, after)
                open_id, frontier = None, after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                header = current()
                self.blocks[header].stmts.append(stmt)
                body_exit = self.seq(stmt.body, [header])
                open_id, frontier = None, body_exit
            elif isinstance(stmt, ast.Match):
                header = current()
                self.blocks[header].stmts.append(stmt)
                exits: list[int] = [header]
                for case in stmt.cases:
                    entry = self.new_block()
                    self.blocks[entry].stmts.append(case)
                    self.link(header, entry)
                    exits += self.seq(case.body, [entry])
                open_id, frontier = None, exits
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self.blocks[current()].stmts.append(stmt)
                open_id, frontier = None, []
            elif isinstance(stmt, ast.Break):
                block = current()
                self.blocks[block].stmts.append(stmt)
                if self.break_collectors:
                    self.break_collectors[-1].append(block)
                open_id, frontier = None, []
            elif isinstance(stmt, ast.Continue):
                block = current()
                self.blocks[block].stmts.append(stmt)
                if self.loop_headers:
                    self.link(block, self.loop_headers[-1])
                open_id, frontier = None, []
            else:
                # simple statement (assignments, expressions, nested defs,
                # imports, ...) — straight-line, stays in the open block
                self.blocks[current()].stmts.append(stmt)
        return frontier


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """Build the CFG of one function; block 0 is always the entry."""
    builder = _Builder()
    entry = builder.new_block()
    builder.seq(func.body, [entry])
    return Cfg(blocks=builder.blocks)
