"""Function index and call-site resolution over the analyzed tree.

Every ``def`` (module-level, method, nested) gets a *qualname* of the
form ``module:Symbol.path`` (``repro.pqc.kyber.kem:KyberKem.decaps``).
Call sites resolve through, in order:

1. **local bindings** — a ``Name`` call to a function defined at module
   level in the same module;
2. **imports** — a ``Name`` or ``module.attr`` call whose base resolves
   through :func:`~repro.analysis.flow.imports.import_bindings` into the
   :class:`~repro.analysis.flow.imports.ModuleIndex`;
3. **self/cls dispatch** — ``self.m(...)`` inside a class body binds to
   that class's own method when it exists;
4. **name-based dispatch** — ``obj.m(...)`` on an unknown receiver links
   to *every* method named ``m`` in the index (bounded class-hierarchy
   analysis without types).  The union of candidate summaries is taken,
   which over-approximates but never silently drops a secret flow; sites
   with more than :data:`MAX_CANDIDATES` candidates stay unresolved
   rather than union half the codebase.

Resolution is purely syntactic, so the call graph is stable across
summary iterations and safe to build once up front.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.context import FileContext
from repro.analysis.flow.imports import ModuleIndex, import_bindings
from repro.analysis.flow.taint import function_params

MAX_CANDIDATES = 10

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One indexed function definition."""

    qualname: str                 # "repro.pqc.kyber.kem:KyberKem.decaps"
    module: str
    symbol: str                   # "KyberKem.decaps" (dotted def chain)
    name: str                     # "decaps"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    class_name: str | None        # immediate enclosing class, if a method
    param_names: tuple[str, ...] = ()
    call_sites: list = field(default_factory=list)   # [(ast.Call, [qualnames])]

    @property
    def implicit_self(self) -> bool:
        return (self.class_name is not None and bool(self.param_names)
                and self.param_names[0] in ("self", "cls"))


class FunctionIndex:
    """All functions in the analyzed tree, with resolved call sites."""

    def __init__(self, ctxs: list[FileContext], modules: ModuleIndex):
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._bindings: dict[str, dict[str, str]] = {}
        for ctx in sorted(ctxs, key=lambda c: c.module):
            self._bindings[ctx.module] = import_bindings(ctx)
            self._index_file(ctx)
        for qualname in sorted(self.functions):
            self._resolve_calls(self.functions[qualname])

    # -- indexing -----------------------------------------------------------

    def _index_file(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _DEFS):
                continue
            enclosing = ctx.symbol_at(node)
            symbol = f"{enclosing}.{node.name}" if enclosing else node.name
            parent = ctx.parents.get(node)
            class_name = parent.name if isinstance(parent, ast.ClassDef) else None
            info = FunctionInfo(
                qualname=f"{ctx.module}:{symbol}",
                module=ctx.module, symbol=symbol, name=node.name,
                node=node, ctx=ctx, class_name=class_name,
                param_names=tuple(function_params(node)),
            )
            self.functions[info.qualname] = info
            if class_name is not None:
                self._methods_by_name.setdefault(node.name, []).append(info.qualname)

    def get(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def lookup(self, module: str, symbol: str) -> FunctionInfo | None:
        return self.functions.get(f"{module}:{symbol}")

    # -- call resolution ----------------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> None:
        nested = {
            child for child in ast.walk(info.node)
            if isinstance(child, _DEFS) and child is not info.node
        }

        def in_nested(node: ast.AST) -> bool:
            current = info.ctx.parents.get(node)
            while current is not None and current is not info.node:
                if current in nested:
                    return True
                current = info.ctx.parents.get(current)
            return False

        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and not in_nested(node):
                callees = self.resolve_call(node, info)
                if callees:
                    info.call_sites.append((node, callees))

    def resolve_call(self, call: ast.Call, enclosing: FunctionInfo) -> list[str]:
        """Qualnames a call may reach (sorted; empty when unresolvable)."""
        func = call.func
        bindings = self._bindings.get(enclosing.module, {})
        if isinstance(func, ast.Name):
            local = self.lookup(enclosing.module, func.id)
            if local is not None and func.id not in bindings:
                return [local.qualname]
            return self._resolve_dotted(bindings.get(func.id))
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and enclosing.class_name:
                    own = self.lookup(enclosing.module,
                                      f"{enclosing.class_name}.{method}")
                    if own is not None:
                        return [own.qualname]
                bound = bindings.get(base.id)
                if bound is not None:
                    return self._resolve_dotted(f"{bound}.{method}")
            candidates = sorted(self._methods_by_name.get(method, []))
            if 0 < len(candidates) <= MAX_CANDIDATES:
                return candidates
        return []

    def _resolve_dotted(self, dotted: str | None) -> list[str]:
        if not dotted:
            return []
        resolved = self.modules.resolve(dotted)
        if resolved is None:
            return []
        module, symbol = resolved
        if not symbol:
            return []
        info = self.lookup(module, symbol)
        if info is not None:
            return [info.qualname]
        # `from pkg import helper` re-exported through an __init__: follow
        # one level of the target module's own import bindings
        target_bindings = self._bindings.get(module, {})
        forwarded = target_bindings.get(symbol.split(".")[0])
        if forwarded:
            tail = symbol.split(".", 1)
            dotted = forwarded if len(tail) == 1 else f"{forwarded}.{tail[1]}"
            resolved = self.modules.resolve(dotted)
            if resolved is not None:
                info = self.lookup(*resolved)
                if info is not None:
                    return [info.qualname]
        return []
