"""Flow-sensitive taint tracking and per-function taint summaries.

This module owns the taint *semantics* shared by the intraprocedural CT
checker and the whole-program engine:

- which names seed taint (:data:`SECRET_NAME_RE`, and the narrower
  :data:`SECRET_ATTR_RE` used for attribute reads, where ``seed`` /
  ``coins`` would over-taint public configuration),
- which calls return secrets (``decaps``/``decap``), how ``keygen``
  results split into a public and a secret half,
- which calls sanitize (``len``, ``declassify``, ...) — with the rule
  that a sanitizer applied to an *attribute or subscript* of a tainted
  value does **not** launder: the length or projection of a
  secret-selected component may itself be secret-dependent, and
  ``declassify`` must be applied to the binding it actually publishes.

On top of the :mod:`~repro.analysis.flow.cfg` graphs it runs a
reaching-definitions style dataflow: the state maps each local name to
the set of taint *tokens* that may reach it, joins are unions, and an
untainted reassignment kills — so taint survives loops but dies at
``x = 0``.  Tokens are ``("param", index, name)`` during summary
construction and ``("secret", description)`` for genuine secrets; a
:class:`TaintSummary` then records which parameters flow to the return
value, whether the return is secret-derived regardless of arguments,
and which parameters reach a constant-time or observability sink inside
the function (transitively, once the engine's fixpoint closes).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.flow.cfg import Cfg, build_cfg

# Parameter / variable names treated as secret seeds (the CT checker's
# historical pattern: broad on purpose for crypto-layer parameters).
SECRET_NAME_RE = re.compile(
    r"(^|_)(sk|secret|secrets|seed|seeds|coins|scalar|private|priv|signing_key|"
    r"shared_secret)(_|$)|secret"
)

# Attribute reads seed taint only on unambiguous names: `cfg.seed` is a
# public campaign parameter, but `conn._signing_key` is not.
SECRET_ATTR_RE = re.compile(
    r"(^|_)(sk|signing_key|shared_secret|private_key|priv)(_|$)|secret_key|_secret$"
)

# Calls whose results are secret: obj.decaps()/decap() shared secrets.
SECRET_RETURNING = {"decaps", "decap"}
# Calls returning a (public, secret) pair.
KEYGEN_NAMES = {"keygen", "generate_keypair"}
# Calls whose results are public regardless of argument taint.
SANITIZERS = {"len", "declassify", "type", "isinstance", "id"}

# Module prefixes the CT discipline applies to, and the strict subset
# where every parameter seeds taint (generic data-plane kernels).
CRYPTO_SCOPES = ("repro.crypto", "repro.pqc")
STRICT_SCOPES = ("repro.crypto.kernels",)

Token = tuple  # ("param", index, name) | ("secret", description)


def is_secret_name(name: str) -> bool:
    return bool(SECRET_NAME_RE.search(name))


def call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def in_scope(module: str, scopes: tuple[str, ...]) -> bool:
    return any(module == s or module.startswith(s + ".") for s in scopes)


def token_text(token: Token) -> str:
    """Human-readable origin for findings ("parameter 'sk'", ...)."""
    if token[0] == "param":
        return f"parameter {token[2]!r}"
    return token[1]


def attr_root(node: ast.AST) -> str | None:
    """The root Name of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def sanitizer_laundered_tokens(call: ast.Call, env: dict[str, frozenset]) -> frozenset:
    """Tokens that survive a sanitizer call (usually none).

    ``len(sk)`` is public — a whole value's length is a structural wire
    size.  ``len(sk.x)`` / ``declassify(sk[i])`` are *not* sanitized:
    the component was selected out of secret data and its
    length/projection may be secret-dependent, so the taint of the root
    name flows through (the tuple-unpacking laundering fixed alongside
    this rule).
    """
    survived: set = set()
    for arg in [*call.args, *[kw.value for kw in call.keywords]]:
        if isinstance(arg, (ast.Attribute, ast.Subscript)):
            root = attr_root(arg)
            if root is not None and env.get(root):
                survived.update(env[root])
    return frozenset(survived)


@dataclass
class SinkRecord:
    """One constant-time / observability sink inside a function."""

    kind: str        # "branch" | "loop-bound" | "subscript" | "observability"
    code: str        # the intra code a direct finding would carry (CT001, ...)
    line: int
    allowed: bool    # suppressed by a `pqtls: allow` pragma at the sink
    description: str


@dataclass
class TaintSummary:
    """What a caller needs to know about one function's taint behaviour."""

    qualname: str
    param_names: tuple[str, ...] = ()
    flows_to_return: frozenset = frozenset()     # param indices reaching returns
    secret_return: bool = False                  # return secret-derived regardless
    param_sinks: dict = field(default_factory=dict)         # index -> SinkRecord
    param_allowed_sinks: dict = field(default_factory=dict)  # pragma-allowed sinks

    def state(self) -> tuple:
        """Comparable fixpoint state (summaries only ever grow)."""
        return (
            self.flows_to_return,
            self.secret_return,
            tuple(sorted((i, s.kind) for i, s in self.param_sinks.items())),
            tuple(sorted((i, s.kind) for i, s in self.param_allowed_sinks.items())),
        )


def function_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


# ---------------------------------------------------------------------------
# expression taint


class _ExprTaint:
    """Token computation for expressions, given an environment.

    *call_tokens* maps a resolved call plus its argument-token callback
    to result tokens via callee summaries; unresolved calls pass their
    argument taint through (the conservative choice the intraprocedural
    checker also makes).
    """

    def __init__(self, env_free_sources: Callable[[ast.AST], frozenset],
                 call_tokens=None):
        self.sources = env_free_sources
        self.call_tokens = call_tokens

    def tokens(self, expr: ast.AST, env: dict[str, frozenset]) -> frozenset:
        out: set = set()
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in SANITIZERS:
                    out |= sanitizer_laundered_tokens(node, env)
                    continue
                if name in SECRET_RETURNING:
                    out.add(("secret", f"{name}() result"))
                    stack.extend(node.args)
                    stack.extend(kw.value for kw in node.keywords)
                    continue
                if self.call_tokens is not None:
                    resolved = self.call_tokens(node, env, self)
                    if resolved is not None:
                        out |= resolved
                        continue
                stack.extend(ast.iter_child_nodes(node))
                continue
            if isinstance(node, ast.Name) and node.id in env:
                out |= env[node.id]
            out |= self.sources(node)
            stack.extend(ast.iter_child_nodes(node))
        return frozenset(out)


# ---------------------------------------------------------------------------
# statement transfer


def _assign_name(env: dict, name: str, tokens: frozenset) -> None:
    """Strong update: an untainted redefinition kills the old taint."""
    if tokens:
        env[name] = tokens
    else:
        env.pop(name, None)


def _weak_taint(env: dict, name: str, tokens: frozenset) -> None:
    if tokens:
        env[name] = env.get(name, frozenset()) | tokens


def _transfer_target(env: dict, target: ast.AST, tokens: frozenset) -> None:
    if isinstance(target, ast.Name):
        _assign_name(env, target.id, tokens)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _transfer_target(env, element, tokens)
    elif isinstance(target, ast.Starred):
        _transfer_target(env, target.value, tokens)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        # obj.f = secret / obj[i] = secret taints the container; a write
        # into a container never clears what it already held.  `self` is
        # exempt: tainting the whole instance on `self._sk = sk` would
        # make every later `self.anything` secret — the SECRET_ATTR_RE
        # read-side seeding covers the attribute itself instead.
        root = attr_root(target)
        if root is not None and root not in ("self", "cls"):
            _weak_taint(env, root, tokens)


class _Transfer:
    """Applies one statement's effect on the environment (in place)."""

    def __init__(self, expr_taint: _ExprTaint,
                 parents: dict[ast.AST, ast.AST] | None = None):
        self.expr = expr_taint
        self.parents = parents or {}

    def _apply_walruses(self, node: ast.AST, env: dict) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.NamedExpr):
                _assign_name(env, sub.target.id, self.expr.tokens(sub.value, env))

    def _assign(self, env: dict, targets: list[ast.AST], value: ast.AST) -> None:
        # `pk, sk = scheme.keygen(drbg)`: the pair splits into a public
        # and a secret half; `pair = scheme.keygen(drbg)` keeps the whole
        # binding secret so unpacking it later cannot launder the key
        if isinstance(value, ast.Call) and call_name(value) in KEYGEN_NAMES:
            origin = frozenset({("secret", f"{call_name(value)}() secret key")})
            for target in targets:
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    _transfer_target(env, target.elts[0], frozenset())
                    _transfer_target(env, target.elts[1], origin)
                else:
                    _transfer_target(env, target, origin)
            return
        for target in targets:
            # element-wise tuple transfer: `a, b = sk, pk` taints only a
            if isinstance(target, (ast.Tuple, ast.List)) \
                    and isinstance(value, (ast.Tuple, ast.List)) \
                    and len(target.elts) == len(value.elts) \
                    and not any(isinstance(e, ast.Starred) for e in target.elts):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    _transfer_target(env, t_elt, self.expr.tokens(v_elt, env))
            else:
                _transfer_target(env, target, self.expr.tokens(value, env))

    def apply(self, stmt: ast.AST, env: dict) -> None:
        for expr in header_exprs(stmt):
            self._apply_walruses(expr, env)
        if isinstance(stmt, ast.Assign):
            self._assign(env, stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(env, [stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            tokens = self.expr.tokens(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                _weak_taint(env, stmt.target.id, tokens)
            else:
                _transfer_target(env, stmt.target, tokens)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            _transfer_target(env, stmt.target, self.expr.tokens(stmt.iter, env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    _transfer_target(env, item.optional_vars,
                                     self.expr.tokens(item.context_expr, env))
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                _assign_name(env, stmt.name, frozenset())
        elif isinstance(stmt, ast.match_case):
            match = self.parents.get(stmt)
            subject_tokens = frozenset()
            if isinstance(match, ast.Match):
                subject_tokens = self.expr.tokens(match.subject, env)
            for sub in ast.walk(stmt.pattern):
                if isinstance(sub, (ast.MatchAs, ast.MatchStar)) and sub.name:
                    _assign_name(env, sub.name, subject_tokens)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.pop(stmt.name, None)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                env.pop(bound, None)


def header_exprs(stmt: ast.AST) -> list[ast.expr]:
    """The expressions a block evaluates for *stmt* (bodies excluded)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.ExceptHandler, ast.match_case)):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [node for node in ast.iter_child_nodes(stmt)
            if isinstance(node, ast.expr)]


# ---------------------------------------------------------------------------
# per-function dataflow


@dataclass
class FunctionAnalysis:
    """Solved dataflow for one function: per-block entry environments."""

    cfg: Cfg
    in_states: dict[int, dict[str, frozenset]]
    transfer: _Transfer
    expr: _ExprTaint
    return_tokens: frozenset = frozenset()

    def iter_env(self) -> Iterator[tuple[ast.AST, dict[str, frozenset]]]:
        """Yield ``(stmt, env_before)`` deterministically (block order)."""
        for block in self.cfg.blocks:
            env = dict(self.in_states.get(block.index, {}))
            for stmt in block.stmts:
                yield stmt, env
                self.transfer.apply(stmt, env)

    def tokens(self, expr: ast.AST, env: dict[str, frozenset]) -> frozenset:
        return self.expr.tokens(expr, env)


def _join(a: dict[str, frozenset], b: dict[str, frozenset]) -> dict[str, frozenset]:
    out = dict(a)
    for name, tokens in b.items():
        out[name] = out.get(name, frozenset()) | tokens
    return out


def analyze_dataflow(func: ast.FunctionDef | ast.AsyncFunctionDef,
                     seed_env: dict[str, frozenset],
                     expr_taint: _ExprTaint,
                     parents: dict | None = None,
                     max_rounds: int = 50) -> FunctionAnalysis:
    """Solve the taint dataflow of one function to a fixpoint.

    The lattice is finite (token sets only grow per join) and transfer is
    monotone in the inputs, so the worklist terminates; *max_rounds*
    bounds pathological graphs.
    """
    cfg = build_cfg(func)
    transfer = _Transfer(expr_taint, parents)
    in_states: dict[int, dict[str, frozenset]] = {0: dict(seed_env)}
    out_states: dict[int, dict[str, frozenset]] = {}
    worklist = [block.index for block in cfg.blocks]
    rounds = 0
    while worklist and rounds < max_rounds * len(cfg.blocks):
        rounds += 1
        index = worklist.pop(0)
        block = cfg.blocks[index]
        env = dict(seed_env) if index == 0 else {}
        for pred in block.preds:
            env = _join(env, out_states.get(pred, {}))
        in_states[index] = dict(env)
        for stmt in block.stmts:
            transfer.apply(stmt, env)
        if out_states.get(index) != env:
            out_states[index] = env
            for succ in sorted(block.succs):
                if succ not in worklist:
                    worklist.append(succ)
    analysis = FunctionAnalysis(cfg=cfg, in_states=in_states,
                                transfer=transfer, expr=expr_taint)
    returns: set = set()
    for stmt, env in analysis.iter_env():
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            returns |= expr_taint.tokens(stmt.value, env)
    analysis.return_tokens = frozenset(returns)
    return analysis


# ---------------------------------------------------------------------------
# sink discovery (shared by the summary builder and the CT1xx checker)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def comprehension_env(expr: ast.AST, env: dict[str, frozenset],
                      expr_taint: _ExprTaint) -> dict[str, frozenset]:
    """*env* extended with comprehension targets bound to their iterables.

    Comprehension variables live in their own scope, so the statement
    transfer never binds them — but ``[table[x] for x in sk]`` indexes on
    secret data all the same.  Binding each generator target to its
    iterable's taint before walking for sinks closes that laundering
    hole; ``ast.walk`` visits outer comprehensions before nested ones,
    so chained generators (``for row in sk for x in row``) resolve too.
    """
    extended: dict[str, frozenset] | None = None
    for node in ast.walk(expr):
        if isinstance(node, _COMPREHENSIONS):
            for gen in node.generators:
                if extended is None:
                    extended = dict(env)
                _transfer_target(extended, gen.target,
                                 expr_taint.tokens(gen.iter, extended))
    return extended if extended is not None else env


def iter_ct_sinks(stmt: ast.AST, env: dict[str, frozenset],
                  expr_taint: _ExprTaint):
    """Yield ``(kind, code, node, tokens)`` for CT sinks in a header."""
    if isinstance(stmt, (ast.If, ast.While)):
        tokens = expr_taint.tokens(stmt.test, env)
        if tokens:
            yield "branch", "CT001", stmt, tokens
    if isinstance(stmt, ast.Match):
        tokens = expr_taint.tokens(stmt.subject, env)
        if tokens:
            yield "branch", "CT001", stmt, tokens
    if isinstance(stmt, (ast.For, ast.AsyncFor)) \
            and isinstance(stmt.iter, ast.Call) and call_name(stmt.iter) == "range":
        for arg in stmt.iter.args:
            tokens = expr_taint.tokens(arg, env)
            if tokens:
                yield "loop-bound", "CT002", stmt, tokens
                break
    for expr in header_exprs(stmt):
        scope = comprehension_env(expr, env, expr_taint)
        for node in ast.walk(expr):
            if isinstance(node, ast.IfExp):
                tokens = expr_taint.tokens(node.test, scope)
                if tokens:
                    yield "branch", "CT001", node, tokens
            elif isinstance(node, ast.Subscript):
                tokens = _slice_tokens(node.slice, scope, expr_taint)
                if tokens:
                    yield "subscript", "CT003", node, tokens


def _slice_tokens(node: ast.AST, env: dict, expr_taint: _ExprTaint) -> frozenset:
    if isinstance(node, ast.Slice):
        out: set = set()
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                out |= expr_taint.tokens(part, env)
        return frozenset(out)
    return expr_taint.tokens(node, env)


# Observability sinks: method names through which a secret-derived value
# would become externally visible (trace exports, metric namespaces,
# flight-recorder JSONL, exception text, stdout).
TRACER_METHODS = {"span", "begin", "instant", "counter"}
METRIC_METHODS = {"inc", "set", "observe", "counter", "gauge", "histogram"}
RECORDER_METHODS = {"event", "task_start", "task_finish", "progress"}
PRINT_FUNCS = {"print", "repr"}


def iter_leak_sinks(stmt: ast.AST, env: dict[str, frozenset],
                    expr_taint: _ExprTaint):
    """Yield ``(code, node, tokens, what)`` for observability sinks.

    ``tracer.counter(track, name, ...)`` and ``metrics.counter(name)``
    share a method name; both the track and name positions are checked,
    so the ambiguity can only over-report, never launder.
    """
    if isinstance(stmt, ast.Raise) and isinstance(stmt.exc, ast.Call):
        for arg in [*stmt.exc.args, *[kw.value for kw in stmt.exc.keywords]]:
            tokens = expr_taint.tokens(arg, env)
            if tokens:
                yield "LEAK004", stmt, tokens, "exception message"
                break
    for expr in header_exprs(stmt):
        scope = comprehension_env(expr, env, expr_taint)
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                method = func.attr
                if method in TRACER_METHODS and node.args:
                    for pos, what in ((0, "track name"), (1, "span/instant name")):
                        if pos < len(node.args):
                            tokens = expr_taint.tokens(node.args[pos], scope)
                            if tokens:
                                yield "LEAK001", node, tokens, what
                if method in METRIC_METHODS and node.args:
                    tokens = expr_taint.tokens(node.args[0], scope)
                    if tokens:
                        yield "LEAK002", node, tokens, "metric name/label"
                if method in RECORDER_METHODS:
                    values = [*node.args, *[kw.value for kw in node.keywords]]
                    for value in values:
                        tokens = expr_taint.tokens(value, scope)
                        if tokens:
                            yield "LEAK003", node, tokens, "flight-recorder field"
                            break
            elif isinstance(func, ast.Name) and func.id in PRINT_FUNCS:
                for arg in node.args:
                    tokens = expr_taint.tokens(arg, env)
                    if tokens:
                        yield "LEAK005", node, tokens, f"{func.id}()"
                        break
