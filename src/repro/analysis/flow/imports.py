"""Module discovery and import resolution over the analyzed tree.

Maps each analyzed file to its dotted module name (the
:class:`~repro.analysis.context.FileContext` already carries it) and
resolves every import statement to fully-qualified dotted targets, so
the call graph can link ``from repro.crypto.drbg import Drbg`` /
``drbg.fork(...)`` call sites to the function definitions they reach.
Only modules inside the analyzed set resolve; everything else (stdlib,
third-party) is deliberately opaque.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext


def resolve_relative(ctx: FileContext, level: int, module: str | None) -> str:
    """Absolute dotted target of a level-``level`` relative import.

    Unlike a naive ``rsplit``, this is correct for package
    ``__init__.py`` files, whose module name *is* the package: level 1
    there refers to the package itself, not its parent.
    """
    parts = ctx.module.split(".")
    drops = level - 1 if ctx.path.name == "__init__.py" else level
    if drops:
        parts = parts[:-drops] if drops < len(parts) else []
    prefix = ".".join(parts)
    if module:
        return f"{prefix}.{module}" if prefix else module
    return prefix


def import_statement_targets(ctx: FileContext, node: ast.stmt) -> list[str]:
    """Dotted module targets of one import statement (empty if not one)."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:
            return [resolve_relative(ctx, node.level, node.module)]
        return [node.module] if node.module else []
    return []


def import_bindings(ctx: FileContext) -> dict[str, str]:
    """Local name -> fully-qualified dotted target for every import.

    ``import a.b as c`` binds ``c -> a.b``; ``import a.b`` binds the root
    ``a -> a``; ``from m import x as y`` binds ``y -> m.x``.  Star
    imports are ignored (nothing under ``repro`` uses them; the LAYER
    checker would reject most anyway).
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    bindings[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = resolve_relative(ctx, node.level, node.module)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                bindings[alias.asname or alias.name] = target
    return bindings


class ModuleIndex:
    """Dotted module name -> FileContext over the analyzed set."""

    def __init__(self, ctxs: list[FileContext]):
        self.by_module: dict[str, FileContext] = {ctx.module: ctx for ctx in ctxs}

    def context(self, module: str) -> FileContext | None:
        return self.by_module.get(module)

    def resolve(self, dotted: str) -> tuple[str, str] | None:
        """Split a fully-qualified name into ``(module, symbol_path)``.

        Tries the longest module prefix known to the index; the
        remainder is the in-module symbol path (may be empty when the
        name *is* a module). Returns None for names outside the
        analyzed set.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.by_module:
                return module, ".".join(parts[cut:])
        return None
