"""`repro.analysis` — the pqtls-lint static-analysis framework.

The reproduction's validity rests on contracts the test suite only
samples: PQC code must not branch or index on secret data, the simulator
must draw all time from the event loop and all randomness from
:class:`~repro.crypto.drbg.Drbg`, the sans-io TLS stack must never reach
into ``repro.netsim``, and every registered algorithm's declared wire
sizes must match the NIST round-3 specifications Table 2 depends on.
This package machine-checks those contracts over the AST of the tree so
every future PR is gated on them, not on reviewer vigilance.

Entry points: the ``pqtls-lint`` console script (``repro.analysis.cli``),
``python -m repro.analysis``, or :func:`analyze` for programmatic use.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.finding import Finding, Severity
from repro.analysis.registry import Checker, all_checkers, register
from repro.analysis.runner import Report, analyze

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "Report",
    "Severity",
    "all_checkers",
    "analyze",
    "register",
]
