"""Committed baseline of accepted findings.

A baseline entry suppresses findings matching its (code, path, symbol,
message) identity — line numbers are deliberately absent so unrelated
edits don't invalidate the file.  Every entry must carry a
``justification``; `pqtls-lint` refuses a baseline with silent entries,
which keeps the file reviewable instead of becoming a dumping ground.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.finding import Finding

DEFAULT_BASELINE_NAME = ".pqtls-baseline.json"
_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    path: str
    symbol: str
    message: str
    justification: str

    def identity(self) -> tuple[str, str, str, str]:
        return (self.code, self.path, self.symbol, self.message)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "symbol": self.symbol,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(f"{path}: unsupported baseline version {data.get('version')!r}")
        entries = []
        for raw in data.get("entries", []):
            entry = BaselineEntry(
                code=raw["code"],
                path=raw["path"],
                symbol=raw.get("symbol", ""),
                message=raw["message"],
                justification=raw.get("justification", ""),
            )
            if not entry.justification.strip() or entry.justification.startswith("TODO"):
                raise ValueError(
                    f"{path}: baseline entry {entry.code} at {entry.path} "
                    "has no justification; every accepted finding must say why"
                )
            entries.append(entry)
        return cls(entries=entries, path=path)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      justification: str = "TODO: justify") -> "Baseline":
        entries = [
            BaselineEntry(
                code=f.code, path=f.path, symbol=f.symbol, message=f.message,
                justification=justification,
            )
            for f in sorted(set(findings), key=Finding.sort_key)
        ]
        # identical identities collapse to one entry
        unique = {e.identity(): e for e in entries}
        return cls(entries=[unique[k] for k in sorted(unique)])

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition into (new, suppressed) findings + stale entries."""
        known = {entry.identity(): entry for entry in self.entries}
        new: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[tuple] = set()
        for finding in findings:
            if finding.identity() in known:
                suppressed.append(finding)
                used.add(finding.identity())
            else:
                new.append(finding)
        stale = [entry for entry in self.entries if entry.identity() not in used]
        return new, suppressed, stale

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                        encoding="utf-8")
