"""The finding model every checker emits."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding gates CI: errors fail the run, notes never do."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location.

    ``symbol`` is the enclosing function/class (dotted), used together
    with ``code``/``path``/``message`` as the baseline identity so
    accepted findings survive unrelated line drift.
    """

    code: str            # e.g. "CT001"
    message: str
    path: str            # project-relative, posix separators
    line: int
    col: int = 0
    symbol: str = ""     # enclosing def/class chain, "" at module level
    severity: Severity = Severity.ERROR
    checker: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def identity(self) -> tuple[str, str, str, str]:
        """Line-drift-tolerant key used for baseline matching."""
        return (self.code, self.path, self.symbol, self.message)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "checker": self.checker,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (lint-cache record round trip)."""
        return cls(
            code=data["code"],
            message=data["message"],
            path=data["path"],
            line=data["line"],
            col=data.get("col", 0),
            symbol=data.get("symbol", ""),
            severity=Severity(data.get("severity", "error")),
            checker=data.get("checker", ""),
        )
