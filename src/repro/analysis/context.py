"""Per-file analysis context: source, AST, module name, pragmas."""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

# `# pqtls: allow[CT001]` or `# pqtls: allow[CT001,DET002]`; a pragma on a
# line of its own applies to the next statement line.
_PRAGMA_RE = re.compile(r"#\s*pqtls:\s*allow\[([A-Z]+\d*(?:\s*,\s*[A-Z]+\d*)*)\]")


def parse_pragmas(source: str) -> dict[int, set[str]]:
    """Map line number -> set of allowed codes, via the token stream.

    Tokenizing (rather than regexing raw lines) keeps pragma-looking text
    inside string literals from suppressing anything.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # half-written file: no pragmas
        return allowed
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        line = tok.start[0]
        allowed.setdefault(line, set()).update(codes)
        # a standalone pragma comment covers the following line
        stripped = source.splitlines()[line - 1].lstrip()
        if stripped.startswith("#"):
            allowed.setdefault(line + 1, set()).update(codes)
    return allowed


def module_name_for(path: Path) -> str:
    """Dotted module name, derived by walking up through __init__.py dirs."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


@dataclass
class FileContext:
    """Everything a file-scoped checker needs about one source file."""

    path: Path
    relpath: str                      # project-root-relative, posix
    module: str                       # dotted import name ("repro.tls.client")
    source: str
    tree: ast.Module
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, project_root: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        try:
            relpath = path.resolve().relative_to(project_root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            module=module_name_for(path),
            source=source,
            tree=tree,
            pragmas=parse_pragmas(source),
            parents=parents,
        )

    def symbol_at(self, node: ast.AST) -> str:
        """Dotted enclosing def/class chain for *node* ("" at module level)."""
        chain: list[str] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                chain.insert(0, current.name)
            current = self.parents.get(current)
        return ".".join(chain)

    def is_allowed(self, line: int, code: str) -> bool:
        return code in self.pragmas.get(line, ())
