"""Per-file analysis context: source, AST, module name, pragmas."""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

# ``allow[CT001]`` or ``allow[CT001,DET002]`` after the pqtls marker; a
# pragma on a line of its own applies to the next statement line (skipping any further
# comment lines, so a pragma may head a multi-line justification). A pragma
# that lands on the first line of a multi-line *simple* statement is widened
# to the whole statement span (see FileContext.load) — findings anchor on
# the AST node, which may sit on a continuation line.
_PRAGMA_RE = re.compile(r"#\s*pqtls:\s*allow\[([A-Z]+\d*(?:\s*,\s*[A-Z]+\d*)*)\]")


def parse_pragmas(source: str) -> dict[int, dict[str, set[int]]]:
    """Map line number -> {allowed code -> declaring pragma lines}.

    The declaring line (where the ``# pqtls: allow[...]`` comment itself
    sits) rides along so the runner can attribute each suppression back
    to its pragma — that attribution is what ``--check-pragmas`` uses to
    flag declarations that no longer suppress anything (ANA001).

    Tokenizing (rather than regexing raw lines) keeps pragma-looking text
    inside string literals from suppressing anything.
    """
    allowed: dict[int, dict[str, set[int]]] = {}

    def cover(line: int, codes: set[str], decl: int) -> None:
        slot = allowed.setdefault(line, {})
        for code in codes:
            slot.setdefault(code, set()).add(decl)

    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # half-written file: no pragmas
        return allowed
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        line = tok.start[0]
        cover(line, codes, line)
        # a standalone pragma comment covers the next *code* line, so a
        # pragma may open a multi-line comment explaining the allowance
        lines = source.splitlines()
        if lines[line - 1].lstrip().startswith("#"):
            target = line + 1
            while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                target += 1
            cover(target, codes, line)
    return allowed


def _widen_pragmas(tree: ast.Module, pragmas: dict[int, dict[str, set[int]]]) -> None:
    """Extend first-line pragmas over their statement's whole line span.

    Simple statements (assignments, returns, expression statements) are
    covered in full. Compound statements extend only over their header —
    the ``if``/``while`` test or ``for`` iterable — never the body, so a
    pragma can't silently blanket a whole block.
    """
    for node in ast.walk(tree):
        codes = pragmas.get(getattr(node, "lineno", -1))
        if not codes or not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.If, ast.While)):
            end = node.test.end_lineno
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            end = node.iter.end_lineno
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                               ast.With, ast.AsyncWith, ast.Try, ast.Match)):
            continue
        else:
            end = node.end_lineno
        for line in range(node.lineno + 1, (end or node.lineno) + 1):
            slot = pragmas.setdefault(line, {})
            for code, decls in codes.items():
                slot.setdefault(code, set()).update(decls)


def module_name_for(path: Path) -> str:
    """Dotted module name, derived by walking up through __init__.py dirs."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


@dataclass
class FileContext:
    """Everything a file-scoped checker needs about one source file."""

    path: Path
    relpath: str                      # project-root-relative, posix
    module: str                       # dotted import name ("repro.tls.client")
    source: str
    tree: ast.Module
    # covered line -> {code -> lines of the pragma comments declaring it}
    pragmas: dict[int, dict[str, set[int]]] = field(default_factory=dict)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, project_root: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        try:
            relpath = path.resolve().relative_to(project_root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        pragmas = parse_pragmas(source)
        _widen_pragmas(tree, pragmas)
        return cls(
            path=path,
            relpath=relpath,
            module=module_name_for(path),
            source=source,
            tree=tree,
            pragmas=pragmas,
            parents=parents,
        )

    def symbol_at(self, node: ast.AST) -> str:
        """Dotted enclosing def/class chain for *node* ("" at module level)."""
        chain: list[str] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                chain.insert(0, current.name)
            current = self.parents.get(current)
        return ".".join(chain)

    def is_allowed(self, line: int, code: str) -> bool:
        return code in self.pragmas.get(line, ())

    def allowing_declarations(self, line: int, code: str) -> set[int]:
        """Pragma-comment lines whose allowance covers (*line*, *code*)."""
        return self.pragmas.get(line, {}).get(code, set())

    def pragma_declarations(self) -> dict[int, set[str]]:
        """Every pragma declaration in the file: comment line -> codes."""
        decls: dict[int, set[str]] = {}
        for slot in self.pragmas.values():
            for code, lines in slot.items():
                for decl in lines:
                    decls.setdefault(decl, set()).add(code)
        return decls
