"""LAYER — the declared import DAG of the reproduction.

The dependency order is ``crypto → pqc → tls → faults → netsim → core →
traffic``:
each unit may import itself and anything strictly below.  ``repro.obs``
is importable by every unit but may import nothing from ``repro`` except
itself (it must stay attachable anywhere); ``repro.cache`` sits between
``obs`` and the simulation and is importable by ``netsim``/``core``
only.  The sans-io property is enforced directly: ``crypto``/``pqc``/
``tls`` can never import ``repro.netsim`` — and no simulation unit may
import real-I/O stdlib modules (``socket``, ``asyncio``, ...), which is
what keeps handshakes a deterministic function of the in-order byte
stream (and recorded scripts replayable).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.flow.imports import import_statement_targets
from repro.analysis.registry import Checker, register

# unit -> repro units it may import (besides itself); "*" = anything
# "faults" (plans, outcomes, typed failures) sits between tls and netsim:
# it may read tls (alert names) and below, and netsim/core build on it
ALLOWED_IMPORTS: dict[str, set[str]] = {
    "obs": set(),
    "cache": {"obs"},
    "crypto": {"obs"},
    "pqc": {"crypto", "obs"},
    "tls": {"pqc", "crypto", "obs"},
    "faults": {"tls", "pqc", "crypto", "obs"},
    "netsim": {"faults", "tls", "pqc", "crypto", "obs", "cache"},
    "core": {"netsim", "faults", "tls", "pqc", "crypto", "obs", "cache"},
    # traffic (load engine) sits on top of core: it calibrates via the
    # netsim testbed, prices bursts with tls action costs, forks DRBGs,
    # and fans shards out through core.executor.  Nothing below imports it.
    "traffic": {"core", "netsim", "tls", "crypto", "obs"},
    "analysis": {"*"},
}

# real-I/O / concurrency stdlib modules forbidden in the simulation units
_IO_STDLIB = {"socket", "asyncio", "selectors", "ssl", "threading", "multiprocessing"}
_IO_FORBIDDEN_UNITS = {"crypto", "pqc", "tls", "faults", "netsim", "obs", "cache",
                       "traffic"}

# named exemptions: (module, stdlib root) pairs allowed despite the rule.
# The self-profiler needs a sampling thread over the *host* clock; it only
# reads interpreter frames and never touches simulation state.
_IO_EXEMPT = {("repro.obs.profiler", "threading")}


def unit_of(module: str) -> str | None:
    """The layer unit of a dotted repro module name (None if not repro)."""
    if module == "repro":
        return ""
    if not module.startswith("repro."):
        return None
    return module.split(".")[1]


@register
class LayerChecker(Checker):
    name = "layer"
    description = ("imports follow the declared DAG crypto → pqc → tls → faults "
                   "→ netsim → core (obs shared, cache for netsim/core); sans-io "
                   "units never import real-I/O stdlib")
    codes = {
        "LAYER001": "repro import that violates the layer DAG",
        "LAYER002": "real-I/O or concurrency stdlib import in a sans-io unit",
    }

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        unit = unit_of(ctx.module)
        if unit is None or unit == "":
            return
        allowed = ALLOWED_IMPORTS.get(unit)
        if allowed is not None and "*" in allowed:
            return

        def finding(code: str, node: ast.AST, message: str) -> Finding:
            return Finding(code=code, message=message, path=ctx.relpath,
                           line=node.lineno, col=node.col_offset,
                           symbol=ctx.symbol_at(node), checker=self.name)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            # shared resolution with the flow engine: correct for package
            # __init__.py files, where a naive rsplit lands one level high
            targets = import_statement_targets(ctx, node)
            if not targets:
                continue
            for target in targets:
                target_unit = unit_of(target)
                if target_unit is None:
                    root = target.split(".")[0]
                    if root in _IO_STDLIB and unit in _IO_FORBIDDEN_UNITS \
                            and (ctx.module, root) not in _IO_EXEMPT:
                        yield finding(
                            "LAYER002", node,
                            f"repro.{unit} imports `{root}`: the stack is sans-io "
                            "and the testbed is simulated; real I/O breaks "
                            "deterministic replay")
                    continue
                if target_unit in ("", unit):
                    # `from repro import cache` imports the unit named by the
                    # alias, not the root package
                    if isinstance(node, ast.ImportFrom) and target == "repro":
                        for alias in node.names:
                            sub_unit = alias.name
                            if sub_unit != unit and allowed is not None \
                                    and sub_unit not in allowed:
                                yield finding(
                                    "LAYER001", node,
                                    f"repro.{unit} may not import repro.{sub_unit} "
                                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})")
                    continue
                if allowed is None or target_unit not in allowed:
                    permitted = ", ".join(sorted(allowed)) if allowed else "nothing"
                    yield finding(
                        "LAYER001", node,
                        f"repro.{unit} may not import repro.{target_unit} "
                        f"(allowed: {permitted})")
