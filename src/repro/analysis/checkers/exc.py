"""EXC — exception and default-argument hygiene.

Broad catches are how contract violations hide: the original
``except Exception`` around cache reads and handshake driving masked
programming errors as cache misses / handshake failures.  A broad
handler is allowed only when it re-raises (cleanup pattern).  Mutable
default arguments are the classic shared-state bug and ride along here.

The simulation layers (``tls``/``faults``/``netsim``) additionally may
not raise bare ``RuntimeError``: a raw RuntimeError escaping the event
loop aborts an entire campaign with no typed outcome (the failure mode
this repo's fault model exists to prevent).  Raise a domain error
(``TlsError`` subtypes, ``TransportError``, ...) or a named
``RuntimeError`` subclass (``EventLoopRunaway``, ``MissingMarker``)
instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Checker, register

_BROAD = {"Exception", "BaseException"}
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}

# units whose failures must be typed so the testbed can classify outcomes
_NO_BARE_RUNTIME_UNITS = ("repro.tls", "repro.faults", "repro.netsim")


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return ["<bare>"]
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            names.append(node.id)
    return names


@register
class ExceptionHygieneChecker(Checker):
    name = "exc"
    description = "no bare/broad `except` without re-raise; no mutable default arguments"
    codes = {
        "EXC001": "bare or broad `except` that does not re-raise",
        "EXC002": "mutable default argument",
        "EXC003": "bare `raise RuntimeError` in a simulation layer",
    }

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return
        sim_unit = any(ctx.module == u or ctx.module.startswith(u + ".")
                       for u in _NO_BARE_RUNTIME_UNITS)

        def finding(code: str, node: ast.AST, message: str) -> Finding:
            return Finding(code=code, message=message, path=ctx.relpath,
                           line=node.lineno, col=node.col_offset,
                           symbol=ctx.symbol_at(node), checker=self.name)

        for node in ast.walk(ctx.tree):
            if sim_unit and isinstance(node, ast.Raise):
                exc = node.exc
                callee = exc.func if isinstance(exc, ast.Call) else exc
                if isinstance(callee, ast.Name) and callee.id == "RuntimeError":
                    yield finding(
                        "EXC003", node,
                        "bare `raise RuntimeError` in a simulation layer "
                        "escapes the event loop untyped and kills the whole "
                        "campaign; raise a domain error (TlsError subtype, "
                        "TransportError) or a named RuntimeError subclass")
            if isinstance(node, ast.ExceptHandler):
                names = _broad_names(node)
                if names and not _reraises(node):
                    label = "bare `except:`" if names == ["<bare>"] else \
                        f"`except {'/'.join(names)}`"
                    yield finding(
                        "EXC001", node,
                        f"{label} swallows programming errors; catch the specific "
                        "exceptions the operation can raise (or re-raise)")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                        isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in _MUTABLE_CALLS
                    ):
                        yield finding(
                            "EXC002", default,
                            f"mutable default argument in {node.name}(); evaluated "
                            "once and shared across calls — default to None")
