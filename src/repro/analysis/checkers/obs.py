"""OBS — telemetry naming and registry discipline.

Every metric flows through the ``repro.obs.metrics`` registry and every
span lands on a tracer track; downstream tooling (snapshot merging,
``counters_with_prefix`` aggregation, Chrome-trace export, the
perf-regression gate's flattened metric paths) all key on those names.
A single ``HandshakeTime`` or ``cache hit`` literal silently forks the
namespace: it merges with nothing, matches no prefix query, and shows up
as a new column in ``BENCH_*.json``.  So metric names must be dotted
lowercase (``tls.handshake.total``), track names likewise (dashes
allowed: ``host-cpu``), and stat accumulation must go through the
registry rather than ad-hoc dicts — a dict is invisible to
``snapshot``/``merge_snapshot`` and therefore silently wrong at
``--jobs N``.

Span *display* names (``tracer.span(track, name, ...)``'s second
argument) are deliberately out of scope: they are human-facing labels
(``"partA (CH..SH)"``) that golden trace outputs depend on.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Checker, register

METRIC_NAME = re.compile(r"^[a-z0-9_.]+$")
METRIC_CHUNK = re.compile(r"^[a-z0-9_.]*$")   # literal parts of f-strings
TRACK_NAME = re.compile(r"^[a-z0-9_.-]+$")

# registry creation calls: the single positional argument is the metric name
_REGISTRY_METHODS = {"counter", "gauge", "histogram"}
# registry shortcuts: first positional argument is the metric name
_SHORTCUT_METHODS = {"inc", "set", "observe"}
# tracer calls whose first positional argument is a track name
_TRACK_METHODS = {"span", "begin", "instant", "spans_on"}

# variable names that smell like a shadow metrics store when bound to a
# dict literal outside repro.obs
_ADHOC_NAMES = re.compile(r"^(stats|_?[a-z0-9_]*_stats)$")


def _literal_ok(node: ast.expr, pattern: re.Pattern, chunk: re.Pattern) -> bool:
    """True unless *node* is a string literal that violates *pattern*.

    Non-literals (variables, attribute reads) pass: naming is enforced
    where the literal is written down.  f-strings are checked on their
    literal chunks only — the formatted holes are runtime values.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return bool(pattern.match(node.value))
    if isinstance(node, ast.JoinedStr):
        return all(chunk.match(part.value)
                   for part in node.values
                   if isinstance(part, ast.Constant) and isinstance(part.value, str))
    return True


@register
class ObsNamingChecker(Checker):
    name = "obs"
    description = "dotted-lowercase metric/track names; no ad-hoc stats dicts"
    codes = {
        "OBS001": "metric name is not dotted lowercase [a-z0-9_.]",
        "OBS002": "tracer track name is not dotted lowercase [a-z0-9_.-]",
        "OBS003": "ad-hoc stats dict outside repro.obs",
    }

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return
        in_obs = ctx.module == "repro.obs" or ctx.module.startswith("repro.obs.")

        def finding(code: str, node: ast.AST, message: str) -> Finding:
            return Finding(code=code, message=message, path=ctx.relpath,
                           line=node.lineno, col=node.col_offset,
                           symbol=ctx.symbol_at(node), checker=self.name)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if node.args:
                    first = node.args[0]
                    is_metric = (method in _REGISTRY_METHODS and len(node.args) == 1) \
                        or (method in _SHORTCUT_METHODS and len(node.args) >= 2)
                    if is_metric and not _literal_ok(first, METRIC_NAME, METRIC_CHUNK):
                        yield finding(
                            "OBS001", first,
                            f"metric name {ast.unparse(first)} passed to "
                            f".{method}() must be dotted lowercase "
                            "[a-z0-9_.] — off-pattern names fork the "
                            "registry namespace and break snapshot merging "
                            "and prefix aggregation")
                    if method in _TRACK_METHODS and not _literal_ok(
                            first, TRACK_NAME, TRACK_NAME):
                        yield finding(
                            "OBS002", first,
                            f"track name {ast.unparse(first)} passed to "
                            f".{method}() must match [a-z0-9_.-] — tracks key "
                            "trace export and flame attribution")
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and not in_obs:
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if not isinstance(value, (ast.Dict, ast.DictComp)):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and _ADHOC_NAMES.match(target.id):
                        yield finding(
                            "OBS003", node,
                            f"ad-hoc stats dict `{target.id}` — a plain dict "
                            "is invisible to Metrics.snapshot/merge_snapshot "
                            "and silently wrong under --jobs N; create "
                            "instruments through the repro.obs registry")
