"""WIRE — declared wire sizes must match the NIST round-3 specifications.

Table 2's "Data Sent" column is arithmetic over ``public_key_bytes`` /
``ciphertext_bytes`` / ``signature_bytes``: a wrong declaration skews
every byte count the reproduction reports while the handshake still
"works".  This audit imports :mod:`repro.pqc.registry` and compares every
registered algorithm against a size table embedded here, transcribed
independently from the round-3 specs (Kyber/BIKE/HQC/Falcon/Dilithium/
SPHINCS+ submission documents; RFC 7748 / SEC 1 / RFC 8017 for the
classical schemes).  Hybrids must be exact concatenations of their
components, per draft-ietf-tls-hybrid-design.

Findings anchor to the defining class's source line via ``inspect``, so
a bad size points at the implementation, not at the registry loop.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Checker, register

# name -> (public_key_bytes, ciphertext_bytes, shared_secret_bytes)
KEM_SPEC_SIZES: dict[str, tuple[int, int, int]] = {
    "x25519": (32, 32, 32),            # RFC 7748
    "p256": (65, 65, 32),              # SEC 1 uncompressed point / coord
    "p384": (97, 97, 48),
    "p521": (133, 133, 66),
    "kyber512": (800, 768, 32),        # Kyber round-3 spec, Table 1
    "kyber768": (1184, 1088, 32),
    "kyber1024": (1568, 1568, 32),
    "kyber90s512": (800, 768, 32),
    "kyber90s768": (1184, 1088, 32),
    "kyber90s1024": (1568, 1568, 32),
    "bikel1": (1541, 1573, 32),        # BIKE round-3 spec §5
    "bikel3": (3083, 3115, 32),
    "hqc128": (2249, 4481, 64),        # HQC round-3 spec, Table 4
    "hqc192": (4522, 9026, 64),
    "hqc256": (7245, 14469, 64),
}

# name -> (public_key_bytes, signature_bytes)
SIG_SPEC_SIZES: dict[str, tuple[int, int]] = {
    "rsa:1024": (134, 128),            # RFC 8017 + this repo's 6-byte pk envelope
    "rsa:2048": (262, 256),
    "rsa:3072": (390, 384),
    "rsa:4096": (518, 512),
    "falcon512": (897, 666),           # Falcon round-3 spec, Table 3.3
    "falcon1024": (1793, 1280),
    "dilithium2": (1312, 2420),        # Dilithium round-3 spec, Table 2
    "dilithium3": (1952, 3293),
    "dilithium5": (2592, 4595),
    "dilithium2_aes": (1312, 2420),
    "dilithium3_aes": (1952, 3293),
    "dilithium5_aes": (2592, 4595),
    "sphincs128": (32, 17088),         # SPHINCS+ round-3 spec, Table 3 (128f)
    "sphincs192": (48, 35664),         # (192f)
    "sphincs256": (64, 49856),         # (256f)
    "sphincs-shake-128f": (32, 17088),
    "p256ecdsa": (65, 64),             # composite halves
    "p384ecdsa": (97, 96),
    "p521ecdsa": (133, 132),
}


@register
class WireSizeChecker(Checker):
    name = "wire"
    description = ("every registered KEM/signature declares wire sizes matching "
                   "the embedded NIST-spec table; hybrids are exact concatenations")
    codes = {
        "WIRE001": "declared wire size differs from the NIST-spec table",
        "WIRE002": "registered algorithm missing from the embedded spec table",
        "WIRE003": "hybrid/composite size is not the sum of its components",
        "WIRE004": "registry not importable for auditing",
        "WIRE005": "session-scenario wire delta differs from the live encoders",
    }
    scope = "project"

    def __init__(self, kem_table: dict | None = None, sig_table: dict | None = None,
                 session_deltas: dict | None = None):
        # injectable tables let the self-tests prove a mismatch is caught
        self._kem_table = KEM_SPEC_SIZES if kem_table is None else kem_table
        self._sig_table = SIG_SPEC_SIZES if sig_table is None else sig_table
        self._session_deltas = session_deltas  # None = the module's declared set

    def check_project(self, ctxs: list[FileContext],
                      engine=None) -> Iterator[Finding]:
        if not any(ctx.module.startswith("repro.pqc") for ctx in ctxs):
            return
        project_root = self._project_root(ctxs)
        try:
            from repro.pqc import registry
            from repro.pqc.hybrid import CompositeSignature, HybridKem
        except Exception as exc:  # pqtls: allow[EXC001] — any import failure becomes WIRE004
            anchor = next(ctx for ctx in ctxs if ctx.module.startswith("repro.pqc"))
            yield Finding(code="WIRE004", message=f"cannot import repro.pqc.registry: {exc}",
                          path=anchor.relpath, line=1, checker=self.name)
            return

        for name, kem in sorted(registry.KEMS.items()):
            declared = (kem.public_key_bytes, kem.ciphertext_bytes, kem.shared_secret_bytes)
            if isinstance(kem, HybridKem):
                expected = tuple(
                    getattr(kem.classical, attr) + getattr(kem.pq, attr)
                    for attr in ("public_key_bytes", "ciphertext_bytes", "shared_secret_bytes")
                )
                if declared != expected:
                    yield self._mismatch("WIRE003", kem, name, declared, expected,
                                         ("pk", "ct", "ss"), project_root,
                                         note="hybrid must concatenate its components")
            elif name not in self._kem_table:
                yield self._anchor_finding(
                    "WIRE002", kem, project_root,
                    f"KEM {name!r} has no entry in the embedded NIST size table; "
                    "add one (with a spec citation) so Table 2 byte counts stay auditable")
            else:
                expected = self._kem_table[name]
                if declared != expected:
                    yield self._mismatch("WIRE001", kem, name, declared, expected,
                                         ("pk", "ct", "ss"), project_root)

        for name, sig in sorted(registry.SIGS.items()):
            declared = (sig.public_key_bytes, sig.signature_bytes)
            if isinstance(sig, CompositeSignature):
                expected = tuple(
                    getattr(sig.classical, attr) + getattr(sig.pq, attr)
                    for attr in ("public_key_bytes", "signature_bytes")
                )
                if declared != expected:
                    yield self._mismatch("WIRE003", sig, name, declared, expected,
                                         ("pk", "sig"), project_root,
                                         note="composite must concatenate its components")
            elif name not in self._sig_table:
                yield self._anchor_finding(
                    "WIRE002", sig, project_root,
                    f"signature {name!r} has no entry in the embedded NIST size table; "
                    "add one (with a spec citation) so Table 2 byte counts stay auditable")
            else:
                expected = self._sig_table[name]
                if declared != expected:
                    yield self._mismatch("WIRE001", sig, name, declared, expected,
                                         ("pk", "sig"), project_root)

        yield from self._check_session_deltas(ctxs)

    def _check_session_deltas(self, ctxs: list[FileContext]) -> Iterator[Finding]:
        """WIRE005: the resumption wire-delta constants the tests and the
        per-scenario byte accounting rely on must match what the live
        ClientHello/ServerHello encoders actually emit."""
        anchor = next((ctx for ctx in ctxs
                       if ctx.relpath.endswith("repro/tls/scenarios.py")), None)
        if anchor is None:
            return
        from repro.tls import scenarios
        declared = (self._session_deltas if self._session_deltas is not None
                    else scenarios.declared_wire_deltas())
        computed = scenarios.computed_wire_deltas()
        for key in sorted(set(declared) | set(computed)):
            got, want = declared.get(key), computed.get(key)
            if got != want:
                yield Finding(
                    code="WIRE005",
                    message=f"{key}: declared {got}B but the live hello "
                            f"encoders emit a {want}B delta; the per-scenario "
                            "byte accounting (and its tests) would drift",
                    path=anchor.relpath, line=1, checker=self.name)
        for name in ("full", "resume", "mtls", "hrr"):
            if name not in scenarios.SESSION_SCENARIOS:
                yield Finding(
                    code="WIRE005",
                    message=f"session scenario {name!r} missing from "
                            "SESSION_SCENARIOS; the lifecycle sweep and the "
                            "--scenario combos expect all four shapes",
                    path=anchor.relpath, line=1, checker=self.name)

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _project_root(ctxs: list[FileContext]) -> Path:
        for ctx in ctxs:
            if ctx.path.as_posix().endswith(ctx.relpath):
                prefix = ctx.path.as_posix()[: -len(ctx.relpath)].rstrip("/")
                return Path(prefix or ".")
        return Path.cwd()

    def _anchor(self, algorithm, project_root: Path) -> tuple[str, int]:
        cls = type(algorithm)
        try:
            path = Path(inspect.getsourcefile(cls) or "")
            _, line = inspect.getsourcelines(cls)
            rel = path.resolve().relative_to(project_root.resolve()).as_posix()
            return rel, line
        except (TypeError, OSError, ValueError):
            return "src/repro/pqc/registry.py", 1

    def _anchor_finding(self, code: str, algorithm, project_root: Path,
                        message: str) -> Finding:
        path, line = self._anchor(algorithm, project_root)
        return Finding(code=code, message=message, path=path, line=line,
                       symbol=type(algorithm).__name__, checker=self.name)

    def _mismatch(self, code: str, algorithm, name: str, declared: tuple,
                  expected: tuple, labels: tuple, project_root: Path,
                  note: str = "spec sizes drive Table 2's Data Sent column") -> Finding:
        diff = ", ".join(
            f"{label}={got}B (spec {want}B)"
            for label, got, want in zip(labels, declared, expected)
            if got != want
        )
        return self._anchor_finding(
            code, algorithm, project_root,
            f"{name}: declared {diff}; {note}")
