"""Built-in checkers; importing this package registers all of them."""

from repro.analysis.checkers import (
    ct,
    ctflow,
    det,
    exc,
    flowapi,
    layer,
    leak,
    obs,
    wire,
)

__all__ = ["ct", "ctflow", "det", "exc", "flowapi", "layer", "leak", "obs",
           "wire"]
