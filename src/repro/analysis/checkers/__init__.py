"""Built-in checkers; importing this package registers all of them."""

from repro.analysis.checkers import ct, det, exc, layer, obs, wire

__all__ = ["ct", "det", "exc", "layer", "obs", "wire"]
