"""LEAK00x — secret-derived values must never reach observability.

The telemetry stack (PR 6) exports span names, metric namespaces and
flight-recorder JSONL off the box; exception messages end up in logs and
CI output.  A secret key fragment formatted into any of those is a real
disclosure, not a style problem.  This checker runs the flow engine's
``"leak"`` taint profile over *every* function — secrets seed from
secret-named parameters in the crypto/pqc/tls units and from
unambiguously secret attribute reads anywhere — and reports when a
secret-derived value reaches:

- ``LEAK001`` a tracer track/span/instant name (Perfetto export),
- ``LEAK002`` a metric name or label (aggregated registry dump),
- ``LEAK003`` a flight-recorder event field (session JSONL),
- ``LEAK004`` an exception message (f-string into ``raise``),
- ``LEAK005`` ``print()`` / ``repr()`` output.

Call-boundary leaks are caught through summaries: passing a secret into
a helper whose innocuously-named parameter reaches a recorder field is
reported at the call site, where the secret is still recognisable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding, Severity
from repro.analysis.flow.engine import LEAK_SEED_SCOPES, FlowEngine, origin_text
from repro.analysis.flow.taint import (
    header_exprs,
    in_scope,
    is_secret_name,
    iter_leak_sinks,
)
from repro.analysis.registry import Checker, register

_WARNING_CODES = {"LEAK005"}  # stdout is loud but stays on the box


@register
class SecretLeakChecker(Checker):
    name = "leak"
    description = ("secret-derived values must not reach tracer/metric names, "
                   "flight-recorder fields, exception text, or stdout")
    codes = {
        "LEAK001": "secret-derived value in a tracer track/span name",
        "LEAK002": "secret-derived value in a metric name or label",
        "LEAK003": "secret-derived value in a flight-recorder field",
        "LEAK004": "secret-derived value formatted into an exception message",
        "LEAK005": "secret-derived value printed or repr()ed",
    }
    scope = "project"
    needs_engine = True

    def check_project(self, ctxs: list[FileContext],
                      engine: FlowEngine | None = None) -> Iterator[Finding]:
        if engine is None:
            return
        engine.solve()
        for qualname in sorted(engine.functions.functions):
            info = engine.functions.functions[qualname]
            analysis = engine.analysis(qualname, "leak")
            call_map = {id(call): callees for call, callees in info.call_sites}
            seen: set[tuple] = set()
            for stmt, env in analysis.iter_env():
                for code, node, tokens, what in iter_leak_sinks(
                        stmt, env, analysis.expr):
                    secret = frozenset(t for t in tokens if t[0] == "secret")
                    if not secret:
                        continue
                    key = (code, node.lineno, what)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self._finding(code, info, node.lineno,
                                        getattr(node, "col_offset", 0),
                                        f"{origin_text(secret)} reaches {what}")
                for expr in header_exprs(stmt):
                    for node in ast.walk(expr):
                        if isinstance(node, ast.Call) and id(node) in call_map:
                            yield from self._check_call(
                                engine, info, analysis, node,
                                call_map[id(node)], env, seen)

    def _check_call(self, engine, info, analysis, call, callees, env, seen):
        for qualname in sorted(callees):
            summary = engine.summary(qualname)
            callee = engine.functions.get(qualname)
            if summary is None or callee is None:
                continue
            for index, record in sorted(summary.param_sinks.items()):
                if record.kind != "observability":
                    continue
                if self._direct_covers(callee, index):
                    continue  # the finding inside the callee already fires
                arg = FlowEngine._arg_for_index(call, callee, index)
                if arg is None:
                    continue
                tokens = analysis.tokens(arg, env)
                secret = frozenset(t for t in tokens if t[0] == "secret")
                if not secret:
                    continue
                key = (record.code, call.lineno, qualname, index)
                if key in seen:
                    continue
                seen.add(key)
                param = (callee.param_names[index]
                         if index < len(callee.param_names) else f"#{index}")
                yield self._finding(
                    record.code, info, call.lineno, call.col_offset,
                    f"{origin_text(secret)} flows into "
                    f"{callee.name}({param}=...) and reaches an observability "
                    f"sink there ({record.description})")

    def _finding(self, code: str, info, line: int, col: int,
                 message: str) -> Finding:
        severity = (Severity.WARNING if code in _WARNING_CODES
                    else Severity.ERROR)
        return Finding(code=code, message=message, path=info.ctx.relpath,
                       line=line, col=col, symbol=info.symbol,
                       severity=severity, checker=self.name)

    @staticmethod
    def _direct_covers(callee, index: int) -> bool:
        """True when the leak profile seeds this parameter in the callee."""
        if index < len(callee.param_names):
            return (in_scope(callee.module, LEAK_SEED_SCOPES)
                    and is_secret_name(callee.param_names[index]))
        return False
