"""CT1xx — interprocedural constant-time findings.

The per-function CT checker (``repro.analysis.checkers.ct``) can only see
secrets that are *named* like secrets inside one function.  The moment a
secret key crosses a call boundary into a parameter called ``data`` or
``value``, the intraprocedural analysis loses it — and the callee happily
branches on it.  This checker closes that gap using the whole-program
:class:`~repro.analysis.flow.engine.FlowEngine` summaries: for every
function in the crypto/pqc scope it runs the flow-sensitive ``"ct"``
taint profile and reports call sites where a secret-derived argument
reaches a live variable-time sink inside the callee (transitively, via
the summary fixpoint).

To avoid double-reporting, sinks the intraprocedural checker already
flags are skipped: a callee parameter that is itself secret-named inside
the crypto scope (the intra checker seeds it), and callees in the strict
kernel scope (every parameter is seeded there).  What remains is exactly
the interprocedural residue.

``CT110`` is the summary-driven strict mode for kernel callers: a NOTE
when a ``repro.crypto.kernels`` function routes a secret into a
*pragma-allowed* variable-time sink elsewhere — the pragma was judged at
the sink, and this note keeps the judgement visible at every kernel call
site that relies on it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding, Severity
from repro.analysis.flow.engine import FlowEngine, origin_text
from repro.analysis.flow.taint import (
    CRYPTO_SCOPES,
    STRICT_SCOPES,
    header_exprs,
    in_scope,
    is_secret_name,
)
from repro.analysis.registry import Checker, register

_KIND_CODE = {"branch": "CT101", "loop-bound": "CT102", "subscript": "CT103"}
_KIND_TEXT = {"branch": "a branch", "loop-bound": "a loop bound",
              "subscript": "a memory index"}


@register
class InterproceduralCtChecker(Checker):
    name = "ctflow"
    description = ("secrets must stay constant-time across call boundaries: "
                   "summary-driven taint from the whole-program flow engine")
    codes = {
        "CT101": "secret-derived argument reaches a branch inside a callee",
        "CT102": "secret-derived argument reaches a loop bound inside a callee",
        "CT103": "secret-derived argument indexes memory inside a callee",
        "CT110": "kernel caller routes a secret into a pragma-allowed "
                 "variable-time sink",
    }
    scope = "project"
    needs_engine = True

    def check_project(self, ctxs: list[FileContext],
                      engine: FlowEngine | None = None) -> Iterator[Finding]:
        if engine is None:
            return
        engine.solve()
        for info in engine.functions_in_scope(CRYPTO_SCOPES):
            analysis = engine.analysis(info.qualname, "ct")
            call_map = {id(call): callees for call, callees in info.call_sites}
            seen: set[tuple] = set()
            for stmt, env in analysis.iter_env():
                for expr in header_exprs(stmt):
                    for node in ast.walk(expr):
                        if isinstance(node, ast.Call) and id(node) in call_map:
                            yield from self._check_call(
                                engine, info, analysis, node,
                                call_map[id(node)], env, seen)

    def _check_call(self, engine, info, analysis, call, callees, env, seen):
        strict_caller = in_scope(info.module, STRICT_SCOPES)
        for qualname in sorted(callees):
            summary = engine.summary(qualname)
            callee = engine.functions.get(qualname)
            if summary is None or callee is None:
                continue
            records = [(index, record, False)
                       for index, record in sorted(summary.param_sinks.items())]
            if strict_caller:
                records += [(index, record, True) for index, record
                            in sorted(summary.param_allowed_sinks.items())]
            for index, record, allowed in records:
                code = _KIND_CODE.get(record.kind)
                if code is None:
                    continue  # observability sinks belong to the LEAK checker
                if not allowed and self._intra_covers(callee, index):
                    continue
                arg = FlowEngine._arg_for_index(call, callee, index)
                if arg is None:
                    continue
                tokens = analysis.tokens(arg, env)
                secret = frozenset(t for t in tokens if t[0] == "secret")
                if not secret:
                    continue
                final = "CT110" if allowed else code
                key = (final, call.lineno, qualname, index)
                if key in seen:
                    continue
                seen.add(key)
                param = (callee.param_names[index]
                         if index < len(callee.param_names) else f"#{index}")
                if allowed:
                    message = (
                        f"{origin_text(secret)} flows into "
                        f"{callee.name}({param}=...), reaching a variable-time "
                        f"sink that is pragma-allowed there "
                        f"({record.description}); the kernel caller inherits "
                        "that timing behaviour")
                    severity = Severity.NOTE
                else:
                    message = (
                        f"{origin_text(secret)} flows into "
                        f"{callee.name}({param}=...) and reaches "
                        f"{_KIND_TEXT[record.kind]} there "
                        f"({record.description}); the intraprocedural CT "
                        "checker cannot see across this call")
                    severity = Severity.ERROR
                yield Finding(
                    code=final, message=message, path=info.ctx.relpath,
                    line=call.lineno, col=call.col_offset,
                    symbol=info.symbol, severity=severity, checker=self.name)

    @staticmethod
    def _intra_covers(callee, index: int) -> bool:
        """True when the per-function CT checker already flags this sink."""
        if not in_scope(callee.module, CRYPTO_SCOPES):
            return False
        if in_scope(callee.module, STRICT_SCOPES):
            return True  # strict mode seeds every parameter
        if index < len(callee.param_names):
            return is_secret_name(callee.param_names[index])
        return False
