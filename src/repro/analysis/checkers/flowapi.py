"""FLOW00x — misuse of the repo's own security-sensitive APIs.

Two contracts that only make sense with whole-program context:

``FLOW001`` — ``drbg.fork(label)`` derives an independent deterministic
stream per label.  A label built *entirely* from runtime values (no
literal component at all) makes stream separation data-dependent: two
call sites can silently collide on the same child stream, which breaks
the reproducibility contract the DRBG tree exists for.  Labels may embed
runtime parts (``f"client-{i}"``) as long as a literal prefix keeps the
namespace explicit.

``FLOW002`` — ``declassify(value)`` marks a deliberate publication of
secret-derived data.  Calling it on a value the taint analysis never saw
as secret means one of two things: the taint was already laundered
upstream (worth auditing — the declassify is guarding nothing), or the
call is dead weight that trains readers to sprinkle declassify
reflexively.  Either way it deserves a look, so it is a WARNING, not an
error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding, Severity
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.taint import call_name, header_exprs
from repro.analysis.registry import Checker, register


def _has_literal_component(label: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Constant) and isinstance(node.value, str)
        and node.value
        for node in ast.walk(label)
    )


@register
class FlowApiChecker(Checker):
    name = "flowapi"
    description = ("DRBG fork labels need a literal component; declassify() "
                   "must be applied to values that are actually tainted")
    codes = {
        "FLOW001": "drbg.fork() label has no literal string component",
        "FLOW002": "declassify() of a value that is never secret-tainted",
    }
    scope = "project"
    needs_engine = True

    def check_project(self, ctxs: list[FileContext],
                      engine: FlowEngine | None = None) -> Iterator[Finding]:
        # FLOW001 is purely syntactic, so it also covers module-level code
        # the function-grained engine never analyzes.
        for ctx in ctxs:
            yield from self._check_fork_labels(ctx)
        if engine is None:
            return
        engine.solve()
        for qualname in sorted(engine.functions.functions):
            info = engine.functions.functions[qualname]
            analysis = engine.analysis(qualname, "ct")
            seen: set[int] = set()
            for stmt, env in analysis.iter_env():
                for expr in header_exprs(stmt):
                    for node in ast.walk(expr):
                        if (isinstance(node, ast.Call)
                                and call_name(node) == "declassify"
                                and node.args and node.lineno not in seen):
                            tokens = analysis.tokens(node.args[0], env)
                            if not tokens:
                                seen.add(node.lineno)
                                yield Finding(
                                    code="FLOW002",
                                    message=("declassify() argument is never "
                                             "secret-tainted here — either the "
                                             "taint was laundered upstream or "
                                             "the call is unnecessary"),
                                    path=info.ctx.relpath, line=node.lineno,
                                    col=node.col_offset, symbol=info.symbol,
                                    severity=Severity.WARNING,
                                    checker=self.name)

    def _check_fork_labels(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fork" and node.args):
                label = node.args[0]
                if not _has_literal_component(label):
                    yield Finding(
                        code="FLOW001",
                        message=("fork() label has no literal string "
                                 "component; stream separation becomes "
                                 "data-dependent and two call sites can "
                                 "collide on the same child stream"),
                        path=ctx.relpath, line=node.lineno,
                        col=node.col_offset, symbol=ctx.symbol_at(node),
                        checker=self.name)
