"""CT — constant-time discipline for `repro.crypto` / `repro.pqc`.

Intraprocedural taint tracking: taint seeds from secret-named parameters
(``sk``, ``seed``, ``coins``, ``*secret*``, ...) and from the secret
outputs of ``keygen`` / ``decaps`` calls, propagates through assignments
and expressions, and any secret-dependent ``if``/``while`` condition,
``range()`` loop bound, or subscript index is flagged.  This is the
AST-level analogue of the constant-time C discipline liboqs/OpenSSL rely
on (and OpenSSLNTRU emphasises for key exchange): pure Python can never
be cycle-exact, but it *can* refuse control flow and memory addressing
keyed on secrets, which keeps the reproduction's algorithms structurally
faithful to their specs.

Deliberate declassification (e.g. FO-transform outcomes that the
protocol reveals anyway) goes through
:func:`repro.crypto.constanttime.declassify`, which this checker treats
as a sanitizer — grep for callers to audit every such decision.

``repro.crypto.kernels`` is checked in *strict* mode: every function
parameter is seeded as tainted, whatever its name. Kernels are generic
data-plane code (a polynomial, a table index, a block) whose inputs are
secret whenever their caller's inputs are, so name-based seeding would
systematically under-taint them. The kernels trade timing uniformity
for speed on purpose — Python erases it anyway, and the simulated clock
never reads the host clock — so each table lookup or data-dependent
branch carries an explicit ``pqtls: allow[CT00x]`` pragma at the use
site, which keeps every such decision greppable and reviewed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.flow.taint import (
    CRYPTO_SCOPES as _SCOPES,
    KEYGEN_NAMES as _KEYGEN_NAMES,
    SANITIZERS as _SANITIZERS,
    SECRET_RETURNING as _SECRET_RETURNING,
    STRICT_SCOPES as _STRICT_SCOPES,
    attr_root,
    call_name as _call_name,
    is_secret_name as _is_secret_name,
)
from repro.analysis.registry import Checker, register


class _FunctionTaint:
    """One function's forward taint pass (iterated to a fixpoint)."""

    def __init__(self, func: ast.FunctionDef, strict: bool = False):
        self.func = func
        self.tainted: dict[str, str] = {}   # name -> origin description
        for arg in [*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs]:
            if strict and arg.arg not in ("self", "cls"):
                self.tainted[arg.arg] = f"parameter {arg.arg!r} (strict kernel scope)"
            elif _is_secret_name(arg.arg):
                self.tainted[arg.arg] = f"parameter {arg.arg!r}"

    # -- expression taint ---------------------------------------------------
    def origin_of(self, expr: ast.AST) -> str | None:
        """Origin string if *expr* is tainted, else None.

        Sanitizer calls (``len``, ``declassify``, ...) produce public
        values, so their subtrees are not descended into — with one
        exception: a sanitizer applied to an *attribute or subscript* of
        a tainted value does not launder.  ``len(sk)`` is a public wire
        size, but ``len(sk.x)`` / ``declassify(sk[i])`` project a
        component out of secret data first, and the projection (or its
        length) may itself be secret-dependent.
        """
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call) and _call_name(node) in _SANITIZERS:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if isinstance(arg, (ast.Attribute, ast.Subscript)):
                        root = attr_root(arg)
                        if root is not None and root in self.tainted:
                            return self.tainted[root]
                continue  # public result: do not descend further
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return self.tainted[node.id]
            if isinstance(node, ast.Call) and _call_name(node) in _SECRET_RETURNING:
                return f"{_call_name(node)}() result"
            stack.extend(ast.iter_child_nodes(node))
        return None

    # -- statement transfer -------------------------------------------------
    def _taint_target(self, target: ast.AST, origin: str) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            if target.id not in self.tainted:
                self.tainted[target.id] = origin
                changed = True
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                changed |= self._taint_target(element, origin)
        elif isinstance(target, ast.Starred):
            changed |= self._taint_target(target.value, origin)
        return changed

    def propagate_once(self) -> bool:
        changed = False
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign):
                changed |= self._transfer_assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                changed |= self._transfer_assign([node.target], node.value)
            elif isinstance(node, ast.AugAssign):
                origin = self.origin_of(node.value)
                if origin:
                    changed |= self._taint_target(node.target, origin)
            elif isinstance(node, ast.NamedExpr):
                origin = self.origin_of(node.value)
                if origin:
                    changed |= self._taint_target(node.target, origin)
            elif isinstance(node, ast.For):
                origin = self.origin_of(node.iter)
                if origin:
                    changed |= self._taint_target(node.target, origin)
            elif isinstance(node, ast.comprehension):
                # `[table[x] for x in sk]` indexes on secret data even
                # though x never appears in an assignment statement
                origin = self.origin_of(node.iter)
                if origin:
                    changed |= self._taint_target(node.target, origin)
        return changed

    def _transfer_assign(self, targets: list[ast.AST], value: ast.AST) -> bool:
        changed = False
        # `pk, sk = scheme.keygen(drbg)`: only the secret-key element
        # taints; any other target shape (`pair = scheme.keygen(drbg)`)
        # keeps the whole binding secret so a later unpacking cannot
        # launder the key
        if isinstance(value, ast.Call) and _call_name(value) in _KEYGEN_NAMES:
            origin = f"{_call_name(value)}() secret key"
            for target in targets:
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    changed |= self._taint_target(target.elts[1], origin)
                else:
                    changed |= self._taint_target(target, origin)
            return changed
        for target in targets:
            # element-wise tuple transfer: `a, b = sk, pk` taints only a,
            # and `n, m = len(sk.x), declassify(sk.y)` taints both (the
            # whole-tuple origin used to launder these)
            if (isinstance(target, (ast.Tuple, ast.List))
                    and isinstance(value, (ast.Tuple, ast.List))
                    and len(target.elts) == len(value.elts)
                    and not any(isinstance(e, ast.Starred) for e in target.elts)):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    origin = self.origin_of(v_elt)
                    if origin:
                        changed |= self._taint_target(t_elt, origin)
            else:
                origin = self.origin_of(value)
                if origin:
                    changed |= self._taint_target(target, origin)
        return changed

    def solve(self, max_rounds: int = 10) -> None:
        for _ in range(max_rounds):
            if not self.propagate_once():
                return


@register
class ConstantTimeChecker(Checker):
    name = "ct"
    description = ("no secret-dependent control flow or memory indexing in "
                   "repro.crypto / repro.pqc (intraprocedural taint tracking)")
    codes = {
        "CT001": "branch condition (`if`/`while`/ternary/`match`) depends on secret data",
        "CT002": "loop bound depends on secret data",
        "CT003": "subscript index depends on secret data",
    }

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.module == s or ctx.module.startswith(s + ".") for s in _SCOPES):
            return
        strict = any(ctx.module == s or ctx.module.startswith(s + ".")
                     for s in _STRICT_SCOPES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, strict)

    def _check_function(self, ctx: FileContext, func: ast.FunctionDef,
                        strict: bool = False) -> Iterator[Finding]:
        taint = _FunctionTaint(func, strict=strict)
        taint.solve()
        if not taint.tainted:
            return

        def finding(code: str, node: ast.AST, message: str) -> Finding:
            return Finding(code=code, message=message, path=ctx.relpath,
                           line=node.lineno, col=node.col_offset,
                           symbol=ctx.symbol_at(node), checker=self.name)

        nested = {
            child for child in ast.walk(func)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not func
        }

        def in_nested(node: ast.AST) -> bool:
            current = ctx.parents.get(node)
            while current is not None and current is not func:
                if current in nested:
                    return True
                current = ctx.parents.get(current)
            return False

        for node in ast.walk(func):
            if in_nested(node):
                continue  # nested defs get their own pass with their own seeds
            if isinstance(node, (ast.If, ast.While)):
                origin = taint.origin_of(node.test)
                if origin:
                    kind = "if" if isinstance(node, ast.If) else "while"
                    yield finding("CT001", node,
                                  f"`{kind}` condition depends on {origin}")
            elif isinstance(node, ast.IfExp):
                origin = taint.origin_of(node.test)
                if origin:
                    yield finding("CT001", node,
                                  f"conditional expression depends on {origin}")
            elif isinstance(node, ast.Match):
                origin = taint.origin_of(node.subject)
                if origin:
                    yield finding("CT001", node,
                                  f"`match` subject depends on {origin}")
            elif isinstance(node, ast.For):
                if isinstance(node.iter, ast.Call) and _call_name(node.iter) == "range":
                    for arg in node.iter.args:
                        origin = taint.origin_of(arg)
                        if origin:
                            yield finding("CT002", node,
                                          f"`range()` loop bound depends on {origin}")
                            break
            elif isinstance(node, ast.Subscript):
                origin = self._slice_origin(taint, node.slice)
                if origin:
                    yield finding("CT003", node,
                                  f"subscript index depends on {origin}")

    @staticmethod
    def _slice_origin(taint: _FunctionTaint, node: ast.AST) -> str | None:
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    origin = taint.origin_of(part)
                    if origin:
                        return origin
            return None
        return taint.origin_of(node)
