"""DET — no ambient nondeterminism anywhere under `repro`.

The simulation draws all time from the event loop and all randomness
from :class:`~repro.crypto.drbg.Drbg`; given the same seed every
experiment reproduces bit-exactly, which is what makes cached scripts,
recorded traces, and Table 2–4 regeneration trustworthy.  Wall-clock
reads (`time.time`, `perf_counter`) are allowed only inside `repro.obs`,
whose exporters may anchor simulated spans to host time; the stdlib
`random`, `os.urandom`, and `secrets` entropy sources are banned
everywhere — randomness that bypasses the Drbg silently diverges reruns.

Host parallelism is nondeterminism of a third kind: worker pools reorder
events and fork-inherited state diverges reruns, so process-level
primitives (`multiprocessing`, `concurrent.futures`, `os.cpu_count`,
`os.fork`) are confined to `repro.core.executor`, the one module whose
job is to fan experiments across cores — the sans-io simulation layers
stay process-free by contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Checker, register

_CLOCK_EXEMPT_PREFIX = "repro.obs"
# repro.core.executor owns simulation-side process pools; the lint
# runner's own worker pool (repro.analysis.parallel) tolls no simulation
# clock and follows the same spawn + deterministic-merge conventions
_PROCESS_EXEMPT_MODULES = ("repro.core.executor", "repro.analysis.parallel")

_TIME_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
}
_DATETIME_AMBIENT = {"now", "today", "utcnow"}
_PROCESS_MODULES = {"multiprocessing", "concurrent"}
_OS_PROCESS_FUNCS = {"cpu_count", "process_cpu_count", "fork", "forkpty"}


@register
class DeterminismChecker(Checker):
    name = "det"
    description = ("all time from the event loop, all randomness from Drbg: "
                   "no ambient clocks, entropy sources, or process-level "
                   "parallelism (outside repro.core.executor) under repro")
    codes = {
        "DET001": "wall-clock read outside repro.obs (time.time/monotonic/perf_counter/...)",
        "DET002": "stdlib `random` module used (randomness must flow through Drbg)",
        "DET003": "OS entropy used (`os.urandom` / `secrets`); keys would differ per run",
        "DET004": "ambient `datetime.now()`/`today()`/`utcnow()` read",
        "DET005": "process-level parallelism outside the executor / lint "
                  "worker pools (multiprocessing/concurrent.futures/os.cpu_count)",
    }

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return
        clock_exempt = (ctx.module == _CLOCK_EXEMPT_PREFIX
                        or ctx.module.startswith(_CLOCK_EXEMPT_PREFIX + "."))
        process_exempt = ctx.module in _PROCESS_EXEMPT_MODULES

        def finding(code: str, node: ast.AST, message: str) -> Finding:
            return Finding(code=code, message=message, path=ctx.relpath,
                           line=node.lineno, col=node.col_offset,
                           symbol=ctx.symbol_at(node), checker=self.name)

        # module aliases: {"time": "time", "t": "time", ...}
        aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    aliases[alias.asname or alias.name.split(".")[0]] = root
                    if root == "random":
                        yield finding("DET002", node, "`import random`; use Drbg instead")
                    elif root == "secrets":
                        yield finding("DET003", node, "`import secrets`; use Drbg instead")
                    elif root in _PROCESS_MODULES and not process_exempt:
                        yield finding("DET005", node,
                                      f"`import {alias.name}`; worker pools live in "
                                      "repro.core.executor only")
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                root = node.module.split(".")[0]
                if root == "random":
                    yield finding("DET002", node,
                                  "`from random import ...`; use Drbg instead")
                elif root == "secrets":
                    yield finding("DET003", node,
                                  "`from secrets import ...`; use Drbg instead")
                elif root == "time" and not clock_exempt:
                    names = [a.name for a in node.names if a.name in _TIME_FUNCS]
                    if names:
                        yield finding("DET001", node,
                                      f"`from time import {', '.join(names)}`; "
                                      "simulated time comes from the event loop")
                elif root in _PROCESS_MODULES and not process_exempt:
                    yield finding("DET005", node,
                                  f"`from {node.module} import ...`; worker pools "
                                  "live in repro.core.executor only")
                elif root == "datetime":
                    # track `from datetime import datetime/date` for call checks
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = f"datetime.{alias.name}"

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
                continue
            base = aliases.get(func.value.id, func.value.id)
            if base == "time" and func.attr in _TIME_FUNCS and not clock_exempt:
                yield finding("DET001", node,
                              f"`time.{func.attr}()` outside repro.obs; "
                              "simulated time comes from the event loop")
            elif base == "os" and func.attr == "urandom":
                yield finding("DET003", node,
                              "`os.urandom()`; draw from Drbg so runs reproduce")
            elif base == "os" and func.attr in _OS_PROCESS_FUNCS \
                    and not process_exempt:
                yield finding("DET005", node,
                              f"`os.{func.attr}()`; host CPU topology and process "
                              "control belong to repro.core.executor only")
            elif base in ("datetime", "datetime.datetime", "datetime.date") \
                    and func.attr in _DATETIME_AMBIENT and not node.args:
                yield finding("DET004", node,
                              f"ambient `{func.value.id}.{func.attr}()`; pass explicit "
                              "time in or derive it from the simulation")
