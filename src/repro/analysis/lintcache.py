"""Content-addressed cache of lint results under ``.cache/lint/``.

Two record kinds, both plain JSON:

- **file records** (``files/<key>.json``) hold one file's raw file-scope
  findings (from *every* registered file checker — selection is applied
  at assembly time, so one record serves any ``--select``) together with
  the pragma tables the runner needs to apply suppression and
  ``--check-pragmas`` without re-parsing the file;
- **project records** (``project/<key>.json``) hold the raw findings of
  every project-scope checker (the flow engine's clients), keyed over
  the file keys of *all* analyzed files — any file edit invalidates it.

Keys are SHA-256 over the analysis package's own source digest, the
file's project-relative path, and the file's bytes, so upgrading any
checker (or the flow engine) invalidates every record with no version
bookkeeping. Writes are atomic (tmp + rename) so parallel workers can
share the directory; a corrupt or half-written record is treated as a
miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path

RECORD_VERSION = 1


@lru_cache(maxsize=1)
def analysis_digest() -> str:
    """SHA-256 over every source file of ``repro.analysis`` itself.

    Folding the analyzer's own code into each record key makes checker
    or engine changes invalidate the whole cache implicitly.
    """
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.relative_to(package_root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(source.read_bytes())
    return digest.hexdigest()


class LintCache:
    """Record store for one run, rooted at ``<project>/.cache/lint``."""

    def __init__(self, project_root: Path):
        self.root = project_root / ".cache" / "lint"
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------
    def file_key(self, relpath: str, source: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(analysis_digest().encode())
        digest.update(relpath.encode())
        digest.update(b"\x00")
        digest.update(source)
        return digest.hexdigest()

    def project_key(self, file_keys: list[str]) -> str:
        digest = hashlib.sha256()
        digest.update(analysis_digest().encode())
        for file_key in file_keys:
            digest.update(file_key.encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- records ------------------------------------------------------------
    def _path(self, kind: str, record_key: str) -> Path:
        return self.root / kind / f"{record_key}.json"

    def load(self, kind: str, record_key: str) -> dict | None:
        try:
            data = json.loads(self._path(kind, record_key).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if not isinstance(data, dict) or data.get("version") != RECORD_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def store(self, kind: str, record_key: str, record: dict) -> None:
        record = {"version": RECORD_VERSION, **record}
        path = self._path(kind, record_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # a read-only or full cache directory degrades to cache-off
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- hygiene ------------------------------------------------------------
    def prune(self, kind: str, keep: set[str], limit: int = 512) -> int:
        """Cap the record count, deleting oldest-first; returns how many.

        Records in *keep* (this run's keys) are never deleted, so a
        partial-path run cannot evict the rest of the tree's warm
        records; stale generations (pre-edit contents, older analyzer
        versions) only start going once the directory tops *limit*.
        Ordering uses stored mtimes alone — no wall-clock read, which
        the determinism contract (DET001) bans outside ``repro.obs``.
        """
        directory = self.root / kind
        try:
            entries = [entry for entry in directory.iterdir()
                       if entry.suffix == ".json"]
        except OSError:
            return 0
        excess = len(entries) - max(limit, len(keep))
        if excess <= 0:
            return 0
        removed = 0
        def age(entry: Path) -> float:
            try:
                return entry.stat().st_mtime
            except OSError:
                return 0.0
        for entry in sorted(entries, key=age):
            if removed >= excess:
                break
            if entry.stem in keep:
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
