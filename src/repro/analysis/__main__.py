"""``python -m repro.analysis`` — same as the ``pqtls-lint`` script."""

import sys

from repro.analysis.cli import main

sys.exit(main())
