"""Walk files, run every checker, apply pragmas and the baseline.

The run is structured as per-file *units* plus one project-scope pass:

1. every file maps to a record of raw file-scope findings and pragma
   tables (:func:`repro.analysis.parallel.build_record`) — served from
   the content-addressed cache under ``.cache/lint/`` when the file and
   the analyzer are unchanged, and fanned over spawned workers for
   ``jobs > 1``;
2. the project-scope checkers (wire audit and the flow-engine clients)
   run once in the parent over all parsed contexts, cached under a key
   covering every file, so a warm run never builds the flow engine;
3. *assembly* is deterministic and selection-aware: findings are
   filtered to the selected checkers, pragma suppression is applied
   (attributing each suppression to its declaring pragma line), the
   baseline splits the rest, and everything sorts by (path, line, col,
   code) — which is why ``--jobs N`` output is byte-identical to serial.

When the cache is enabled, records always hold *every* checker's
findings and ``--select`` filters at assembly, so one record serves any
selection. ``--check-pragmas`` turns the suppression attribution around:
a pragma declaration that suppressed nothing this run is reported as
ANA001, a baseline entry matching nothing as ANA002.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import parallel
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import FileContext
from repro.analysis.finding import Finding, Severity
from repro.analysis.lintcache import LintCache
from repro.analysis.registry import Checker, all_checkers

_SKIP_DIRS = {"__pycache__", ".git", ".cache", ".venv", "build", "dist"}

# pragma/baseline hygiene findings produced by the runner itself
ANA_CODES = {
    "ANA001": "stale pragma: `pqtls: allow[...]` that suppresses no finding",
    "ANA002": "stale baseline entry: accepted finding that no longer occurs",
}


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)      # by baseline
    pragma_suppressed: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    from_cache: int = 0          # file records served by the lint cache

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    # de-dup while preserving order (overlapping path arguments)
    seen: set[Path] = set()
    unique = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml / .git (else the start)."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return start


def _project_findings(records: list[dict], contexts: dict[str, FileContext],
                      files_by_rel: dict[str, Path], project_root: Path,
                      project_checkers: list[Checker],
                      cache: LintCache | None) -> list[dict]:
    """Raw project-scope findings, cached over the full file-key set."""
    project_key = None
    if cache is not None and all(r.get("key") for r in records):
        project_key = cache.project_key([r["key"] for r in records])
        cached = cache.load("project", project_key)
        if cached is not None:
            return cached["findings"]
    for record in records:
        rel = record["relpath"]
        if record["syntax_error"] or rel in contexts:
            continue
        try:
            contexts[rel] = FileContext.load(files_by_rel[rel], project_root)
        except SyntaxError:  # raced edit since the record was built
            continue
    ordered = [contexts[r["relpath"]] for r in records
               if not r["syntax_error"] and r["relpath"] in contexts]
    engine = None
    if ordered and any(checker.needs_engine for checker in project_checkers):
        from repro.analysis.flow import FlowEngine

        engine = FlowEngine(ordered).solve()
    findings: list[dict] = []
    for checker in project_checkers:
        findings.extend(f.to_dict()
                        for f in checker.check_project(ordered, engine=engine))
    if project_key is not None:
        cache.store("project", project_key, {"findings": findings})
    return findings


def _pragma_table(record: dict) -> dict[int, dict[str, list[int]]]:
    table: dict[int, dict[str, list[int]]] = {}
    for line, code, decls in record["pragmas"]:
        table.setdefault(line, {})[code] = decls
    return table


def analyze(paths: list[Path], project_root: Path | None = None,
            select: list[str] | None = None,
            baseline: Baseline | None = None,
            checkers: list[Checker] | None = None,
            jobs: int = 1, use_cache: bool = True,
            check_pragmas: bool = False) -> Report:
    """Run checkers over *paths* and return the filtered report.

    Findings land in the report in three buckets: live findings, findings
    suppressed by the *baseline*, and a count of pragma-allowed ones
    (``# pqtls: allow[CODE]``). Syntax errors surface as SYNTAX findings
    rather than crashing the run.

    *jobs* fans per-file checking over spawned workers; *use_cache*
    serves unchanged files from ``.cache/lint``; *check_pragmas* adds
    ANA001/ANA002 findings for pragmas and baseline entries that
    suppressed nothing. Passing explicit checker *instances* bypasses
    both the cache and the pool (records would not be reusable).
    """
    if project_root is None:
        anchor = paths[0] if paths else Path.cwd()
        project_root = find_project_root(anchor)
    explicit = checkers is not None
    selected = checkers if explicit else all_checkers(select)
    cache = LintCache(project_root) if use_cache and not explicit else None
    # cache-backed records must be selection-independent: run everything,
    # filter at assembly
    active = all_checkers() if cache is not None else selected
    file_scope = [c for c in active if c.scope != "project"]
    project_scope = [c for c in active if c.scope == "project"]

    files = iter_python_files(paths)
    report = Report()
    contexts: dict[str, FileContext] = {}
    records: list[dict] = []
    if jobs > 1 and not explicit and len(files) > 1:
        names = None if cache is not None else [c.name for c in file_scope]
        records = parallel.check_files(files, project_root, jobs,
                                       cache is not None, names)
    else:
        for file in files:
            record, ctx = parallel.build_record(file, project_root, cache,
                                                file_scope)
            records.append(record)
            if ctx is not None:
                contexts[record["relpath"]] = ctx
    files_by_rel = {record["relpath"]: file
                    for record, file in zip(records, files)}
    report.files_checked = sum(1 for r in records if not r["syntax_error"])
    report.from_cache = sum(1 for r in records if r.get("cached"))

    project_raw: list[dict] = []
    if project_scope:
        project_raw = _project_findings(records, contexts, files_by_rel,
                                        project_root, project_scope, cache)

    # -- assembly: select, pragma-filter, baseline-split, sort ---------------
    selected_names = {c.name for c in selected}
    selected_codes = {code for c in selected for code in c.codes}
    pragma_tables = {r["relpath"]: _pragma_table(r) for r in records}
    pragma_used: set[tuple[str, int, str]] = set()
    visible: list[Finding] = []

    def admit(finding: Finding) -> None:
        if finding.checker not in selected_names and finding.checker != "runner":
            return
        decls = pragma_tables.get(finding.path, {}) \
                             .get(finding.line, {}).get(finding.code)
        if decls:
            report.pragma_suppressed += 1
            for decl in decls:
                pragma_used.add((finding.path, decl, finding.code))
            return
        visible.append(finding)

    for record in records:
        for data in record["findings"]:
            admit(Finding.from_dict(data))
    for data in project_raw:
        admit(Finding.from_dict(data))

    if baseline is not None:
        new, suppressed, stale = baseline.split(visible)
        report.findings.extend(new)
        report.suppressed = suppressed
        # an entry is only stale if this run could have re-produced it:
        # its file was analyzed (and parsed) and its checker was selected
        analyzed = {r["relpath"] for r in records if not r["syntax_error"]}
        report.stale_baseline = [
            entry for entry in stale
            if entry.path in analyzed and entry.code in selected_codes
        ]
    else:
        report.findings.extend(visible)

    if check_pragmas:
        report.findings.extend(
            _stale_pragma_findings(records, selected_codes, pragma_used))
        for entry in report.stale_baseline:
            report.findings.append(Finding(
                code="ANA002", path=entry.path, line=1, symbol=entry.symbol,
                message=f"stale baseline entry: {entry.code} "
                        f"({entry.message!r}) no longer matches any "
                        "finding; remove it (or run --prune-baseline)",
                checker="runner"))

    report.findings.sort(key=Finding.sort_key)

    if cache is not None:
        cache.prune("files", {r["key"] for r in records if r.get("key")})
    return report


def _stale_pragma_findings(records: list[dict], selected_codes: set[str],
                           pragma_used: set[tuple[str, int, str]]) -> list[Finding]:
    """ANA001 for every pragma declaration that suppressed nothing.

    A declaration is only judged when its code belongs to a selected
    checker (a ``--select det`` run cannot tell whether a CT pragma is
    live) — except that a code no registered checker can ever emit is
    always stale, catching typos like ``allow[CT01]``.
    """
    known_codes = {code for checker in all_checkers() for code in checker.codes}
    known_codes.update(ANA_CODES)
    known_codes.add("SYNTAX")
    findings = []
    for record in records:
        for decl_line, codes in record["pragma_decls"]:
            for code in codes:
                unknown = code not in known_codes
                if not unknown and code not in selected_codes:
                    continue
                if (record["relpath"], decl_line, code) in pragma_used:
                    continue
                detail = ("no checker emits this code" if unknown
                          else "it suppresses no finding")
                findings.append(Finding(
                    code="ANA001", path=record["relpath"], line=decl_line,
                    message=f"stale pragma: allow[{code}] — {detail}; "
                            "remove the pragma",
                    checker="runner"))
    return findings
