"""Walk files, run every checker, apply pragmas and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.context import FileContext
from repro.analysis.finding import Finding, Severity
from repro.analysis.registry import Checker, all_checkers

_SKIP_DIRS = {"__pycache__", ".git", ".cache", ".venv", "build", "dist"}


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)      # by baseline
    pragma_suppressed: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    # de-dup while preserving order (overlapping path arguments)
    seen: set[Path] = set()
    unique = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml / .git (else the start)."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return start


def analyze(paths: list[Path], project_root: Path | None = None,
            select: list[str] | None = None,
            baseline: Baseline | None = None,
            checkers: list[Checker] | None = None) -> Report:
    """Run checkers over *paths* and return the filtered report.

    Findings land in the report in three buckets: live findings, findings
    suppressed by the *baseline*, and a count of pragma-allowed ones
    (``# pqtls: allow[CODE]``). Syntax errors surface as SYNTAX findings
    rather than crashing the run.
    """
    if project_root is None:
        anchor = paths[0] if paths else Path.cwd()
        project_root = find_project_root(anchor)
    if checkers is None:
        checkers = all_checkers(select)

    report = Report()
    contexts: list[FileContext] = []
    for file in iter_python_files(paths):
        try:
            contexts.append(FileContext.load(file, project_root))
        except SyntaxError as exc:
            report.findings.append(Finding(
                code="SYNTAX", message=f"cannot parse: {exc.msg}",
                path=file.as_posix(), line=exc.lineno or 1, checker="runner",
            ))
    report.files_checked = len(contexts)

    raw: list[Finding] = []
    for checker in checkers:
        if checker.scope == "project":
            raw.extend(checker.check_project(contexts))
        else:
            for ctx in contexts:
                raw.extend(checker.check_file(ctx))

    by_path = {ctx.relpath: ctx for ctx in contexts}
    visible: list[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.is_allowed(finding.line, finding.code):
            report.pragma_suppressed += 1
            continue
        visible.append(finding)

    if baseline is not None:
        new, suppressed, stale = baseline.split(visible)
        report.findings.extend(new)
        report.suppressed = suppressed
        # an entry is only stale if this run could have re-produced it:
        # its file was analyzed and its checker was selected
        active_codes = {code for checker in checkers for code in checker.codes}
        report.stale_baseline = [
            entry for entry in stale
            if entry.path in by_path and entry.code in active_codes
        ]
    else:
        report.findings.extend(visible)
    report.findings.sort(key=Finding.sort_key)
    return report
