"""Per-file checking units and the lint runner's spawned worker pool.

One *unit* of work is ``build_record``: hash a file, consult the lint
cache, and on a miss parse it and run every file-scope checker, giving a
JSON-serializable record (findings + pragma tables). The runner executes
units inline for ``--jobs 1`` and fans them over a spawned
``ProcessPoolExecutor`` otherwise, mirroring ``repro.core.executor``'s
conventions: workers are spawned (clean interpreters, no inherited
state), requested jobs clamp to the host core count, and results merge
in the input file order — so a parallel run is byte-identical to a
serial one, whatever order workers finish in. Workers coordinate only
through the content-addressed cache, whose writes are atomic.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding
from repro.analysis.lintcache import LintCache
from repro.analysis.registry import Checker, all_checkers


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: requested jobs, clamped to the core count.

    Same policy as ``repro.core.executor.resolve_jobs`` (checking is
    CPU-bound; oversubscription only adds spawn overhead), duplicated
    here so the lint CLI does not import the simulation stack.
    """
    cpus = os.cpu_count() or 1
    if jobs is None:
        return cpus
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    return min(jobs, cpus)


def file_checkers(names: list[str] | None) -> list[Checker]:
    """File-scope checker instances, optionally restricted to *names*."""
    return [checker for checker in all_checkers()
            if checker.scope != "project"
            and (names is None or checker.name in names)]


def relpath_for(path: Path, project_root: Path) -> str:
    try:
        return path.resolve().relative_to(project_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def build_record(path: Path, project_root: Path, cache: LintCache | None,
                 checkers: list[Checker]) -> tuple[dict, FileContext | None]:
    """One file's lint record, from the cache when its key matches.

    Returns ``(record, context)``; the context is only populated when the
    file was actually parsed this call (cache miss), letting an inline
    runner reuse it for the project-scope pass.
    """
    relpath = relpath_for(path, project_root)
    record_key = ""
    if cache is not None:
        record_key = cache.file_key(relpath, path.read_bytes())
        record = cache.load("files", record_key)
        if record is not None:
            record["cached"] = True
            return record, None
    ctx: FileContext | None = None
    try:
        ctx = FileContext.load(path, project_root)
    except SyntaxError as exc:
        syntax = Finding(code="SYNTAX", message=f"cannot parse: {exc.msg}",
                         path=path.as_posix(), line=exc.lineno or 1,
                         checker="runner")
        record = {"key": record_key, "relpath": relpath, "module": "",
                  "syntax_error": True, "findings": [syntax.to_dict()],
                  "pragmas": [], "pragma_decls": []}
    else:
        findings = []
        for checker in checkers:
            findings.extend(f.to_dict() for f in checker.check_file(ctx))
        record = {
            "key": record_key,
            "relpath": relpath,
            "module": ctx.module,
            "syntax_error": False,
            "findings": findings,
            "pragmas": [
                [line, code, sorted(decls)]
                for line, slot in sorted(ctx.pragmas.items())
                for code, decls in sorted(slot.items())
            ],
            "pragma_decls": [
                [line, sorted(codes)]
                for line, codes in sorted(ctx.pragma_declarations().items())
            ],
        }
    if cache is not None:
        cache.store("files", record_key, record)
    record["cached"] = False
    return record, ctx


def _check_one(task: tuple[str, str, bool, list[str] | None]) -> dict:
    """Worker entry point: one file -> one serialized record."""
    path, root, use_cache, names = task
    cache = LintCache(Path(root)) if use_cache else None
    record, _ = build_record(Path(path), Path(root), cache, file_checkers(names))
    return record


def check_files(files: list[Path], project_root: Path, jobs: int,
                use_cache: bool, names: list[str] | None) -> list[dict]:
    """Fan per-file units over *jobs* spawned workers; records in file order."""
    jobs = min(resolve_jobs(jobs), len(files))
    tasks = [(str(f), str(project_root), use_cache, names) for f in files]
    if jobs <= 1:
        return [_check_one(task) for task in tasks]
    context = multiprocessing.get_context("spawn")
    chunk = max(1, len(tasks) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(_check_one, tasks, chunksize=chunk))
