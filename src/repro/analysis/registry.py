"""Checker plugin registry.

A checker is a class with ``name``/``codes``/``description`` metadata and
either a per-file or a whole-project ``check``.  Registration happens at
import time via :func:`register`; ``repro.analysis.checkers`` imports
every built-in checker module so :func:`all_checkers` sees them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Type

from repro.analysis.context import FileContext
from repro.analysis.finding import Finding


class Checker:
    """Base class; subclasses override one of the two ``check_*`` hooks.

    Attributes
    ----------
    name: short registry key (``ct``, ``det``, ...).
    codes: mapping of finding code -> one-line meaning, used by
        ``pqtls-lint --list-checkers`` and the docs.
    scope: ``"file"`` (checked per file) or ``"project"`` (sees all files
        at once — e.g. the WIRE registry audit).
    needs_engine: project checkers set this to receive the solved
        :class:`~repro.analysis.flow.engine.FlowEngine` via the
        ``engine`` keyword; the runner builds it once per run.
    """

    name: str = ""
    description: str = ""
    codes: dict[str, str] = {}
    scope: str = "file"
    needs_engine: bool = False

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctxs: list[FileContext],
                      engine=None) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers(select: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate registered checkers, optionally filtered.

    *select* entries may be checker names (``ct``) or finding-code
    prefixes (``CT001``, ``CT``); an exact checker name wins outright, so
    ``ct`` selects the intraprocedural checker alone while ``CT1`` still
    reaches the interprocedural family by code prefix.  Anything unknown
    raises.
    """
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    if select is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    wanted = list(select)
    chosen: dict[str, Type[Checker]] = {}
    for token in wanted:
        if token.lower() in _REGISTRY:
            chosen[token.lower()] = _REGISTRY[token.lower()]
            continue
        hits = {
            name: cls
            for name, cls in _REGISTRY.items()
            if any(code.startswith(token.upper()) for code in cls.codes)
        }
        if not hits:
            known = sorted(_REGISTRY)
            raise KeyError(f"unknown checker selector {token!r}; known: {known}")
        chosen.update(hits)
    return [cls() for _, cls in sorted(chosen.items())]
