"""Named counters, gauges, and histograms for the simulator.

The seed code accumulated its statistics in ad-hoc dicts scattered across
``ExperimentResult`` and the TCP endpoints; this registry gives every
quantity a stable dotted name (``tcp.client.retransmits``,
``cpu.server.libcrypto``, ``cache.hit``) so campaign code, the CLI, and
tests all read the same instrument. Instruments are created lazily on
first access and snapshot to plain dicts for JSON export.

:data:`NULL_METRICS` mirrors :data:`repro.obs.tracer.NULL_TRACER`:
``enabled`` is False and the instruments it hands out swallow updates, so
un-observed runs pay nothing beyond an attribute check.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonic count (events, bytes, hits)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins scalar (cwnd, bytes in flight)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Full-sample histogram (flight sizes, per-handshake latencies)."""

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]


class Metrics:
    """Registry: one flat namespace of instruments, created on demand."""

    enabled = True

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- convenience write paths (read like statsd calls) -------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reads -------------------------------------------------------------
    def value(self, name: str) -> float:
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        raise KeyError(f"no counter or gauge named {name!r}")

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """``{suffix: value}`` for every counter named ``prefix + suffix``."""
        return {
            name[len(prefix):]: instrument.value
            for name, instrument in self._counters.items()
            if name.startswith(prefix)
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (campaign aggregation)."""
        for name, instrument in other._counters.items():
            self.counter(name).inc(instrument.value)
        for name, instrument in other._gauges.items():
            self.gauge(name).set(instrument.value)
        for name, instrument in other._histograms.items():
            self.histogram(name).samples.extend(instrument.samples)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        The inverse of :meth:`snapshot`: ``a.merge_snapshot(b.snapshot())``
        leaves ``a`` exactly as ``a.merge(b)`` would. This is how cached
        experiment results and parallel-worker results replay their
        metrics into the caller's registry without sharing objects.
        Histogram replay needs the snapshot's ``samples`` list; snapshots
        written before it existed merge their counters/gauges only.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)
        for name, stats in snapshot.get("histograms", {}).items():
            self.histogram(name).samples.extend(stats.get("samples", ()))

    def snapshot(self) -> dict:
        """Plain-dict dump, stable across runs, ready for ``json.dump``.

        Carries the raw ``samples`` alongside the summary statistics so a
        snapshot is lossless: :meth:`merge_snapshot` can reconstruct the
        full histogram (cache-hit restore, cross-process aggregation).
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            out["histograms"][name] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "min": histogram.min,
                "max": histogram.max,
                "mean": histogram.mean,
                "median": histogram.median,
                "p99": histogram.quantile(0.99),
                "samples": list(histogram.samples),
            }
        return out


class _NullInstrument:
    """Accepts every update, keeps nothing."""

    name = ""
    value = 0.0
    samples: tuple = ()
    count = 0
    sum = 0.0
    mean = 0.0
    median = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: hands out one shared no-op instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def names(self) -> list:
        return []

    def counters_with_prefix(self, prefix: str) -> dict:
        return {}

    def merge(self, other) -> None:
        pass

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
