"""Named counters, gauges, and histograms for the simulator.

The seed code accumulated its statistics in ad-hoc dicts scattered across
``ExperimentResult`` and the TCP endpoints; this registry gives every
quantity a stable dotted name (``tcp.client.retransmits``,
``cpu.server.libcrypto``, ``cache.hit``) so campaign code, the CLI, and
tests all read the same instrument. Instruments are created lazily on
first access and snapshot to plain dicts for JSON export. Instrument
names are dotted lowercase ``[a-z0-9_.]`` by contract (pqtls-lint
OBS001), so prefix reads and cross-run diffs never fight naming drift.

Histograms are **exact below, streaming above** a retention threshold:
up to :data:`DEFAULT_RETENTION` raw samples are kept (with a cached
sorted view, so repeated ``quantile`` calls don't re-sort), and beyond
that the histogram *spills* — raw samples are dropped and every further
observation feeds a constant-memory
:class:`~repro.obs.sketch.QuantileSketch` (quantiles within a documented
relative-error bound) plus a deterministic
:class:`~repro.obs.sketch.ReservoirSample` (raw-value peeks). Both
structures merge associatively, so worker→leader snapshot shipping in
``repro.core.executor`` is bit-identical at any ``--jobs`` and a
million-handshake campaign holds O(retention) memory per histogram.

:data:`NULL_METRICS` mirrors :data:`repro.obs.tracer.NULL_TRACER`:
``enabled`` is False and the instruments it hands out swallow updates, so
un-observed runs pay nothing beyond an attribute check.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    DEFAULT_RESERVOIR_K,
    QuantileSketch,
    ReservoirSample,
)

# Raw samples retained per histogram before it spills to streaming mode.
# Sized so every per-experiment histogram of the paper's campaigns (≤151
# handshake samples, a few thousand TCP flight observations) stays exact,
# while campaign-level aggregates over large sets stream.
DEFAULT_RETENTION = 4096


@dataclass
class Counter:
    """Monotonic count (events, bytes, hits)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins scalar (cwnd, bytes in flight)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Sample distribution: exact to ``retention`` samples, streaming after.

    While unspilled, ``samples`` is the full observation stream in order
    and every statistic is exact (quantiles served from a cached sorted
    view, invalidated on observe). Once the count crosses ``retention``
    the histogram spills: ``samples`` empties, scalars (count/sum/min/
    max) stay exact, and quantiles come from the log-bucketed sketch
    with relative error ≤ ``relative_accuracy``.
    """

    def __init__(self, name: str, retention: int = DEFAULT_RETENTION,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 reservoir_k: int = DEFAULT_RESERVOIR_K):
        self.name = name
        self.retention = retention
        self.relative_accuracy = relative_accuracy
        self.reservoir_k = reservoir_k
        self.samples: list[float] = []
        self.sketch: QuantileSketch | None = None
        self.reservoir: ReservoirSample | None = None
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._next_index = 0          # stream position of the next direct observe
        self._sorted: list[float] | None = None   # cached sorted view

    # -- writes --------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self.sketch is None:
            self.samples.append(value)
            self._sorted = None
            self._next_index += 1
            if len(self.samples) > self.retention:
                self._spill()
        else:
            self.sketch.add(value)
            self.reservoir.add(self._next_index, value)
            self._next_index += 1

    def _spill(self) -> None:
        """Hand the retained stream to the streaming structures.

        Samples are replayed at their stream positions, so a spilled
        histogram's state is a pure function of the observation stream —
        whichever process, merge order, or snapshot round-trip produced
        it (the ``--jobs`` bit-identity contract).
        """
        self.sketch = QuantileSketch(relative_accuracy=self.relative_accuracy)
        self.reservoir = ReservoirSample(k=self.reservoir_k)
        for index, value in enumerate(self.samples):
            self.sketch.add(value)
            self.reservoir.add(index, value)
        self.samples.clear()
        self._sorted = None

    # -- reads ---------------------------------------------------------------
    @property
    def spilled(self) -> bool:
        return self.sketch is not None

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        if not self.spilled:
            return statistics.fmean(self.samples)
        return self._sum / self._count

    @property
    def median(self) -> float:
        if self._count == 0:
            return 0.0
        if not self.spilled:
            return statistics.median(self.samples)
        return self.sketch.quantile(0.5)

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def quantile(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        if not self.spilled:
            if self._sorted is None:
                self._sorted = sorted(self.samples)
            ordered = self._sorted
            index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
            return ordered[index]
        return self.sketch.quantile(q)

    # -- merging -------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in, as if its stream were observed here.

        Exact if the combined count fits the retention window; spills
        (both ways) otherwise. Spilled state merges associatively, so
        campaign aggregation gives one answer at any ``--jobs``.
        """
        if other._count == 0:
            return
        self._count += other._count
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        if (not self.spilled and not other.spilled
                and len(self.samples) + len(other.samples) <= self.retention):
            self.samples.extend(other.samples)
            self._next_index = len(self.samples)
            self._sorted = None
            return
        if not self.spilled:
            self._spill()
        if not other.spilled:
            # feed at *other's* stream positions: identical to merging the
            # histogram a snapshot round-trip would reconstruct
            for index, value in enumerate(other.samples):
                self.sketch.add(value)
                self.reservoir.add(index, value)
        else:
            self.sketch.merge(other.sketch)
            self.reservoir.merge(other.reservoir)

    def snapshot_entry(self) -> dict:
        """Plain-dict dump; lossless (see :meth:`from_snapshot_entry`)."""
        entry = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "median": self.median,
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "samples": list(self.samples),
        }
        if self.spilled:
            entry["streaming"] = {
                "observed": self._count,
                "relative_accuracy": self.relative_accuracy,
                "sketch": self.sketch.state(),
                "reservoir": self.reservoir.state(),
            }
        return entry

    @classmethod
    def from_snapshot_entry(cls, name: str, entry: dict,
                            retention: int = DEFAULT_RETENTION,
                            relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                            reservoir_k: int = DEFAULT_RESERVOIR_K) -> "Histogram":
        """Rebuild the histogram a snapshot came from.

        Unspilled snapshots carry the full ordered stream and replay
        exactly; spilled ones import their streaming state. Snapshots
        written before ``samples`` existed degrade to an empty histogram
        (counters/gauges still restore), preserving the pre-streaming
        contract for old cached results.
        """
        histogram = cls(name, retention=retention,
                        relative_accuracy=relative_accuracy,
                        reservoir_k=reservoir_k)
        streaming = entry.get("streaming")
        if streaming is None:
            for value in entry.get("samples", ()):
                histogram.observe(value)
            return histogram
        histogram.sketch = QuantileSketch.from_state(streaming["sketch"])
        histogram.reservoir = ReservoirSample.from_state(
            streaming["reservoir"], k=reservoir_k)
        histogram._count = int(entry["count"])
        histogram._sum = float(entry["sum"])
        if histogram._count:
            histogram._min = float(entry["min"])
            histogram._max = float(entry["max"])
        histogram._next_index = int(streaming.get("observed", histogram._count))
        return histogram


class Metrics:
    """Registry: one flat namespace of instruments, created on demand."""

    enabled = True

    def __init__(self, retention: int = DEFAULT_RETENTION,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 reservoir_k: int = DEFAULT_RESERVOIR_K):
        self.retention = retention
        self.relative_accuracy = relative_accuracy
        self.reservoir_k = reservoir_k
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, retention=self.retention,
                relative_accuracy=self.relative_accuracy,
                reservoir_k=self.reservoir_k)
        return instrument

    # -- convenience write paths (read like statsd calls) -------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reads -------------------------------------------------------------
    def value(self, name: str) -> float:
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        raise KeyError(f"no counter or gauge named {name!r}")

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """``{suffix: value}`` for every counter named ``prefix + suffix``."""
        return {
            name[len(prefix):]: instrument.value
            for name, instrument in self._counters.items()
            if name.startswith(prefix)
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (campaign aggregation)."""
        for name, instrument in other._counters.items():
            self.counter(name).inc(instrument.value)
        for name, instrument in other._gauges.items():
            self.gauge(name).set(instrument.value)
        for name, instrument in other._histograms.items():
            self.histogram(name).merge(instrument)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        The inverse of :meth:`snapshot`: ``a.merge_snapshot(b.snapshot())``
        leaves ``a`` exactly as ``a.merge(b)`` would — including streaming
        (sketch + reservoir) state, so cache-hit restores and parallel
        workers replay their metrics bit-identically to an in-process
        run. Histogram replay needs the snapshot's ``samples`` (or
        ``streaming``) payload; snapshots written before those existed
        merge their counters/gauges only.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)
        for name, entry in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(Histogram.from_snapshot_entry(
                name, entry, retention=self.retention,
                relative_accuracy=self.relative_accuracy,
                reservoir_k=self.reservoir_k))

    def snapshot(self) -> dict:
        """Plain-dict dump, stable across runs, ready for ``json.dump``.

        Lossless: unspilled histograms carry their raw ``samples``,
        spilled ones their ``streaming`` sketch/reservoir state, so
        :meth:`merge_snapshot` reconstructs the full instrument
        (cache-hit restore, cross-process aggregation).
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            out["histograms"][name] = self._histograms[name].snapshot_entry()
        return out


class _NullInstrument:
    """Accepts every update, keeps nothing."""

    name = ""
    value = 0.0
    samples: tuple = ()
    count = 0
    sum = 0.0
    mean = 0.0
    median = 0.0
    min = 0.0
    max = 0.0
    spilled = False

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: hands out one shared no-op instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def names(self) -> list:
        return []

    def counters_with_prefix(self, prefix: str) -> dict:
        return {}

    def merge(self, other) -> None:
        pass

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
