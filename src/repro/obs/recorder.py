"""Campaign flight recorder: a structured JSONL log of what actually ran.

A campaign is a black box while it runs — hundreds of experiments, a
process pool, a shared cache — and when one stalls or a CI run slows
down, the question is always the same: which task, which worker, cache
hit or cold recording, how long. The flight recorder answers it with an
append-only JSONL event stream (``campaign_begin``, ``schedule``,
``task_start``, ``task_finish``, ``cache_hit``, ``campaign_end``; one
JSON object per line, written incrementally so a crashed campaign still
leaves its log) plus an optional single-line live progress/ETA display.

Timestamps are **host** seconds relative to the recorder's creation
(``t`` field), read through :func:`walltime` — the sanctioned wall-clock
accessor for the rest of the stack. pqtls-lint DET001 confines clock
reads to ``repro.obs``: simulation code must never see the host clock,
but the executor may route its flight-recorder timing through here
because it only *reports* host time, never feeds it into results.

The recorder is pure observation: events change no result, no cache
entry, no metric. :data:`NULL_RECORDER` is the disabled implementation
(``enabled`` is False, every method a no-op), so un-recorded campaigns
pay one attribute check per site.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO

__all__ = ["FlightRecorder", "NullRecorder", "NULL_RECORDER", "walltime"]


def walltime() -> float:
    """Monotonic host seconds — the one sanctioned wall-clock read."""
    return time.perf_counter()


class FlightRecorder:
    """Collects flight events, optionally streaming them to a JSONL file."""

    enabled = True

    def __init__(self, path: str | Path | None = None, *,
                 live: bool = False, stream: IO | None = None):
        self.events: list[dict] = []
        self._t0 = walltime()
        self._file: IO | None = None
        self._live = live
        self._stream = stream if stream is not None else sys.stderr
        self._live_dirty = False
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file = path.open("w")
            self.path = path
        else:
            self.path = None

    # -- events ------------------------------------------------------------
    def event(self, kind: str, **fields) -> dict:
        """Record one event, stamped with seconds since recorder creation."""
        record = {"event": kind, "t": round(walltime() - self._t0, 6), **fields}
        self.events.append(record)
        if self._file is not None:
            self._clear_live()
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
        return record

    def task_start(self, key: str, *, mode: str, set_name: str,
                   cached: bool | None = None, est_cost: float | None = None) -> None:
        fields = {"key": key, "mode": mode, "set": set_name}
        if cached is not None:
            fields["cached"] = cached
        if est_cost is not None:
            fields["est_cost"] = round(est_cost, 4)
        self.event("task_start", **fields)

    def task_finish(self, key: str, *, mode: str, set_name: str,
                    host_seconds: float | None = None,
                    outcomes: dict | None = None,
                    retransmits: float | None = None,
                    cache_counters: dict | None = None) -> None:
        fields: dict = {"key": key, "mode": mode, "set": set_name}
        if host_seconds is not None:
            fields["host_seconds"] = round(host_seconds, 6)
        if outcomes:
            fields["outcomes"] = dict(sorted(outcomes.items()))
        if retransmits:
            fields["retransmits"] = retransmits
        if cache_counters:
            fields["cache"] = dict(sorted(cache_counters.items()))
        self.event("task_finish", **fields)

    def heartbeat(self, *, in_flight: int | None = None,
                  completed: int | None = None, hps: float | None = None,
                  rss: int | None = None, **fields) -> None:
        """Periodic liveness event for long runs (traffic engine).

        ``in_flight`` is the number of concurrent handshakes, ``completed``
        the running total, ``hps`` the recent handshakes-per-host-second
        rate, ``rss`` the resident set size in bytes (logged as ``rss_mb``).
        All optional: emitters report what they can observe.
        """
        if in_flight is not None:
            fields["in_flight"] = in_flight
        if completed is not None:
            fields["completed"] = completed
        if hps is not None:
            fields["hps"] = round(hps, 1)
        if rss is not None:
            fields["rss_mb"] = round(rss / 1048576, 1)
        self.event("heartbeat", **fields)

    # -- live progress/ETA line --------------------------------------------
    def progress(self, set_name: str, done: int, total: int, *,
                 elapsed: float, eta: float | None = None,
                 hits: int | None = None) -> None:
        if not self._live:
            return
        parts = [f"[{set_name}] {done}/{total}"]
        if hits is not None:
            parts.append(f"{hits} hits")
        parts.append(f"elapsed {elapsed:.1f}s")
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        line = " · ".join(parts)
        self._stream.write("\r" + line.ljust(78))
        self._stream.flush()
        self._live_dirty = True

    def _clear_live(self) -> None:
        if self._live_dirty:
            self._stream.write("\r" + " " * 78 + "\r")
            self._stream.flush()
            self._live_dirty = False

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self._clear_live()
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullRecorder:
    """Disabled flight recorder: every method is a no-op."""

    enabled = False
    events: tuple = ()
    path = None

    def event(self, kind: str, **fields) -> None:
        pass

    def task_start(self, key: str, **fields) -> None:
        pass

    def task_finish(self, key: str, **fields) -> None:
        pass

    def heartbeat(self, **fields) -> None:
        pass

    def progress(self, set_name: str, done: int, total: int, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_RECORDER = NullRecorder()
