"""``pqtls-bench-check``: the perf-regression gate over ``BENCH_*.json``.

Compares freshly-measured benchmark JSON against the committed baselines
in ``benchmarks/out/`` and fails (exit 1) when any metric regressed past
its tolerance band. Three rules keep the gate honest:

- **Hosts must match.** Every benchmark embeds the
  :mod:`repro.obs.hostmeta` block; if the fingerprint (kernel mode,
  machine, interpreter line) differs, the diff is refused outright
  (exit 2) — a fast-kernel baseline tells you nothing about a ref run.
  CPU-topology mismatches are softer: only parallel-speedup metrics are
  skipped, the rest still gate.
- **Direction comes from the name.** Metrics containing ``speedup`` are
  higher-is-better; metrics ending in ``_s`` are wall seconds,
  lower-is-better; everything else is informational (printed, never
  failed) — counts and sizes change legitimately with the grid.
- **Bands are per-metric patterns.** ``benchmarks/bench_tolerances.json``
  maps fnmatch patterns over flattened metric paths
  (``kems.kyber512.speedup``, ``serial.cold_s``) to the allowed
  fractional regression; first match wins, defaults below apply last.
  Ratios (speedups) are host-normalized so their bands are tight;
  absolute seconds get a wide band that only catches catastrophes.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatchcase
from pathlib import Path

from repro.obs.hostmeta import comparable, cpu_mismatch

# (pattern over flattened metric paths, allowed fractional regression);
# consulted after the tolerance file, first match wins
DEFAULT_TOLERANCES: list[tuple[str, float]] = [
    ("*speedup*", 0.30),
    ("*_s", 1.00),
]

# metrics meaningless when CPU topology differs or the pool fell back
CPU_SENSITIVE = ("speedup_cold", "speedup_record_stage", "parallel.*")

OK, REGRESSION, SKIPPED, INFO = "ok", "REGRESSION", "skipped", "info"


def flatten(payload: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path view of every numeric leaf, ``host.*`` excluded."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if path == "host" or path.startswith("host."):
            continue
        if isinstance(value, dict):
            out.update(flatten(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = float(value)
    return out


def direction(path: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    leaf = path.rsplit(".", 1)[-1]
    if "speedup" in leaf:
        return 1
    if leaf.endswith("_s"):
        return -1
    return 0


def tolerance_for(path: str, tolerances: list[tuple[str, float]]) -> float | None:
    for pattern, band in [*tolerances, *DEFAULT_TOLERANCES]:
        if fnmatchcase(path, pattern):
            return band
    return None


def load_tolerances(path: Path) -> list[tuple[str, float]]:
    """``{"tolerances": {pattern: band}}`` — insertion order is precedence."""
    payload = json.loads(path.read_text())
    return [(pattern, float(band))
            for pattern, band in payload.get("tolerances", {}).items()]


def _serial_fallback(payload: dict) -> bool:
    parallel = payload.get("parallel")
    return bool(parallel and parallel.get("serial_fallback"))


def check_pair(baseline: dict, fresh: dict,
               tolerances: list[tuple[str, float]] | None = None,
               ignore_host: bool = False) -> tuple[list[dict], list[str]]:
    """Diff one benchmark payload pair.

    Returns ``(rows, host_mismatches)``: one row per metric present in
    either side, and the fingerprint keys that made the pair
    incomparable (rows are still produced for the report, but callers
    must treat any mismatch as a refusal unless overridden).
    """
    tolerances = tolerances or []
    baseline_host = baseline.get("host", {})
    fresh_host = fresh.get("host", {})
    mismatches = [] if ignore_host else comparable(baseline_host, fresh_host)
    cpus_differ = cpu_mismatch(baseline_host, fresh_host)
    fallback = _serial_fallback(baseline) or _serial_fallback(fresh)

    base_metrics = flatten(baseline)
    fresh_metrics = flatten(fresh)
    rows: list[dict] = []
    for path in sorted(base_metrics | fresh_metrics):
        row = {"metric": path, "baseline": base_metrics.get(path),
               "fresh": fresh_metrics.get(path), "status": INFO, "note": ""}
        rows.append(row)
        if row["baseline"] is None or row["fresh"] is None:
            row["note"] = "missing in " + (
                "fresh" if row["fresh"] is None else "baseline")
            continue
        sense = direction(path)
        if sense == 0:
            continue
        if any(fnmatchcase(path, pattern) for pattern in CPU_SENSITIVE) \
                and (cpus_differ or fallback):
            row["status"] = SKIPPED
            row["note"] = ("cpu topology differs" if cpus_differ
                           else "serial fallback")
            continue
        band = tolerance_for(path, tolerances)
        if band is None:
            continue
        if row["baseline"] == 0:
            row["note"] = "zero baseline"
            continue
        # positive = got worse, as a fraction of the baseline
        change = (row["fresh"] - row["baseline"]) / abs(row["baseline"])
        regression = -change if sense > 0 else change
        row["regression"] = round(regression, 4)
        row["band"] = band
        row["status"] = REGRESSION if regression > band else OK
    return rows, mismatches


def _render(name: str, rows: list[dict], mismatches: list[str],
            out) -> None:
    print(f"== {name}", file=out)
    if mismatches:
        print(f"   host fingerprint differs on: {', '.join(mismatches)} "
              "— refusing to compare (regenerate the baseline on this host, "
              "or pass --ignore-host)", file=out)
    for row in rows:
        if row["status"] == INFO and not row["note"]:
            continue  # silent: unchanged informational metric
        base = "-" if row["baseline"] is None else f"{row['baseline']:g}"
        new = "-" if row["fresh"] is None else f"{row['fresh']:g}"
        detail = row["note"]
        if "regression" in row:
            detail = (f"{row['regression']:+.1%} vs band "
                      f"{row['band']:.0%}")
        print(f"   {row['status']:>10}  {row['metric']:<32} "
              f"{base:>10} -> {new:>10}  {detail}", file=out)


def check_files(pairs: list[tuple[str, Path, Path]],
                tolerances: list[tuple[str, float]],
                ignore_host: bool, out=None) -> int:
    """Check (name, baseline_path, fresh_path) pairs; return exit code."""
    out = out if out is not None else sys.stderr
    exit_code = 0
    for name, baseline_path, fresh_path in pairs:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        rows, mismatches = check_pair(baseline, fresh, tolerances,
                                      ignore_host=ignore_host)
        _render(name, rows, mismatches, out)
        if mismatches:
            exit_code = max(exit_code, 2)
        elif any(row["status"] == REGRESSION for row in rows):
            exit_code = max(exit_code, 1)
    verdict = {0: "no regressions", 1: "REGRESSION", 2: "host mismatch"}
    print(f"pqtls-bench-check: {verdict[exit_code]} "
          f"({len(pairs)} file(s) checked)", file=out)
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pqtls-bench-check",
        description="Diff fresh BENCH_*.json against committed baselines; "
                    "exit 1 on perf regression, 2 on host mismatch.")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path("benchmarks/out"),
                        help="committed baselines (default benchmarks/out)")
    parser.add_argument("--fresh-dir", type=Path, required=True,
                        help="directory holding freshly measured BENCH_*.json")
    parser.add_argument("--tolerances", type=Path,
                        default=Path("benchmarks/bench_tolerances.json"),
                        help="per-metric tolerance bands "
                             "(default benchmarks/bench_tolerances.json)")
    parser.add_argument("--ignore-host", action="store_true",
                        help="compare even when the host fingerprint differs")
    parser.add_argument("names", nargs="*",
                        help="restrict to these file names "
                             "(default: every BENCH_*.json in --fresh-dir)")
    args = parser.parse_args(argv)

    names = args.names or sorted(
        path.name for path in args.fresh_dir.glob("BENCH_*.json"))
    if not names:
        print(f"pqtls-bench-check: no BENCH_*.json under {args.fresh_dir}",
              file=sys.stderr)
        return 2
    pairs = []
    for name in names:
        baseline_path = args.baseline_dir / name
        fresh_path = args.fresh_dir / name
        if not baseline_path.exists():
            print(f"pqtls-bench-check: no committed baseline for {name} "
                  f"(expected {baseline_path})", file=sys.stderr)
            return 2
        if not fresh_path.exists():
            print(f"pqtls-bench-check: missing fresh measurement {fresh_path}",
                  file=sys.stderr)
            return 2
        pairs.append((name, baseline_path, fresh_path))
    tolerances = (load_tolerances(args.tolerances)
                  if args.tolerances.exists() else [])
    return check_files(pairs, tolerances, args.ignore_host)


if __name__ == "__main__":
    raise SystemExit(main())
