"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

The Chrome format (the ``chrome://tracing`` / Perfetto "JSON Array
Format") maps our model directly: spans become complete events (``"ph":
"X"``) with microsecond ``ts``/``dur``, instants become ``"i"`` events,
counter samples become ``"C"`` events. Each track is a ``tid`` under one
``pid`` with a ``thread_name`` metadata event, so Perfetto shows
``client-cpu`` / ``server-cpu`` / ``phases`` / ``tcp-*`` as parallel
swimlanes and nests same-track spans by time containment.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Tracer

_US = 1e6  # simulated seconds -> trace microseconds


def _track_ids(tracer: Tracer) -> dict[str, int]:
    # stable lane ordering: phases on top, then CPUs, then the rest
    preferred = ["phases", "client-cpu", "server-cpu"]
    tracks = tracer.tracks()
    ordered = [t for t in preferred if t in tracks]
    ordered += [t for t in tracks if t not in ordered]
    return {track: index + 1 for index, track in enumerate(ordered)}


def chrome_trace_events(tracer: Tracer, pid: int = 1) -> list[dict]:
    """The ``traceEvents`` list for one tracer's records."""
    tids = _track_ids(tracer)
    events: list[dict] = []
    for track, tid in tids.items():
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": tid},
        })
    for span in tracer.spans:
        events.append({
            "ph": "X", "pid": pid, "tid": tids[span.track],
            "name": span.name, "cat": span.cat or "span",
            "ts": span.start * _US, "dur": span.duration * _US,
            "args": dict(span.args),
        })
    for instant in tracer.instants:
        events.append({
            "ph": "i", "pid": pid, "tid": tids[instant.track],
            "name": instant.name, "cat": instant.cat or "event",
            "ts": instant.time * _US, "s": "t",
            "args": dict(instant.args),
        })
    for sample in tracer.counters:
        events.append({
            "ph": "C", "pid": pid, "tid": tids[sample.track],
            "name": sample.name, "ts": sample.time * _US,
            "args": {"value": sample.value},
        })
    events.sort(key=lambda e: (e.get("ts", -1.0), e["tid"]))
    return events


def chrome_trace(tracer: Tracer, pid: int = 1) -> dict:
    """Chrome "JSON Object Format": load in Perfetto or chrome://tracing."""
    return {
        "traceEvents": chrome_trace_events(tracer, pid),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "producer": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path, pid: int = 1) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, pid), indent=1) + "\n")
    return path


def jsonl_lines(tracer: Tracer) -> list[str]:
    """One JSON object per record — greppable, streamable, diffable."""
    lines = []
    for span in tracer.spans:
        lines.append(json.dumps({
            "type": "span", "track": span.track, "name": span.name,
            "cat": span.cat, "start": span.start, "end": span.end,
            "depth": span.depth, "args": dict(span.args),
        }, sort_keys=True))
    for instant in tracer.instants:
        lines.append(json.dumps({
            "type": "instant", "track": instant.track, "name": instant.name,
            "cat": instant.cat, "time": instant.time, "args": dict(instant.args),
        }, sort_keys=True))
    for sample in tracer.counters:
        lines.append(json.dumps({
            "type": "counter", "track": sample.track, "name": sample.name,
            "time": sample.time, "value": sample.value,
        }, sort_keys=True))
    return lines


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(jsonl_lines(tracer)) + "\n")
    return path


def write_metrics_json(metrics, path: str | Path) -> Path:
    """Dump a :class:`repro.obs.metrics.Metrics` snapshot as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics.snapshot(), indent=1, sort_keys=True) + "\n")
    return path
