"""Perf-style views over a trace: call tree, flamegraph text, breakdowns.

``perf report``'s two products are rebuilt from spans: the call tree
(who spent the time, nested) and the library distribution (Table 3's
libcrypto/libssl/kernel/... percentages). A third view answers the
question a constrained-scenario run raises — *why was this handshake
slow* — with the top spans by self-time, the retransmission count, and
the longest wire-silence stall.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

from repro.obs.tracer import Tracer

# cat value marking container spans (action batches, phase wrappers) whose
# time belongs to their children, exactly like a non-leaf perf frame
CONTAINER_CAT = "batch"


@dataclass
class SpanNode:
    """One node of the reconstructed call tree."""

    name: str
    cat: str
    start: float
    end: float
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def self_time(self) -> float:
        return self.duration - sum(c.duration for c in self.children)


def build_tree(spans) -> list[SpanNode]:
    """Containment tree of one track's spans (list of roots).

    Spans come from a per-track stack, so proper nesting is guaranteed:
    sorting by (start, -duration, depth) visits parents before children.
    """
    ordered = sorted(spans, key=lambda s: (s.start, -(s.end - s.start), s.depth))
    roots: list[SpanNode] = []
    stack: list[SpanNode] = []
    for span in ordered:
        node = SpanNode(span.name, span.cat, span.start, span.end)
        while stack and span.end > stack[-1].end + 1e-15:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def _render_node(node: SpanNode, total: float, depth: int, out: list[str]) -> None:
    share = 100.0 * node.duration / total if total > 0 else 0.0
    cat = f" [{node.cat}]" if node.cat and node.cat != CONTAINER_CAT else ""
    out.append(f"{share:5.1f}%  {node.duration * 1e3:9.3f} ms  "
               f"{'  ' * depth}{node.name}{cat}")
    for child in sorted(node.children, key=lambda n: -n.duration):
        _render_node(child, total, depth + 1, out)


def flame_text(tracer: Tracer, track: str) -> str:
    """An indented, percent-annotated call tree — flamegraph as text."""
    roots = build_tree(tracer.spans_on(track))
    if not roots:
        return f"track {track!r}: no spans"
    total = sum(r.duration for r in roots)
    out = [f"track {track!r} — {total * 1e3:.3f} ms total"]
    for root in sorted(roots, key=lambda n: n.start):
        _render_node(root, total, 0, out)
    return "\n".join(out)


def library_breakdown(tracer: Tracer, track: str) -> dict[str, float]:
    """Seconds per library on one CPU track, from leaf spans only.

    Container spans (``cat == CONTAINER_CAT``) wrap their children's time
    and are skipped, so this reproduces the cost model's attribution sums
    exactly — the invariant the Table 3 parity test pins down.
    """
    totals: dict[str, float] = {}
    for span in tracer.spans_on(track):
        if not span.cat or span.cat == CONTAINER_CAT:
            continue
        totals[span.cat] = totals.get(span.cat, 0.0) + span.duration
    return totals


def library_shares(tracer: Tracer, track: str) -> dict[str, float]:
    totals = library_breakdown(tracer, track)
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {lib: value / grand for lib, value in sorted(totals.items())}


# -- SVG flamegraph -----------------------------------------------------------

_SVG_WIDTH = 1200
_SVG_ROW = 18
_SVG_PAD = 10


def _flame_color(name: str) -> str:
    """Deterministic warm color per frame name (stable across runs)."""
    digest = hashlib.blake2b(name.encode(), digest_size=3).digest()
    return (f"rgb({205 + digest[0] % 50},"
            f"{digest[1] % 130},{digest[2] % 50})")


def _depth_of(node: SpanNode) -> int:
    return 1 + max((_depth_of(c) for c in node.children), default=0)


def flame_svg(tracer: Tracer, track: str, title: str | None = None) -> str:
    """A self-contained SVG flamegraph (icicle layout) of one track.

    Geometry and colors are pure functions of the spans, so two runs over
    the same trace produce byte-identical SVGs — diffable CI artifacts.
    """
    roots = sorted(build_tree(tracer.spans_on(track)), key=lambda n: n.start)
    total = sum(r.duration for r in roots)
    depth = max((_depth_of(r) for r in roots), default=0)
    height = 2 * _SVG_PAD + _SVG_ROW + max(depth, 1) * _SVG_ROW
    title = title or f"{track} — {total * 1e3:.3f} ms"
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SVG_WIDTH}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{_SVG_WIDTH}" height="{height}" fill="#f8f8f8"/>',
        f'<text x="{_SVG_PAD}" y="{_SVG_PAD + 11}">{escape(title)}</text>',
    ]
    usable = _SVG_WIDTH - 2 * _SVG_PAD
    scale = usable / total if total > 0 else 0.0
    origin = min((r.start for r in roots), default=0.0)

    def emit(node: SpanNode, level: int) -> None:
        x = _SVG_PAD + (node.start - origin) * scale
        width = max(node.duration * scale, 0.4)
        y = _SVG_PAD + _SVG_ROW + level * _SVG_ROW
        share = 100.0 * node.duration / total if total > 0 else 0.0
        label = f"{node.name} ({node.duration * 1e3:.3f} ms, {share:.1f}%)"
        out.append(
            f'<g><title>{escape(label)}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_SVG_ROW - 1}" fill="{_flame_color(node.name)}" '
            f'rx="1"/>')
        if width > 40:
            text = node.name
            limit = max(1, int(width / 6.5))
            if len(text) > limit:
                text = text[:limit - 1] + "…"
            out.append(f'<text x="{x + 3:.2f}" y="{y + 13}" '
                       f'fill="#111">{escape(text)}</text>')
        out.append("</g>")
        for child in sorted(node.children, key=lambda n: n.start):
            emit(child, level + 1)

    for root in roots:
        emit(root, 0)
    out.append("</svg>")
    return "\n".join(out) + "\n"


def write_flame_svg(tracer: Tracer, track: str, path: str | Path,
                    title: str | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(flame_svg(tracer, track, title=title))
    return path


# -- "why was this slow" ------------------------------------------------------

@dataclass(frozen=True)
class SlowSummary:
    duration: float                       # tracked wall time (seconds)
    top_spans: list[tuple[str, str, float]]   # (track, name, self seconds)
    retransmits: int
    recovery_episodes: int
    longest_stall: tuple[float, float]    # (start, length) of wire silence


def summarize_slow(tracer: Tracer, top: int = 5) -> SlowSummary:
    nodes: list[tuple[str, SpanNode]] = []

    def collect(track: str, node: SpanNode) -> None:
        nodes.append((track, node))
        for child in node.children:
            collect(track, child)

    for track in tracer.tracks():
        if track == "phases":
            continue  # the phase lane restates the total; rank real work
        for root in build_tree(tracer.spans_on(track)):
            collect(track, root)
    leaf_like = [(track, n) for track, n in nodes if n.cat != CONTAINER_CAT]
    ranked = sorted(leaf_like, key=lambda item: -item[1].self_time)[:top]
    top_spans = [(track, n.name, n.self_time) for track, n in ranked]

    retransmits = sum(1 for i in tracer.instants if i.name == "retransmit")
    recoveries = sum(1 for i in tracer.instants if i.name == "enter-recovery")

    wire_times = sorted(i.time for i in tracer.instants
                        if i.track.startswith("wire-"))
    longest = (0.0, 0.0)
    for before, after in zip(wire_times, wire_times[1:]):
        if after - before > longest[1]:
            longest = (before, after - before)

    start = min((s.start for s in tracer.spans), default=0.0)
    end = max((s.end for s in tracer.spans), default=0.0)
    return SlowSummary(duration=end - start, top_spans=top_spans,
                       retransmits=retransmits, recovery_episodes=recoveries,
                       longest_stall=longest)


def render_slow_summary(summary: SlowSummary) -> str:
    out = [f"why was this slow — {summary.duration * 1e3:.2f} ms traced",
           f"  retransmits: {summary.retransmits}   "
           f"recovery episodes: {summary.recovery_episodes}"]
    stall_at, stall_len = summary.longest_stall
    if stall_len > 0:
        out.append(f"  longest wire silence: {stall_len * 1e3:.2f} ms "
                   f"starting at {stall_at * 1e3:.2f} ms")
    out.append("  top spans by self time:")
    for track, name, seconds in summary.top_spans:
        out.append(f"    {seconds * 1e3:9.3f} ms  {track:<12} {name}")
    return "\n".join(out)
