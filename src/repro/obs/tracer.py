"""Span-based tracing on the simulated clock.

A span is a named interval ``[start, end]`` on a *track* (one per
simulated resource: ``client-cpu``, ``server-cpu``, ``phases``,
``tcp-client``, ...). Spans nest: :meth:`Tracer.begin` / :meth:`Tracer.end`
maintain a per-track stack, and :meth:`Tracer.span` records a complete
child of whatever is open on its track. Because the simulator computes
end times ahead of the event loop (a host's CPU busy-mark runs ahead of
``loop.now``), all timestamps are passed in explicitly rather than read
from a clock.

Instant events (retransmits, recovery entry) and counter samples (cwnd)
complete the model — the three shapes map 1:1 onto Chrome ``trace_event``
phases ``X`` / ``i`` / ``C`` (see :mod:`repro.obs.export`).

:data:`NULL_TRACER` is the disabled implementation: every method is a
no-op ``pass`` and ``enabled`` is ``False``, so instrumented hot paths can
skip even argument construction with ``if tracer.enabled:``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpanRecord:
    """One closed interval on a track, with a depth for cheap nesting."""

    track: str
    name: str
    start: float
    end: float
    cat: str = ""              # library attribution or event category
    depth: int = 0             # 0 = root of its track
    args: tuple = ()           # ((key, value), ...) extra context

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantRecord:
    track: str
    name: str
    time: float
    cat: str = ""
    args: tuple = ()


@dataclass(frozen=True)
class CounterSample:
    track: str
    name: str
    time: float
    value: float


@dataclass
class _OpenSpan:
    name: str
    start: float
    cat: str
    args: tuple


class Tracer:
    """Collects spans / instants / counter samples on the simulated clock."""

    enabled = True

    def __init__(self):
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.counters: list[CounterSample] = []
        self._stacks: dict[str, list[_OpenSpan]] = {}

    # -- spans -------------------------------------------------------------
    def span(self, track: str, name: str, start: float, end: float,
             cat: str = "", **args) -> SpanRecord:
        """Record a complete span, nested under the track's open span."""
        record = SpanRecord(track, name, start, end, cat,
                            depth=len(self._stacks.get(track, ())),
                            args=tuple(sorted(args.items())))
        self.spans.append(record)
        return record

    def begin(self, track: str, name: str, start: float, cat: str = "",
              **args) -> None:
        """Open a span; children recorded before :meth:`end` nest inside."""
        stack = self._stacks.setdefault(track, [])
        stack.append(_OpenSpan(name, start, cat, tuple(sorted(args.items()))))

    def end(self, track: str, end: float) -> SpanRecord:
        """Close the innermost open span on *track*."""
        stack = self._stacks.get(track)
        if not stack:
            raise RuntimeError(f"Tracer.end with no open span on track {track!r}")
        open_span = stack.pop()
        record = SpanRecord(track, open_span.name, open_span.start, end,
                            open_span.cat, depth=len(stack), args=open_span.args)
        self.spans.append(record)
        return record

    # -- point events ------------------------------------------------------
    def instant(self, track: str, name: str, time: float, cat: str = "",
                **args) -> None:
        self.instants.append(InstantRecord(track, name, time, cat,
                                           tuple(sorted(args.items()))))

    def counter(self, track: str, name: str, time: float, value: float) -> None:
        self.counters.append(CounterSample(track, name, time, value))

    # -- merging -----------------------------------------------------------
    def absorb(self, spans, instants, counters) -> None:
        """Append records collected by another tracer.

        The record dataclasses are immutable and picklable, so a worker
        process can trace locally and ship ``(tracer.spans,
        tracer.instants, tracer.counters)`` back for the parent to absorb
        — the parent's trace is then identical to having traced in-process.
        """
        self.spans.extend(spans)
        self.instants.extend(instants)
        self.counters.extend(counters)

    # -- queries -----------------------------------------------------------
    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.spans:
            seen.setdefault(record.track, None)
        for record in self.instants:
            seen.setdefault(record.track, None)
        for record in self.counters:
            seen.setdefault(record.track, None)
        return list(seen)

    def spans_on(self, track: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.track == track]

    def total_by_cat(self, track: str | None = None) -> dict[str, float]:
        """Sum span durations by category (library), deepest spans only.

        Only *leaf-depth* accounting would double-count here, so the sum is
        restricted to spans that contain no other span on the same track —
        the per-op spans the cost model priced — mirroring how ``perf``
        attributes samples to the innermost frame.
        """
        totals: dict[str, float] = {}
        for record in self.spans:
            if track is not None and record.track != track:
                continue
            if self._has_child(record):
                continue
            totals[record.cat] = totals.get(record.cat, 0.0) + record.duration
        return totals

    def _has_child(self, parent: SpanRecord) -> bool:
        for other in self.spans:
            if other is parent or other.track != parent.track:
                continue
            if other.depth > parent.depth and (
                    parent.start <= other.start and other.end <= parent.end):
                return True
        return False

    @property
    def empty(self) -> bool:
        return not (self.spans or self.instants or self.counters)


class NullTracer:
    """Disabled tracer: every method is a no-op, ``enabled`` is False.

    Hot paths guard with ``if tracer.enabled:`` so a disabled run does not
    even build the argument tuples; calling the methods anyway is still
    safe (and free of records).
    """

    enabled = False
    spans: tuple = ()
    instants: tuple = ()
    counters: tuple = ()
    empty = True

    def span(self, *args, **kwargs) -> None:
        pass

    def begin(self, *args, **kwargs) -> None:
        pass

    def end(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def absorb(self, spans, instants, counters) -> None:
        pass

    def tracks(self) -> list:
        return []

    def spans_on(self, track: str) -> list:
        return []

    def total_by_cat(self, track: str | None = None) -> dict:
        return {}


NULL_TRACER = NullTracer()
