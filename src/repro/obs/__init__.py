"""Observability: handshake tracing and perf-style profiling (`repro.obs`).

The paper's white-box analysis (§5.5, Table 3) comes from ``perf``
call-stack profiling of real handshakes; this package is the simulator's
equivalent. A :class:`Tracer` records nested spans on the **simulated
clock** — handshake phases, per-TLS-message work, per-crypto-op CPU time,
TCP events — and exports them as JSONL or Chrome ``trace_event`` JSON
(loadable in Perfetto / ``chrome://tracing``). A :class:`Metrics` registry
replaces ad-hoc stat dicts with named counters, gauges, and histograms.

Everything is zero-overhead when disabled: the default
:data:`NULL_TRACER` / :data:`NULL_METRICS` singletons answer ``enabled ==
False`` and hot paths guard on that flag, so a simulation run without
observability executes exactly the code it did before this package
existed (results are bit-identical; cache keys do not change).
"""

from repro.obs.metrics import NULL_METRICS, Counter, Gauge, Histogram, Metrics, NullMetrics
from repro.obs.profiler import SamplingProfiler
from repro.obs.recorder import NULL_RECORDER, FlightRecorder, NullRecorder, walltime
from repro.obs.sketch import QuantileSketch, ReservoirSample
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "InstantRecord",
    "CounterSample",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "ReservoirSample",
    "SamplingProfiler",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "walltime",
]
