"""Mergeable, constant-memory streaming instruments.

Two building blocks let :class:`repro.obs.metrics.Histogram` survive the
ROADMAP's ≥1M-handshake campaigns without retaining every sample:

- :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile sketch.
  A value ``v > 0`` lands in bucket ``ceil(log_γ(v))`` with
  ``γ = (1+α)/(1-α)``; reporting the bucket's log-midpoint bounds the
  *relative* error of any quantile by ``α`` (default 1%). Buckets are
  plain counts, so merging two sketches is bucket-wise addition —
  associative, commutative, and bit-identical however a campaign was
  sharded across workers.

- :class:`ReservoirSample` — a deterministic bottom-k sample of the raw
  values. Every observation is assigned a priority once, at observation
  time — the BLAKE2b hash of its (stream index, value) pair — and the
  reservoir keeps the k entries with the smallest priorities. Merging is
  "bottom-k of the multiset union", which is associative and independent
  of merge order or process boundaries; no ambient randomness is drawn
  (the DET002/DET003 contracts hold), yet the kept set behaves like a
  uniform sample for diagnostics. Identical (index, value) pairs from
  different streams collide on priority and tie-break on value, a
  documented bias that is irrelevant for the debugging peeks this backs.

Both carry their state as JSON-safe plain structures (:meth:`state` /
:meth:`from_state`) so metrics snapshots remain lossless across the
worker→leader shipping path and the on-disk result cache.
"""

from __future__ import annotations

import hashlib
import math
import struct

DEFAULT_RELATIVE_ACCURACY = 0.01
DEFAULT_RESERVOIR_K = 256

# Backstop against pathological value ranges: a DDSketch over doubles in
# (1e-12, 1e12) needs ~2800 buckets at alpha=0.01; campaigns use a few
# hundred. Exceeding the cap collapses the lowest buckets together
# (deterministically), trading accuracy at the extreme low tail for a
# hard memory bound.
DEFAULT_MAX_BUCKETS = 4096


def priority(index: int, value: float) -> int:
    """Deterministic 64-bit priority of one observation.

    Fixed at observation time and carried through every merge, so the
    bottom-k selection is a pure function of the observed multiset of
    (index, value) pairs — not of sharding, merge order, or
    ``PYTHONHASHSEED``.
    """
    packed = struct.pack("<qd", index, float(value))
    return int.from_bytes(hashlib.blake2b(packed, digest_size=8).digest(), "big")


class QuantileSketch:
    """Log-bucketed quantile sketch with a relative-error bound.

    ``quantile(q)`` returns an estimate ``e`` of the exact rank-``q``
    sample ``x`` with ``|e - x| <= relative_accuracy * |x|`` (zero is
    returned exactly). Memory is bounded by ``max_buckets`` bucket
    counts regardless of how many values are observed.
    """

    __slots__ = ("relative_accuracy", "gamma", "_log_gamma", "max_buckets",
                 "count", "buckets", "negative", "zeros")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
                 max_buckets: int = DEFAULT_MAX_BUCKETS):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy!r}")
        self.relative_accuracy = relative_accuracy
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self.max_buckets = max_buckets
        self.count = 0
        self.buckets: dict[int, int] = {}     # positive values
        self.negative: dict[int, int] = {}    # mirrored for v < 0
        self.zeros = 0

    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _estimate(self, index: int) -> float:
        # midpoint (in log space) of bucket (gamma^(i-1), gamma^i]:
        # max relative error (gamma-1)/(gamma+1) == relative_accuracy
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def add(self, value: float, count: int = 1) -> None:
        value = float(value)
        if value > 0.0:
            table, index = self.buckets, self._index(value)
        elif value < 0.0:
            table, index = self.negative, self._index(-value)
        else:
            self.zeros += count
            self.count += count
            return
        table[index] = table.get(index, 0) + count
        self.count += count
        if len(table) > self.max_buckets:
            self._collapse(table)

    def _collapse(self, table: dict[int, int]) -> None:
        # fold the lowest bucket into its neighbour above: the low tail
        # (smallest magnitudes) loses accuracy first, as in DDSketch
        while len(table) > self.max_buckets:
            low, second = sorted(table)[:2]
            table[second] += table.pop(low)

    def quantile(self, q: float) -> float:
        """Estimate the sample the exact histogram would report at ``q``.

        Uses the same nearest-rank rule as the exact list-backed path
        (``round(q * (count - 1))``), so sketch and exact answers are
        directly comparable.
        """
        if self.count == 0:
            return 0.0
        rank = min(self.count - 1, max(0, round(q * (self.count - 1))))
        remaining = rank + 1
        for index in sorted(self.negative, reverse=True):  # ascending value
            remaining -= self.negative[index]
            if remaining <= 0:
                return -self._estimate(index)
        remaining -= self.zeros
        if remaining <= 0:
            return 0.0
        for index in sorted(self.buckets):
            remaining -= self.buckets[index]
            if remaining <= 0:
                return self._estimate(index)
        # unreachable unless counts were tampered with; clamp to the top
        return self._estimate(max(self.buckets)) if self.buckets else 0.0

    def merge(self, other: "QuantileSketch") -> None:
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})")
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        for index, count in other.negative.items():
            self.negative[index] = self.negative.get(index, 0) + count
        self.zeros += other.zeros
        self.count += other.count
        if len(self.buckets) > self.max_buckets:
            self._collapse(self.buckets)
        if len(self.negative) > self.max_buckets:
            self._collapse(self.negative)

    def state(self) -> dict:
        """JSON-safe, deterministically ordered dump of the full state."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "zeros": self.zeros,
            "buckets": [[index, self.buckets[index]]
                        for index in sorted(self.buckets)],
            "negative": [[index, self.negative[index]]
                         for index in sorted(self.negative)],
        }

    @classmethod
    def from_state(cls, state: dict,
                   max_buckets: int = DEFAULT_MAX_BUCKETS) -> "QuantileSketch":
        sketch = cls(relative_accuracy=state["relative_accuracy"],
                     max_buckets=max_buckets)
        sketch.zeros = int(state.get("zeros", 0))
        sketch.buckets = {int(i): int(c) for i, c in state.get("buckets", ())}
        sketch.negative = {int(i): int(c) for i, c in state.get("negative", ())}
        sketch.count = (sketch.zeros + sum(sketch.buckets.values())
                        + sum(sketch.negative.values()))
        return sketch


class ReservoirSample:
    """Deterministic bottom-k sample of raw observed values."""

    __slots__ = ("k", "entries")

    def __init__(self, k: int = DEFAULT_RESERVOIR_K):
        if k < 1:
            raise ValueError(f"reservoir size must be >= 1, got {k!r}")
        self.k = k
        self.entries: list[tuple[int, float]] = []  # (priority, value), sorted

    def add(self, index: int, value: float) -> None:
        entry = (priority(index, float(value)), float(value))
        if len(self.entries) >= self.k and entry >= self.entries[-1]:
            return
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid] < entry:
                lo = mid + 1
            else:
                hi = mid
        self.entries.insert(lo, entry)
        if len(self.entries) > self.k:
            self.entries.pop()

    def merge(self, other: "ReservoirSample") -> None:
        merged = sorted(self.entries + other.entries)
        self.entries = merged[:self.k]

    def values(self) -> list[float]:
        """The kept raw values (selection order, not observation order)."""
        return [value for _, value in self.entries]

    def state(self) -> list[list]:
        return [[entry_priority, value] for entry_priority, value in self.entries]

    @classmethod
    def from_state(cls, state: list, k: int = DEFAULT_RESERVOIR_K) -> "ReservoirSample":
        reservoir = cls(k=k)
        entries = sorted((int(p), float(v)) for p, v in state)
        reservoir.entries = entries[:k]
        return reservoir
