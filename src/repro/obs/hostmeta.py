"""Uniform host metadata for every ``BENCH_*.json`` writer.

A benchmark number is only meaningful next to the machine and kernel
mode that produced it: a ``speedup_cold`` measured on one core (where
the executor's clamp makes the pool a serial fallback) says nothing
about the pool, and ``fast``-kernel wall times are incomparable to
``ref`` ones. Every benchmark writer embeds :func:`host_metadata` under
a ``"host"`` key, and ``pqtls-bench-check`` uses :func:`comparable` to
refuse apples-to-oranges diffs before any tolerance band is consulted.

This lives in ``repro.obs`` because describing the host is observation,
not simulation: DET005 confines ``os.cpu_count`` to the executor, and
the pragma below is the one sanctioned exception — the value is only
ever *reported*, never fed into simulated results. The ``PQTLS_KERNELS``
mode is read straight from the environment (same default as
``repro.crypto.kernels``) because the layer DAG forbids ``repro.obs``
from importing crypto.
"""

from __future__ import annotations

import os
import platform
import sys

# must match repro.crypto.kernels.DEFAULT (obs may not import crypto)
_KERNELS_ENV = "PQTLS_KERNELS"
_KERNELS_DEFAULT = "fast"

# metadata keys that must match for two benchmark runs to be comparable
FINGERPRINT_KEYS = ("kernels", "machine", "python_major")

# keys whose mismatch invalidates only CPU-topology-sensitive metrics
# (parallel speedups), not the whole file
CPU_KEYS = ("cpu_count",)


def serial_fallback_reason(jobs: int, cpu_count: int | None) -> str | None:
    """Why a campaign bench fell back to the serial path, or None."""
    cpus = cpu_count or 1
    if jobs <= 1:
        return "jobs<=1 requested"
    if cpus < 2:
        return f"host has {cpus} cpu (jobs clamped to core count)"
    return None


def host_metadata() -> dict:
    """The uniform ``"host"`` block: interpreter, machine, kernel mode."""
    version = platform.python_version()
    return {
        "python": version,
        "python_major": version.rsplit(".", 1)[0],       # "3.11"
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),  # pqtls: allow[DET005] — reported, never
        # fed into simulation; bench-check needs it to gate speedup diffs
        "kernels": os.environ.get(_KERNELS_ENV, _KERNELS_DEFAULT),
    }


# /proc and the kilobyte ru_maxrss convention below are Linux-specific;
# on other hosts the probes return None and consumers (flight-recorder
# heartbeats, bench-check) skip the metric instead of raising.
_LINUX = sys.platform.startswith("linux")


def rss_bytes() -> int | None:
    """Current resident set size of this process, or None off-Linux.

    Read from ``/proc/self/statm`` (field 2, pages). Used by the flight
    recorder's heartbeat and the traffic benchmark to show that
    streaming evaluation holds memory flat; purely observational.
    """
    if not _LINUX:
        return None
    try:
        with open("/proc/self/statm") as statm:
            pages = int(statm.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return None


def peak_rss_bytes(include_children: bool = False) -> int | None:
    """High-water resident set size (ru_maxrss), or None off-Linux.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS and absent on
    Windows; rather than guess per-platform scale factors we only report
    on Linux, matching :func:`rss_bytes`.
    """
    if not _LINUX:
        return None
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return peak * 1024  # Linux reports kilobytes


def comparable(baseline_host: dict, fresh_host: dict) -> list[str]:
    """Fingerprint keys on which two hosts differ (empty = comparable).

    Benchmarks written before the ``host`` block existed return every
    fingerprint key as missing-and-different, so bench-check refuses
    them too — regenerate the baseline rather than compare blind.
    """
    return [key for key in FINGERPRINT_KEYS
            if baseline_host.get(key) != fresh_host.get(key)]


def cpu_mismatch(baseline_host: dict, fresh_host: dict) -> bool:
    """True when CPU topology differs: parallel speedups not comparable."""
    return any(baseline_host.get(key) != fresh_host.get(key)
               for key in CPU_KEYS)
