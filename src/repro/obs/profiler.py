"""Wall-clock sampling profiler for the harness itself.

Everything else in ``repro.obs`` observes the *simulated* clock; this
module observes the *real* one — where the Python process spends its CPU
time while recording kernels or running campaigns. It answers the
question the kernel-speed work keeps raising (which of hqc128,
dilithium2 sign, gf256_poly_mul is actually burning host CPU, and in
which frames) without ``perf`` or any third-party profiler.

A background thread wakes every ``interval`` seconds, grabs the profiled
thread's current Python frame via ``sys._current_frames()``, and records
the stack as a tuple of ``module:function`` frames. Aggregated stacks
are attributed to a coarse category (crypto kernel / crypto / pqc / tls
/ netsim / harness) by their innermost ``repro`` frame and can be
exported through the existing flame / Chrome-trace views: samples are
laid out on a synthetic ``host-cpu`` track where **width is samples, not
wall-clock order** — the usual flamegraph convention.

The sampler is statistical: costs below ``interval`` resolution are
noise, and the sampling thread itself is excluded. This is the only
module in ``repro.obs`` allowed to import ``threading`` (the layer
checker carves out a named exemption): the thread never touches
simulation state, it only reads interpreter frames.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass

from repro.obs.tracer import Tracer

DEFAULT_INTERVAL = 0.002  # 2 ms ≈ 500 Hz: cheap, resolves ms-scale kernels

# innermost-frame module prefix -> attribution category, first match wins
CATEGORY_PREFIXES: tuple[tuple[str, str], ...] = (
    ("repro.crypto.kernels", "kernel"),
    ("repro.crypto", "crypto"),
    ("repro.pqc", "pqc"),
    ("repro.tls", "tls"),
    ("repro.faults", "faults"),
    ("repro.netsim", "netsim"),
    ("repro.cache", "cache"),
    ("repro.obs", "obs"),
    ("repro", "harness"),
)

# algorithm families that refine the "pqc" and "kernel" categories: a
# frame in repro.pqc.hqc.* is attributed "pqc/hqc", one in
# repro.crypto.kernels.dilithium "kernel/dilithium" — so hotspot reports
# and flame SVGs name the algorithm, not just the layer
ALGORITHM_FAMILIES = ("kyber", "dilithium", "hqc", "sphincs", "falcon", "bike")

_FAMILY_ROOTS = {"kernel": "repro.crypto.kernels", "pqc": "repro.pqc"}


def categorize(module: str) -> str:
    """Cost category of one frame's module (``pqc/hqc``-style for crypto)."""
    for prefix, category in CATEGORY_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            root = _FAMILY_ROOTS.get(category)
            if root is not None and module.startswith(root + "."):
                family = module[len(root) + 1:].split(".", 1)[0]
                if family in ALGORITHM_FAMILIES:
                    return f"{category}/{family}"
            return category
    return "other"


def stack_category(stack: tuple[str, ...]) -> str:
    """Attribution of a whole sample: its innermost ``repro`` frame."""
    for frame in reversed(stack):
        module = frame.split(":", 1)[0]
        category = categorize(module)
        if category != "other":
            return category
    return "other"


@dataclass(frozen=True)
class Hotspot:
    """One frame's share of the profile."""

    frame: str          # "module:function"
    category: str
    self_seconds: float
    total_seconds: float


class SamplingProfiler:
    """Samples the calling thread's Python stack on the host clock.

    Use as a context manager around the work to profile::

        with SamplingProfiler() as profiler:
            run_campaign(...)
        print(profiler.report())

    ``stacks`` maps root-first ``module:function`` tuples to sample
    counts; one sample stands for ``interval`` seconds of host CPU.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = interval
        self.stacks: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self.wall_seconds = 0.0
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="pqtls-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.wall_seconds += time.perf_counter() - self._started_at

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack = self._extract(frame)
            if stack:
                self.stacks[stack] = self.stacks.get(stack, 0) + 1
            self.sample_count += 1

    @staticmethod
    def _extract(frame) -> tuple[str, ...]:
        frames: list[str] = []
        while frame is not None:
            module = frame.f_globals.get("__name__", "?")
            frames.append(f"{module}:{frame.f_code.co_name}")
            frame = frame.f_back
        frames.reverse()  # root first
        # trim harness entry noise (pytest, runpy, CLI glue) above the
        # first repro frame; keep everything if the stack never enters repro
        for index, entry in enumerate(frames):
            if entry.startswith("repro"):
                return tuple(frames[index:])
        return tuple(frames)

    # -- aggregation -------------------------------------------------------
    @property
    def sampled_seconds(self) -> float:
        return self.sample_count * self.interval

    def category_seconds(self) -> dict[str, float]:
        """Host seconds per attribution category (kernel/pqc/tls/...)."""
        totals: dict[str, float] = {}
        for stack, count in self.stacks.items():
            category = stack_category(stack)
            totals[category] = totals.get(category, 0.0) + count * self.interval
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def hotspots(self, top: int = 10) -> list[Hotspot]:
        """Frames ranked by self time (samples where they are innermost)."""
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for stack, count in self.stacks.items():
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for entry in set(stack):
                total_counts[entry] = total_counts.get(entry, 0) + count
        ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Hotspot(frame=entry,
                    category=categorize(entry.split(":", 1)[0]),
                    self_seconds=count * self.interval,
                    total_seconds=total_counts[entry] * self.interval)
            for entry, count in ranked[:top]
        ]

    # -- export ------------------------------------------------------------
    def to_tracer(self, track: str = "host-cpu") -> Tracer:
        """Lay the aggregated stacks out as spans on one track.

        Sibling frames are merged into a flame trie first, so the result
        reads like a flamegraph in every existing view (``flame_text``,
        Chrome trace, SVG): span width is sampled host seconds, start
        offsets are synthetic.
        """
        trie: dict = {}
        for stack, count in self.stacks.items():
            node = trie
            for entry in stack:
                child = node.setdefault(entry, {"#": 0, ">": {}})
                child["#"] += count
                node = child[">"]

        tracer = Tracer()

        def emit(children: dict, offset: float) -> float:
            for entry in sorted(children):
                node = children[entry]
                width = node["#"] * self.interval
                module = entry.split(":", 1)[0]
                tracer.begin(track, entry, offset, cat=categorize(module))
                emit(node[">"], offset)
                tracer.end(track, offset + width)
                offset += width
            return offset

        emit(trie, 0.0)
        return tracer

    def report(self, top: int = 10) -> str:
        """Human-readable summary: categories, then top frames by self time."""
        lines = [f"host-cpu profile — {self.sample_count} samples "
                 f"@ {self.interval * 1e3:.1f} ms over {self.wall_seconds:.2f} s"]
        sampled = self.sampled_seconds
        lines.append("  by category:")
        for category, seconds in self.category_seconds().items():
            share = 100.0 * seconds / sampled if sampled else 0.0
            lines.append(f"    {share:5.1f}%  {seconds:8.3f} s  {category}")
        lines.append(f"  top {top} frames by self time:")
        for spot in self.hotspots(top):
            share = 100.0 * spot.self_seconds / sampled if sampled else 0.0
            lines.append(f"    {share:5.1f}%  {spot.self_seconds:8.3f} s  "
                         f"{spot.frame} [{spot.category}]")
        return "\n".join(lines)
