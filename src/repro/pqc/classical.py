"""Classical algorithms behind the KEM / signature interfaces.

(EC)DH maps onto the KEM shape exactly the way TLS 1.3 uses key shares:
"encapsulation" is generating the server's ephemeral share and deriving
the shared x-coordinate. RSA and ECDSA back the paper's pre-quantum
signature rows and the classical halves of the composite hybrids.
"""

from __future__ import annotations

from repro.crypto import rsa as rsa_mod
from repro.crypto.drbg import Drbg
from repro.crypto.ec import curves as ec_curves
from repro.crypto.ec import ecdsa
from repro.crypto.ec.x25519 import x25519, x25519_base
from repro.pqc.kem import Kem
from repro.pqc.sig import SignatureScheme


class X25519Kem(Kem):
    """X25519 ECDH: the paper's classical state of the art."""

    name = "x25519"
    nist_level = 1
    public_key_bytes = 32
    ciphertext_bytes = 32
    shared_secret_bytes = 32

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        secret = drbg.random_bytes(32)
        return x25519_base(secret), secret

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        ephemeral = drbg.random_bytes(32)
        shared = x25519(ephemeral, public_key)
        if shared == b"\x00" * 32:
            raise ValueError("x25519: low-order public key")
        return x25519_base(ephemeral), shared

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        shared = x25519(secret_key, ciphertext)
        # RFC 7748 §6.1 all-zero output check: the abort is protocol-visible
        # by design (contributory-behaviour guard, not a secret branch)
        if shared == b"\x00" * 32:  # pqtls: allow[CT001]
            raise ValueError("x25519: low-order ciphertext")
        return shared


class EcdhKem(Kem):
    """NIST-curve ECDH (uncompressed points, x-coordinate secret)."""

    def __init__(self, curve: ec_curves.Curve, *, nist_level: int):
        self._curve = curve
        self.name = curve.name.replace("P-", "p").replace("-", "")
        self.nist_level = nist_level
        point_len = 1 + 2 * curve.coord_bytes
        self.public_key_bytes = point_len
        self.ciphertext_bytes = point_len
        self.shared_secret_bytes = curve.coord_bytes

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        private = drbg.randint(1, self._curve.n - 1)
        public = self._curve.encode_point(self._curve.scalar_mult(private))
        return public, private.to_bytes(self._curve.coord_bytes, "big")

    def _derive(self, scalar: int, peer: bytes) -> bytes:
        point = self._curve.decode_point(peer)
        shared = self._curve.scalar_mult(scalar, point)
        # point-at-infinity rejection (SP 800-56A §5.7.1.2); the abort is
        # protocol-visible by design
        if shared.is_infinity:  # pqtls: allow[CT001]
            raise ValueError(f"{self.name}: degenerate shared point")
        return shared.x.to_bytes(self._curve.coord_bytes, "big")

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        ephemeral = drbg.randint(1, self._curve.n - 1)
        ciphertext = self._curve.encode_point(self._curve.scalar_mult(ephemeral))
        return ciphertext, self._derive(ephemeral, public_key)

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        return self._derive(int.from_bytes(secret_key, "big"), ciphertext)


class RsaSignature(SignatureScheme):
    """RSA with the paper's ``rsa:<bits>`` naming; RSASSA-PSS signatures.

    rsa:1024 and rsa:2048 are the sub-level-one baselines (NIST SP 800-57
    rates 2048-bit RSA at a 112-bit symmetric equivalent, as the paper
    notes); 3072/4096 sit at level 1.
    """

    def __init__(self, bits: int, *, nist_level: int, sub_level_one: bool = False):
        self.bits = bits
        self.name = f"rsa:{bits}"
        self.nist_level = nist_level
        self.sub_level_one = sub_level_one
        self.public_key_bytes = 2 + bits // 8 + 4  # our compact encoding
        self.signature_bytes = bits // 8

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        key = rsa_mod.generate_keypair(self.bits, drbg)
        secret = b"|".join(
            str(v).encode() for v in (key.n, key.e, key.d, key.p, key.q)
        )
        return key.public.encode(), secret

    @staticmethod
    def _parse_sk(secret_key: bytes) -> rsa_mod.RsaPrivateKey:
        n, e, d, p, q = (int(part) for part in secret_key.split(b"|"))
        return rsa_mod.RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)

    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        return rsa_mod.sign_pss(self._parse_sk(secret_key), message, drbg)

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        try:
            pub = rsa_mod.RsaPublicKey.decode(public_key)
        except ValueError:
            return False
        return rsa_mod.verify_pss(pub, message, signature)


class EcdsaSignature(SignatureScheme):
    """ECDSA over a NIST curve (classical halves of composite hybrids)."""

    def __init__(self, curve: ec_curves.Curve, *, nist_level: int):
        self._curve = curve
        self.name = curve.name.replace("P-", "p").replace("-", "") + "ecdsa"
        self.nist_level = nist_level
        self.public_key_bytes = 1 + 2 * curve.coord_bytes
        self.signature_bytes = 2 * curve.coord_bytes

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        private, public = ecdsa.generate_keypair(self._curve, drbg)
        return public, private.to_bytes(self._curve.coord_bytes, "big")

    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        return ecdsa.sign(self._curve, int.from_bytes(secret_key, "big"), message)

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        return ecdsa.verify(self._curve, public_key, message, signature)


X25519 = X25519Kem()
P256_KEM = EcdhKem(ec_curves.P256, nist_level=1)
P384_KEM = EcdhKem(ec_curves.P384, nist_level=3)
P521_KEM = EcdhKem(ec_curves.P521, nist_level=5)

RSA1024 = RsaSignature(1024, nist_level=1, sub_level_one=True)
RSA2048 = RsaSignature(2048, nist_level=1, sub_level_one=True)
RSA3072 = RsaSignature(3072, nist_level=1)
RSA4096 = RsaSignature(4096, nist_level=1)

P256_ECDSA = EcdsaSignature(ec_curves.P256, nist_level=1)
P384_ECDSA = EcdsaSignature(ec_curves.P384, nist_level=3)
P521_ECDSA = EcdsaSignature(ec_curves.P521, nist_level=5)
