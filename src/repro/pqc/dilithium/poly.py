"""Polynomial arithmetic for Dilithium: R_q = Z_8380417[X]/(X^256 + 1).

The Dilithium NTT is complete (8 layers, 256-point); rounding helpers
(Power2Round, Decompose, hints) follow the round-3 specification.

``PQTLS_KERNELS=fast`` (default) swaps the transform/arithmetic/packing
entry points for the lane-packed twins in
``repro.crypto.kernels.dilithium``; call through the module so rebinding
takes effect.
"""

from __future__ import annotations

import sys

Q = 8380417
N = 256
D = 13  # dropped bits in Power2Round
_N_INV = pow(N, Q - 2, Q)


def _bitrev8(value: int) -> int:
    result = 0
    for _ in range(8):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


ZETAS = [pow(1753, _bitrev8(i), Q) for i in range(256)]


def ntt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    k = 0
    length = 128
    while length >= 1:
        for start in range(0, N, 2 * length):
            k += 1
            zeta = ZETAS[k]
            for j in range(start, start + length):
                t = zeta * f[j + length] % Q
                f[j + length] = (f[j] - t) % Q
                f[j] = (f[j] + t) % Q
        length //= 2
    return f


def intt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    k = 256
    length = 1
    while length < N:
        for start in range(0, N, 2 * length):
            k -= 1
            zeta = ZETAS[k]
            for j in range(start, start + length):
                t = f[j]
                f[j] = (t + f[j + length]) % Q
                f[j + length] = zeta * (f[j + length] - t) % Q
        length *= 2
    return [x * _N_INV % Q for x in f]


def pointwise(a: list[int], b: list[int]) -> list[int]:
    return [x * y % Q for x, y in zip(a, b)]


def add(a: list[int], b: list[int]) -> list[int]:
    return [(x + y) % Q for x, y in zip(a, b)]


def sub(a: list[int], b: list[int]) -> list[int]:
    return [(x - y) % Q for x, y in zip(a, b)]


def scale(a: list[int], c: int) -> list[int]:
    return [x * c % Q for x in a]


def centered(value: int, modulus: int = Q) -> int:
    """Representative in (-modulus/2, modulus/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def inf_norm(coeffs: list[int]) -> int:
    return max(abs(centered(c)) for c in coeffs)


# -- rounding -------------------------------------------------------------

def power2round(r: int) -> tuple[int, int]:
    """(r1, r0) with r = r1*2^D + r0, r0 in (-2^(D-1), 2^(D-1)]."""
    r %= Q
    r0 = r % (1 << D)
    if r0 > (1 << (D - 1)):
        r0 -= 1 << D
    return (r - r0) >> D, r0


def decompose(r: int, alpha: int) -> tuple[int, int]:
    """(r1, r0) with r = r1*alpha + r0 and the q-1 wraparound fix."""
    r %= Q
    r0 = r % alpha
    if r0 > alpha // 2:
        r0 -= alpha
    if r - r0 == Q - 1:
        return 0, r0 - 1
    return (r - r0) // alpha, r0


def highbits(r: int, alpha: int) -> int:
    return decompose(r, alpha)[0]


def lowbits(r: int, alpha: int) -> int:
    return decompose(r, alpha)[1]


def make_hint(z: int, r: int, alpha: int) -> int:
    """1 iff adding z changes the high bits of r."""
    return int(highbits(r, alpha) != highbits((r + z) % Q, alpha))


def use_hint(hint: int, r: int, alpha: int) -> int:
    m = (Q - 1) // alpha
    r1, r0 = decompose(r, alpha)
    if hint:
        if r0 > 0:
            return (r1 + 1) % m
        return (r1 - 1) % m
    return r1


# -- bit packing (shared with Kyber's convention) ---------------------------

def pack_bits(values: list[int], bits: int) -> bytes:
    acc = 0
    acc_bits = 0
    out = bytearray()
    mask = (1 << bits) - 1
    for v in values:
        acc |= (v & mask) << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_bits(data: bytes, bits: int, count: int = N) -> list[int]:
    acc = 0
    acc_bits = 0
    out = []
    it = iter(data)
    mask = (1 << bits) - 1
    for _ in range(count):
        while acc_bits < bits:
            acc |= next(it) << acc_bits
            acc_bits += 8
        out.append(acc & mask)
        acc >>= bits
        acc_bits -= bits
    return out


# -- polynomial-vector entry points ----------------------------------------
#
# The unit of work in keygen/sign/verify is a whole vector of polynomials
# (length k or l); these reference twins are the scalar loops spelled
# out, and PQTLS_KERNELS=fast swaps them for the batched numpy kernels.

def ntt_vec(rows: list[list[int]]) -> list[list[int]]:
    return [ntt(row) for row in rows]


def intt_vec(rows: list[list[int]]) -> list[list[int]]:
    return [intt(row) for row in rows]


def pointwise_each(one: list[int], rows: list[list[int]]) -> list[list[int]]:
    return [pointwise(one, row) for row in rows]


def matvec_pointwise(mat, vec) -> list[list[int]]:
    """rows[i] = sum_j mat[i][j] * vec[j] (pointwise, mod q), NTT domain."""
    out = []
    for row in mat:
        acc = [0] * N
        for entry, v in zip(row, vec):
            acc = add(acc, pointwise(entry, v))
        out.append(acc)
    return out


def add_vec(a, b) -> list[list[int]]:
    return [add(x, y) for x, y in zip(a, b)]


def sub_vec(a, b) -> list[list[int]]:
    return [sub(x, y) for x, y in zip(a, b)]


def neg_vec(rows) -> list[list[int]]:
    return [[(-c) % Q for c in row] for row in rows]


def inf_norm_vec(rows) -> int:
    return max(inf_norm(row) for row in rows)


def highbits_vec(rows, alpha: int) -> list[list[int]]:
    return [[highbits(c, alpha) for c in row] for row in rows]


def lowbits_vec(rows, alpha: int) -> list[list[int]]:
    return [[lowbits(c, alpha) for c in row] for row in rows]


def make_hint_vec(z_rows, r_rows, alpha: int) -> list[list[int]]:
    return [
        [make_hint(z, r, alpha) for z, r in zip(z_row, r_row)]
        for z_row, r_row in zip(z_rows, r_rows)
    ]


def use_hint_vec(hints, rows, alpha: int) -> list[list[int]]:
    return [
        [use_hint(h, r, alpha) for h, r in zip(h_row, r_row)]
        for h_row, r_row in zip(hints, rows)
    ]


def power2round_vec(rows) -> tuple[list[list[int]], list[list[int]]]:
    hi_rows, lo_rows = [], []
    for row in rows:
        pairs = [power2round(c) for c in row]
        hi_rows.append([hi for hi, _ in pairs])
        lo_rows.append([lo for _, lo in pairs])
    return hi_rows, lo_rows


def rej_uniform(data: bytes, limit: int) -> tuple[list[int], int]:
    """Uniform-mod-q rejection sampling over 3-byte chunks (top bit cleared).

    Returns (accepted values, bytes consumed); consumption stops exactly
    after the chunk yielding the ``limit``-th acceptance.
    """
    out: list[int] = []
    offset = 0
    while len(out) < limit and offset + 3 <= len(data):
        t = (data[offset]
             | (data[offset + 1] << 8)
             | ((data[offset + 2] & 0x7F) << 16))
        offset += 3
        if t < Q:
            out.append(t)
    return out, offset


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import dilithium as _fast  # noqa: E402

_SELF = sys.modules[__name__]
for _name in ("ntt", "intt", "pointwise", "add", "sub",
              "pack_bits", "unpack_bits",
              "ntt_vec", "intt_vec", "pointwise_each", "matvec_pointwise",
              "add_vec", "sub_vec", "neg_vec", "inf_norm_vec",
              "highbits_vec", "lowbits_vec", "make_hint_vec", "use_hint_vec",
              "power2round_vec", "rej_uniform"):
    _kernels.bind(_SELF, _name,
                  ref=getattr(_SELF, _name), fast=getattr(_fast, _name))
