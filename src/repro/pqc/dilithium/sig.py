"""Dilithium signature scheme (round-3 parameter sets 2/3/5 and AES variants).

Fiat–Shamir with aborts over module lattices. The wire sizes are
spec-exact (pk 1312/1952/2592 B, sig 2420/3293/4595 B) — these sizes are
what drives the paper's Table 2b data volumes and the Table 4 CWND
overflows. The AES variants replace the SHAKE-based expansion XOFs with
AES-256-CTR, mirroring the ``dilithium*_aes`` rows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import aes as _aes
from repro.crypto.drbg import Drbg
from repro.pqc.dilithium import poly
from repro.pqc.dilithium.poly import N, Q
from repro.pqc.sig import SignatureScheme


@dataclass(frozen=True)
class _Params:
    k: int
    l: int
    eta: int
    tau: int
    beta: int
    gamma1: int
    gamma2: int
    omega: int


_PARAM_SETS = {
    2: _Params(k=4, l=4, eta=2, tau=39, beta=78, gamma1=1 << 17,
               gamma2=(Q - 1) // 88, omega=80),
    3: _Params(k=6, l=5, eta=4, tau=49, beta=196, gamma1=1 << 19,
               gamma2=(Q - 1) // 32, omega=55),
    5: _Params(k=8, l=7, eta=2, tau=60, beta=120, gamma1=1 << 19,
               gamma2=(Q - 1) // 32, omega=75),
}

_MAX_SIGN_ITERS = 1000


def _shake256(data: bytes, outlen: int) -> bytes:
    return hashlib.shake_256(data).digest(outlen)


class _Xof:
    """SHAKE-based expansion (standard variants)."""

    @staticmethod
    def expand_a(rho: bytes, i: int, j: int, outlen: int) -> bytes:
        return hashlib.shake_128(rho + bytes([j, i])).digest(outlen)

    @staticmethod
    def expand_s(rho_prime: bytes, nonce: int, outlen: int) -> bytes:
        return _shake256(rho_prime + nonce.to_bytes(2, "little"), outlen)

    @staticmethod
    def expand_mask(rho_prime: bytes, nonce: int, outlen: int) -> bytes:
        return _shake256(rho_prime + nonce.to_bytes(2, "little"), outlen)


class _XofAes:
    """AES-256-CTR expansion (the *_aes variants)."""

    @staticmethod
    def expand_a(rho: bytes, i: int, j: int, outlen: int) -> bytes:
        nonce = bytes([j, i]) + b"\x00" * 10
        # module-attr call so the cached-cipher fast twin can rebind
        return _aes.aes_ctr_keystream(rho, nonce, outlen)

    @staticmethod
    def expand_s(rho_prime: bytes, nonce: int, outlen: int) -> bytes:
        iv = nonce.to_bytes(2, "little") + b"\x00" * 10
        return _aes.aes_ctr_keystream(rho_prime[:32], iv, outlen)

    @staticmethod
    def expand_mask(rho_prime: bytes, nonce: int, outlen: int) -> bytes:
        iv = nonce.to_bytes(2, "little") + b"\x00" * 10
        return _aes.aes_ctr_keystream(rho_prime[:32], iv, outlen)


class DilithiumSignature(SignatureScheme):
    """One Dilithium parameter set behind the generic signature interface."""

    def __init__(self, level: int, *, aes: bool = False):
        p = _PARAM_SETS[level]
        self._p = p
        self._xof = _XofAes() if aes else _Xof()
        self.name = f"dilithium{level}_aes" if aes else f"dilithium{level}"
        self.nist_level = level
        self._zbits = 18 if p.gamma1 == (1 << 17) else 20
        self._etabits = 3 if p.eta == 2 else 4
        self._w1bits = 6 if p.gamma2 == (Q - 1) // 88 else 4
        self.public_key_bytes = 32 + 320 * p.k
        self.signature_bytes = 32 + (N * self._zbits // 8) * p.l + p.omega + p.k

    # -- sampling -----------------------------------------------------------
    def _expand_a(self, rho: bytes) -> list[list[list[int]]]:
        matrix = []
        for i in range(self._p.k):
            row = []
            for j in range(self._p.l):
                # Rejection-sample < q from 3-byte chunks (top bit cleared).
                # Re-expanding a longer stream replays the same prefix
                # (XOF), so chunked parsing is position-exact.
                coeffs: list[int] = []
                need = 3 * 340
                stream = self._xof.expand_a(rho, i, j, need)
                offset = 0
                while len(coeffs) < N:
                    if offset + 3 > len(stream):
                        need += 3 * 170
                        stream = self._xof.expand_a(rho, i, j, need)
                    got, used = poly.rej_uniform(stream[offset:], N - len(coeffs))
                    coeffs.extend(got)
                    offset += used
                row.append(coeffs)
            matrix.append(row)
        return matrix

    def _sample_eta(self, rho_prime: bytes, nonce: int) -> list[int]:
        coeffs: list[int] = []
        need = 192
        stream = self._xof.expand_s(rho_prime, nonce, need)
        offset = 0
        while len(coeffs) < N:
            if offset >= len(stream):
                need += 64
                stream = self._xof.expand_s(rho_prime, nonce, need)
            byte = stream[offset]
            offset += 1
            for nibble in (byte & 0x0F, byte >> 4):
                if len(coeffs) >= N:
                    break
                if self._p.eta == 2 and nibble < 15:
                    coeffs.append((2 - nibble % 5) % Q)
                elif self._p.eta == 4 and nibble < 9:
                    coeffs.append((4 - nibble) % Q)
        return coeffs

    def _sample_mask_poly(self, rho_prime: bytes, nonce: int) -> list[int]:
        bits = self._zbits
        data = self._xof.expand_mask(rho_prime, nonce, N * bits // 8)
        raw = poly.unpack_bits(data, bits)
        gamma1 = self._p.gamma1
        return [(gamma1 - t) % Q for t in raw]

    def _sample_in_ball(self, c_tilde: bytes) -> list[int]:
        # c_tilde is the published challenge hash (part of the signature);
        # the rejection sampling below is over public data
        stream = _shake256(c_tilde, 32 + self._p.tau * 4)
        signs = int.from_bytes(stream[:8], "little")
        c = [0] * N
        offset = 8
        for i in range(N - self._p.tau, N):
            while True:
                if offset >= len(stream):
                    stream += _shake256(c_tilde + b"x", 64)
                j = stream[offset]
                offset += 1
                if j <= i:
                    break
            c[i] = c[j]
            c[j] = (1 if signs & 1 == 0 else Q - 1)
            signs >>= 1
        return c

    # -- hint packing (spec encoding: positions + per-row cumulative) -------
    def _pack_hint(self, hints: list[list[int]]) -> bytes:
        out = bytearray(self._p.omega + self._p.k)
        index = 0
        for row, h in enumerate(hints):
            for pos, bit in enumerate(h):
                if bit:
                    out[index] = pos
                    index += 1
            out[self._p.omega + row] = index
        return bytes(out)

    def _unpack_hint(self, data: bytes) -> list[list[int]] | None:
        omega, k = self._p.omega, self._p.k
        hints = [[0] * N for _ in range(k)]
        index = 0
        for row in range(k):
            end = data[omega + row]
            if end < index or end > omega:
                return None
            prev = -1
            while index < end:
                pos = data[index]
                if pos <= prev:  # positions must be strictly increasing
                    return None
                prev = pos
                hints[row][pos] = 1
                index += 1
        if any(data[i] for i in range(index, omega)):  # zero padding enforced
            return None
        return hints

    # -- key generation -------------------------------------------------------
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        p = self._p
        zeta = drbg.random_bytes(32)
        seed = _shake256(zeta, 128)
        rho, rho_prime, key = seed[:32], seed[32:96], seed[96:]
        a_hat = self._expand_a(rho)
        s1 = [self._sample_eta(rho_prime, nonce) for nonce in range(p.l)]
        s2 = [self._sample_eta(rho_prime, nonce) for nonce in range(p.l, p.l + p.k)]
        s1_hat = poly.ntt_vec(s1)
        t = poly.add_vec(poly.intt_vec(poly.matvec_pointwise(a_hat, s1_hat)), s2)
        t1_rows, t0_rows = poly.power2round_vec(t)
        pk = rho + b"".join(poly.pack_bits(row, 10) for row in t1_rows)
        tr = _shake256(pk, 64)
        sk = (
            rho + key + tr
            + b"".join(poly.pack_bits([(p.eta - poly.centered(c)) for c in row],
                                      self._etabits) for row in s1)
            + b"".join(poly.pack_bits([(p.eta - poly.centered(c)) for c in row],
                                      self._etabits) for row in s2)
            + b"".join(poly.pack_bits([(1 << (poly.D - 1)) - lo for lo in row], 13)
                       for row in t0_rows)
        )
        return pk, sk

    def _parse_sk(self, sk: bytes):
        p = self._p
        rho, key, tr = sk[:32], sk[32:64], sk[64:128]
        off = 128
        eta_bytes = N * self._etabits // 8
        s1 = []
        for _ in range(p.l):
            raw = poly.unpack_bits(sk[off: off + eta_bytes], self._etabits)
            s1.append([(p.eta - v) % Q for v in raw])
            off += eta_bytes
        s2 = []
        for _ in range(p.k):
            raw = poly.unpack_bits(sk[off: off + eta_bytes], self._etabits)
            s2.append([(p.eta - v) % Q for v in raw])
            off += eta_bytes
        t0 = []
        t0_bytes = N * 13 // 8
        for _ in range(p.k):
            raw = poly.unpack_bits(sk[off: off + t0_bytes], 13)
            t0.append([((1 << (poly.D - 1)) - v) % Q for v in raw])
            off += t0_bytes
        return rho, key, tr, s1, s2, t0

    # -- signing ---------------------------------------------------------------
    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        p = self._p
        rho, key, tr, s1, s2, t0 = self._parse_sk(secret_key)
        a_hat = self._expand_a(rho)
        mu = _shake256(tr + message, 64)
        rho_prime = _shake256(key + drbg.random_bytes(32) + mu, 64)
        s1_hat = poly.ntt_vec(s1)
        s2_hat = poly.ntt_vec(s2)
        t0_hat = poly.ntt_vec(t0)
        alpha = 2 * p.gamma2
        for kappa in range(0, _MAX_SIGN_ITERS * p.l, p.l):
            y = [self._sample_mask_poly(rho_prime, kappa + i) for i in range(p.l)]
            y_hat = poly.ntt_vec(y)
            w = poly.intt_vec(poly.matvec_pointwise(a_hat, y_hat))
            w1 = poly.highbits_vec(w, alpha)
            w1_packed = b"".join(poly.pack_bits(row, self._w1bits) for row in w1)
            c_tilde = _shake256(mu + w1_packed, 32)
            c = self._sample_in_ball(c_tilde)
            c_hat = poly.ntt(c)
            z = poly.add_vec(y, poly.intt_vec(poly.pointwise_each(c_hat, s1_hat)))
            if poly.inf_norm_vec(z) >= p.gamma1 - p.beta:
                continue
            w_cs2 = poly.sub_vec(
                w, poly.intt_vec(poly.pointwise_each(c_hat, s2_hat))
            )
            # lowbits are centered already, so the vector inf-norm is their max |.|
            if poly.inf_norm_vec(poly.lowbits_vec(w_cs2, alpha)) >= p.gamma2 - p.beta:
                continue
            ct0 = poly.intt_vec(poly.pointwise_each(c_hat, t0_hat))
            if poly.inf_norm_vec(ct0) >= p.gamma2:
                continue
            hints = poly.make_hint_vec(
                poly.neg_vec(ct0), poly.add_vec(w_cs2, ct0), alpha
            )
            if sum(sum(row) for row in hints) > p.omega:
                continue
            z_packed = b"".join(
                poly.pack_bits([(p.gamma1 - poly.centered(cf)) % (2 * p.gamma1)
                                for cf in row], self._zbits)
                for row in z
            )
            return c_tilde + z_packed + self._pack_hint(hints)  # pqtls: allow[CT101] — hint positions are published in the signature encoding
        raise RuntimeError(f"{self.name}: signing did not converge")

    # -- verification ------------------------------------------------------------
    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        p = self._p
        if len(public_key) != self.public_key_bytes:
            return False
        if len(signature) != self.signature_bytes:
            return False
        rho = public_key[:32]
        t1 = []
        off = 32
        row_bytes = 320
        for _ in range(p.k):
            t1.append(poly.unpack_bits(public_key[off: off + row_bytes], 10))
            off += row_bytes
        c_tilde = signature[:32]
        z_bytes = N * self._zbits // 8
        z = []
        off = 32
        for _ in range(p.l):
            raw = poly.unpack_bits(signature[off: off + z_bytes], self._zbits)
            z.append([(p.gamma1 - v) % Q for v in raw])
            off += z_bytes
        hints = self._unpack_hint(signature[off:])
        if hints is None:
            return False
        if poly.inf_norm_vec(z) >= p.gamma1 - p.beta:
            return False
        a_hat = self._expand_a(rho)
        mu = _shake256(_shake256(public_key, 64) + message, 64)
        c = self._sample_in_ball(c_tilde)
        c_hat = poly.ntt(c)
        z_hat = poly.ntt_vec(z)
        alpha = 2 * p.gamma2
        t1_shifted = poly.ntt_vec([[v << poly.D for v in row] for row in t1])
        acc = poly.sub_vec(
            poly.matvec_pointwise(a_hat, z_hat),
            poly.pointwise_each(c_hat, t1_shifted),
        )
        w_approx = poly.intt_vec(acc)
        w1 = poly.use_hint_vec(hints, w_approx, alpha)
        w1_packed = b"".join(poly.pack_bits(row, self._w1bits) for row in w1)
        return _shake256(mu + w1_packed, 32) == c_tilde


DILITHIUM2 = DilithiumSignature(2)
DILITHIUM3 = DilithiumSignature(3)
DILITHIUM5 = DilithiumSignature(5)
DILITHIUM2_AES = DilithiumSignature(2, aes=True)
DILITHIUM3_AES = DilithiumSignature(3, aes=True)
DILITHIUM5_AES = DilithiumSignature(5, aes=True)
