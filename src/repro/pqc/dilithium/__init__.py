"""Dilithium (round-3) signatures — levels 2/3/5 plus the AES variants."""

from repro.pqc.dilithium.sig import (
    DILITHIUM2,
    DILITHIUM2_AES,
    DILITHIUM3,
    DILITHIUM3_AES,
    DILITHIUM5,
    DILITHIUM5_AES,
    DilithiumSignature,
)

__all__ = [
    "DilithiumSignature",
    "DILITHIUM2",
    "DILITHIUM3",
    "DILITHIUM5",
    "DILITHIUM2_AES",
    "DILITHIUM3_AES",
    "DILITHIUM5_AES",
]
