"""Kyber IND-CCA2 KEM (round-3 spec): K-PKE + Fujisaki–Okamoto transform.

Two symmetric-primitive suites, exactly as the paper measures them:

- standard: XOF=SHAKE-128, PRF=SHAKE-256, H=SHA3-256, G=SHA3-512,
  KDF=SHAKE-256;
- ``90s``: AES-256-CTR as XOF/PRF and SHA-2 as H/G/KDF (the variants the
  paper reports as ``kyber90s*``, measurably faster on AES-NI hardware).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import aes, kernels as _kernels
from repro.crypto.constanttime import ct_eq_bytes, ct_select_bytes
from repro.crypto.drbg import Drbg
from repro.pqc.kem import Kem
from repro.pqc.kyber import poly
from repro.pqc.kyber.poly import N, XofStream


@dataclass(frozen=True)
class _Params:
    k: int
    eta1: int
    eta2: int
    du: int
    dv: int


_PARAM_SETS = {
    512: _Params(k=2, eta1=3, eta2=2, du=10, dv=4),
    768: _Params(k=3, eta1=2, eta2=2, du=10, dv=4),
    1024: _Params(k=4, eta1=2, eta2=2, du=11, dv=5),
}

_SS_LEN = 32
_SYM_LEN = 32


class _Symmetric:
    """The SHAKE/SHA-3 suite."""

    @staticmethod
    def xof(seed: bytes, i: int, j: int) -> XofStream:
        base = hashlib.shake_128(seed + bytes([i, j]))
        return XofStream(lambda ctr, b=base: b.copy().digest(168 * (ctr + 1))[168 * ctr:])

    @staticmethod
    def prf(seed: bytes, nonce: int, outlen: int) -> bytes:
        return hashlib.shake_256(seed + bytes([nonce])).digest(outlen)

    @staticmethod
    def h(data: bytes) -> bytes:
        return hashlib.sha3_256(data).digest()

    @staticmethod
    def g(data: bytes) -> bytes:
        return hashlib.sha3_512(data).digest()

    @staticmethod
    def kdf(data: bytes) -> bytes:
        return hashlib.shake_256(data).digest(_SS_LEN)


class _Symmetric90s:
    """The AES/SHA-2 suite of the 90s variants.

    ``xof`` is a kernel switch point (bound at the bottom of the file):
    the reference regenerates the CTR keystream from counter zero for
    every 168-byte block, the fast twin keeps an incremental block
    source that encrypts only the blocks each chunk overlaps. Both
    yield the same stream bytes.
    """

    @staticmethod
    def _xof_ref(seed: bytes, i: int, j: int) -> XofStream:
        nonce = bytes([i, j]) + b"\x00" * 10
        return XofStream(
            lambda ctr: aes.aes_ctr_keystream(seed, nonce, 168 * (ctr + 1))[168 * ctr:]
        )

    @staticmethod
    def _xof_fast(seed: bytes, i: int, j: int) -> XofStream:
        return XofStream(aes.CtrBlockSource(seed, bytes([i, j]) + b"\x00" * 10))

    @staticmethod
    def prf(seed: bytes, nonce: int, outlen: int) -> bytes:
        return aes.aes_ctr_keystream(seed, bytes([nonce]) + b"\x00" * 11, outlen)

    @staticmethod
    def h(data: bytes) -> bytes:
        return hashlib.sha256(data).digest()

    @staticmethod
    def g(data: bytes) -> bytes:
        return hashlib.sha512(data).digest()

    @staticmethod
    def kdf(data: bytes) -> bytes:
        return hashlib.sha256(data).digest()


class KyberKem(Kem):
    """One Kyber parameter set behind the generic KEM interface."""

    def __init__(self, strength: int, *, nist_level: int, ninety_s: bool = False):
        params = _PARAM_SETS[strength]
        self._p = params
        self._sym = _Symmetric90s() if ninety_s else _Symmetric()
        self.name = f"kyber90s{strength}" if ninety_s else f"kyber{strength}"
        self.nist_level = nist_level
        self.public_key_bytes = 384 * params.k + 32
        self.ciphertext_bytes = 32 * (params.du * params.k + params.dv)
        self.shared_secret_bytes = _SS_LEN
        self._sk_pke_bytes = 384 * params.k

    # -- K-PKE -------------------------------------------------------------
    def _gen_matrix(self, rho: bytes, transpose: bool) -> list[list[list[int]]]:
        k = self._p.k
        matrix = []
        for i in range(k):
            row = []
            for j in range(k):
                idx = (i, j) if transpose else (j, i)
                row.append(poly.parse_uniform(self._sym.xof(rho, *idx)))
            matrix.append(row)
        return matrix

    def _sample_vec(self, seed: bytes, eta: int, nonce0: int) -> tuple[list[list[int]], int]:
        vec = []
        nonce = nonce0
        for _ in range(self._p.k):
            vec.append(poly.cbd(self._sym.prf(seed, nonce, 64 * eta), eta))
            nonce += 1
        return vec, nonce

    def _pke_keygen(self, d: bytes) -> tuple[bytes, bytes]:
        seed = self._sym.g(d)
        rho, sigma = seed[:32], seed[32:]
        a_hat = self._gen_matrix(rho, transpose=False)
        s, nonce = self._sample_vec(sigma, self._p.eta1, 0)
        e, _ = self._sample_vec(sigma, self._p.eta1, nonce)
        s_hat = [poly.ntt(p) for p in s]
        e_hat = [poly.ntt(p) for p in e]
        t_hat = []
        for i in range(self._p.k):
            acc = [0] * N
            for j in range(self._p.k):
                acc = poly.poly_add(acc, poly.basemul(a_hat[i][j], s_hat[j]))
            t_hat.append(poly.poly_add(acc, e_hat[i]))
        pk = b"".join(poly.pack_bits(p, 12) for p in t_hat) + rho
        sk = b"".join(poly.pack_bits(p, 12) for p in s_hat)
        return pk, sk

    def _pke_encrypt(self, pk: bytes, message: bytes, coins: bytes) -> bytes:
        p = self._p
        t_hat = [poly.unpack_bits(pk[384 * i: 384 * (i + 1)], 12) for i in range(p.k)]
        rho = pk[384 * p.k:]
        at_hat = self._gen_matrix(rho, transpose=True)
        r, nonce = self._sample_vec(coins, p.eta1, 0)
        e1, nonce = self._sample_vec(coins, p.eta2, nonce)
        e2 = poly.cbd(self._sym.prf(coins, nonce, 64 * p.eta2), p.eta2)
        r_hat = [poly.ntt(x) for x in r]
        u = []
        for i in range(p.k):
            acc = [0] * N
            for j in range(p.k):
                acc = poly.poly_add(acc, poly.basemul(at_hat[i][j], r_hat[j]))
            u.append(poly.poly_add(poly.intt(acc), e1[i]))
        acc = [0] * N
        for j in range(p.k):
            acc = poly.poly_add(acc, poly.basemul(t_hat[j], r_hat[j]))
        m_poly = poly.decompress(
            [(message[i // 8] >> (i % 8)) & 1 for i in range(N)], 1
        )
        v = poly.poly_add(poly.poly_add(poly.intt(acc), e2), m_poly)
        c1 = b"".join(poly.pack_bits(poly.compress(ui, p.du), p.du) for ui in u)
        c2 = poly.pack_bits(poly.compress(v, p.dv), p.dv)
        return c1 + c2

    def _pke_decrypt(self, sk: bytes, ciphertext: bytes) -> bytes:
        p = self._p
        du_bytes = 32 * p.du
        u = [
            poly.decompress(
                poly.unpack_bits(ciphertext[du_bytes * i: du_bytes * (i + 1)], p.du),
                p.du,
            )
            for i in range(p.k)
        ]
        v = poly.decompress(poly.unpack_bits(ciphertext[du_bytes * p.k:], p.dv), p.dv)
        s_hat = [poly.unpack_bits(sk[384 * i: 384 * (i + 1)], 12) for i in range(p.k)]
        acc = [0] * N
        for j in range(p.k):
            acc = poly.poly_add(acc, poly.basemul(s_hat[j], poly.ntt(u[j])))
        w = poly.poly_sub(v, poly.intt(acc))
        bits = poly.compress(w, 1)
        return bytes(
            sum(bits[8 * i + j] << j for j in range(8)) for i in range(32)
        )

    # -- CCA KEM (FO transform) ---------------------------------------------
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        d = drbg.random_bytes(32)
        z = drbg.random_bytes(32)
        pk, sk_pke = self._pke_keygen(d)
        sk = sk_pke + pk + self._sym.h(pk) + z
        return pk, sk

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        if len(public_key) != self.public_key_bytes:
            raise ValueError(f"{self.name}: bad public key length")
        m = self._sym.h(drbg.random_bytes(32))
        g_out = self._sym.g(m + self._sym.h(public_key))
        k_bar, coins = g_out[:32], g_out[32:]
        ciphertext = self._pke_encrypt(public_key, m, coins)
        shared = self._sym.kdf(k_bar + self._sym.h(ciphertext))
        return ciphertext, shared

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) != self.ciphertext_bytes:
            raise ValueError(f"{self.name}: bad ciphertext length")
        sk_pke = secret_key[: self._sk_pke_bytes]
        pk = secret_key[self._sk_pke_bytes: self._sk_pke_bytes + self.public_key_bytes]
        h_pk = secret_key[
            self._sk_pke_bytes + self.public_key_bytes:
            self._sk_pke_bytes + self.public_key_bytes + 32
        ]
        z = secret_key[self._sk_pke_bytes + self.public_key_bytes + 32:]
        m_prime = self._pke_decrypt(sk_pke, ciphertext)
        g_out = self._sym.g(m_prime + h_pk)
        k_bar, coins = g_out[:32], g_out[32:]
        c_prime = self._pke_encrypt(pk, m_prime, coins)
        # FO implicit rejection, branchlessly (the spec's verify + cmov):
        # both keys are derived, then selected on the comparison mask
        h_ct = self._sym.h(ciphertext)
        accept = self._sym.kdf(k_bar + h_ct)
        reject = self._sym.kdf(z + h_ct)
        return ct_select_bytes(ct_eq_bytes(c_prime, ciphertext), accept, reject)


_kernels.bind(_Symmetric90s, "xof",
              ref=_Symmetric90s.__dict__["_xof_ref"],
              fast=_Symmetric90s.__dict__["_xof_fast"])

KYBER512 = KyberKem(512, nist_level=1)
KYBER768 = KyberKem(768, nist_level=3)
KYBER1024 = KyberKem(1024, nist_level=5)
KYBER90S512 = KyberKem(512, nist_level=1, ninety_s=True)
KYBER90S768 = KyberKem(768, nist_level=3, ninety_s=True)
KYBER90S1024 = KyberKem(1024, nist_level=5, ninety_s=True)
