"""Kyber (ML-KEM, round-3 parameterisation) — 512 / 768 / 1024 + 90s variants."""

from repro.pqc.kyber.kem import (
    KYBER1024,
    KYBER512,
    KYBER768,
    KYBER90S1024,
    KYBER90S512,
    KYBER90S768,
    KyberKem,
)

__all__ = [
    "KyberKem",
    "KYBER512",
    "KYBER768",
    "KYBER1024",
    "KYBER90S512",
    "KYBER90S768",
    "KYBER90S1024",
]
