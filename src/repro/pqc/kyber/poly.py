"""Polynomial arithmetic for Kyber: R_q = Z_3329[X]/(X^256 + 1).

Implements the incomplete NTT of the Kyber spec (128 quadratic base
fields), centered binomial sampling, rejection sampling of uniform
matrices, and the d-bit compression/serialisation functions.

Everything here is the spec-shaped reference; ``PQTLS_KERNELS=fast``
(the default) swaps the module entry points for the lane-packed bigint
twins in ``repro.crypto.kernels.kyber`` at import. Call through the
module (``poly.ntt(...)``) so rebinding takes effect.
"""

from __future__ import annotations

import sys

Q = 3329
N = 256
_QINV_128 = 3303  # 128^{-1} mod q


def _bitrev7(value: int) -> int:
    result = 0
    for _ in range(7):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


ZETAS = [pow(17, _bitrev7(i), Q) for i in range(128)]
GAMMAS = [pow(17, 2 * _bitrev7(i) + 1, Q) for i in range(128)]


def ntt(coeffs: list[int]) -> list[int]:
    """Forward NTT (the spec's 7-layer incomplete transform)."""
    f = list(coeffs)
    k = 1
    length = 128
    while length >= 2:
        for start in range(0, N, 2 * length):
            zeta = ZETAS[k]
            k += 1
            for j in range(start, start + length):
                t = zeta * f[j + length] % Q
                f[j + length] = (f[j] - t) % Q
                f[j] = (f[j] + t) % Q
        length //= 2
    return f


def intt(coeffs: list[int]) -> list[int]:
    """Inverse NTT."""
    f = list(coeffs)
    k = 127
    length = 2
    while length <= 128:
        for start in range(0, N, 2 * length):
            zeta = ZETAS[k]
            k -= 1
            for j in range(start, start + length):
                t = f[j]
                f[j] = (t + f[j + length]) % Q
                f[j + length] = zeta * (f[j + length] - t) % Q
        length *= 2
    return [x * _QINV_128 % Q for x in f]


def basemul(a: list[int], b: list[int]) -> list[int]:
    """Pointwise product in the NTT domain (pairs modulo X^2 - gamma_i)."""
    c = [0] * N
    for i in range(128):
        a0, a1 = a[2 * i], a[2 * i + 1]
        b0, b1 = b[2 * i], b[2 * i + 1]
        c[2 * i] = (a0 * b0 + a1 * b1 % Q * GAMMAS[i]) % Q
        c[2 * i + 1] = (a0 * b1 + a1 * b0) % Q
    return c


def poly_add(a: list[int], b: list[int]) -> list[int]:
    return [(x + y) % Q for x, y in zip(a, b)]


def poly_sub(a: list[int], b: list[int]) -> list[int]:
    return [(x - y) % Q for x, y in zip(a, b)]


# -- sampling -------------------------------------------------------------

def parse_uniform(stream: "XofStream") -> list[int]:
    """Rejection-sample a uniform NTT-domain polynomial from an XOF."""
    coeffs: list[int] = []
    while len(coeffs) < N:
        chunk = stream.read(3)
        d1 = chunk[0] | ((chunk[1] & 0x0F) << 8)
        d2 = (chunk[1] >> 4) | (chunk[2] << 4)
        if d1 < Q:
            coeffs.append(d1)
        if d2 < Q and len(coeffs) < N:
            coeffs.append(d2)
    return coeffs


def cbd(data: bytes, eta: int) -> list[int]:
    """Centered binomial distribution with parameter eta from 64*eta bytes."""
    if len(data) != 64 * eta:
        raise ValueError("CBD input must be 64*eta bytes")
    bits = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    coeffs = []
    for i in range(N):
        a = sum(bits[2 * i * eta + j] for j in range(eta))
        b = sum(bits[2 * i * eta + eta + j] for j in range(eta))
        coeffs.append((a - b) % Q)
    return coeffs


class XofStream:
    """Incremental byte stream over a callable block source."""

    def __init__(self, block_fn, block_len: int = 168):
        self._block_fn = block_fn
        self._block_len = block_len
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        while len(self._buffer) < n:
            self._buffer += self._block_fn(self._counter)
            self._counter += 1
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out


# -- compression / serialisation ------------------------------------------

def compress(coeffs: list[int], d: int) -> list[int]:
    mod = 1 << d
    return [((x << d) + Q // 2) // Q % mod for x in coeffs]


def decompress(values: list[int], d: int) -> list[int]:
    return [(v * Q + (1 << (d - 1))) >> d for v in values]


def pack_bits(values: list[int], d: int) -> bytes:
    """Pack *d*-bit integers little-endian-bitwise (the Kyber ByteEncode)."""
    acc = 0
    acc_bits = 0
    out = bytearray()
    for v in values:
        acc |= (v & ((1 << d) - 1)) << acc_bits
        acc_bits += d
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_bits(data: bytes, d: int, count: int = N) -> list[int]:
    """Inverse of :func:`pack_bits`."""
    acc = 0
    acc_bits = 0
    out = []
    it = iter(data)
    for _ in range(count):
        while acc_bits < d:
            acc |= next(it) << acc_bits
            acc_bits += 8
        out.append(acc & ((1 << d) - 1))
        acc >>= d
        acc_bits -= d
    return out


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import kyber as _fast  # noqa: E402

_SELF = sys.modules[__name__]
for _name in ("ntt", "intt", "basemul", "poly_add", "poly_sub",
              "parse_uniform", "cbd", "compress", "decompress",
              "pack_bits", "unpack_bits"):
    _kernels.bind(_SELF, _name,
                  ref=getattr(_SELF, _name), fast=getattr(_fast, _name))
