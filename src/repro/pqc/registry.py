"""Registry of every algorithm the paper measures, by the paper's names.

23 key agreements (Table 2a) and the signature algorithms of Table 2b /
Table 4b, including the ``rsa3072_dilithium2`` hybrid that only appears in
the constrained-environment table.
"""

from __future__ import annotations

from repro.pqc import classical
from repro.pqc.bike import BIKEL1, BIKEL3
from repro.pqc.dilithium import (
    DILITHIUM2,
    DILITHIUM2_AES,
    DILITHIUM3,
    DILITHIUM3_AES,
    DILITHIUM5,
    DILITHIUM5_AES,
)
from repro.pqc.falcon import FALCON512, FALCON1024
from repro.pqc.hqc import HQC128, HQC192, HQC256
from repro.pqc.hybrid import CompositeSignature, HybridKem
from repro.pqc.kem import Kem
from repro.pqc.kyber import (
    KYBER512,
    KYBER768,
    KYBER1024,
    KYBER90S512,
    KYBER90S768,
    KYBER90S1024,
)
from repro.pqc.sig import SignatureScheme
from repro.pqc.sphincs import SPHINCS128, SPHINCS192, SPHINCS256, SPHINCS_SHAKE_128F

# -- key agreements (the paper's 23) ---------------------------------------

KEMS: dict[str, Kem] = {}

for _kem in (
    classical.X25519, classical.P256_KEM, classical.P384_KEM, classical.P521_KEM,
    BIKEL1, BIKEL3,
    HQC128, HQC192, HQC256,
    KYBER512, KYBER768, KYBER1024,
    KYBER90S512, KYBER90S768, KYBER90S1024,
):
    KEMS[_kem.name] = _kem

for _name, _classical, _pq in (
    ("p256_bikel1", classical.P256_KEM, BIKEL1),
    ("p256_hqc128", classical.P256_KEM, HQC128),
    ("p256_kyber512", classical.P256_KEM, KYBER512),
    ("p384_bikel3", classical.P384_KEM, BIKEL3),
    ("p384_hqc192", classical.P384_KEM, HQC192),
    ("p384_kyber768", classical.P384_KEM, KYBER768),
    ("p521_hqc256", classical.P521_KEM, HQC256),
    ("p521_kyber1024", classical.P521_KEM, KYBER1024),
):
    KEMS[_name] = HybridKem(_name, _classical, _pq)

# -- signature algorithms ----------------------------------------------------

SIGS: dict[str, SignatureScheme] = {}

for _sig in (
    classical.RSA1024, classical.RSA2048, classical.RSA3072, classical.RSA4096,
    FALCON512, FALCON1024,
    DILITHIUM2, DILITHIUM3, DILITHIUM5,
    DILITHIUM2_AES, DILITHIUM3_AES, DILITHIUM5_AES,
    SPHINCS128, SPHINCS192, SPHINCS256,
    SPHINCS_SHAKE_128F,
):
    SIGS[_sig.name] = _sig

for _name, _classical_sig, _pq_sig in (
    ("p256_falcon512", classical.P256_ECDSA, FALCON512),
    ("p256_sphincs128", classical.P256_ECDSA, SPHINCS128),
    ("p256_dilithium2", classical.P256_ECDSA, DILITHIUM2),
    ("rsa3072_dilithium2", classical.RSA3072, DILITHIUM2),
    ("p384_dilithium3", classical.P384_ECDSA, DILITHIUM3),
    ("p384_sphincs192", classical.P384_ECDSA, SPHINCS192),
    ("p521_dilithium5", classical.P521_ECDSA, DILITHIUM5),
    ("p521_falcon1024", classical.P521_ECDSA, FALCON1024),
    ("p521_sphincs256", classical.P521_ECDSA, SPHINCS256),
):
    SIGS[_name] = CompositeSignature(_name, _classical_sig, _pq_sig)

# The experiment sets of the paper's Appendix B (non-hybrid, per level;
# level "1" groups NIST levels 1 and 2 as the paper does, with rsa:3072 as
# the only RSA variant).
LEVEL_GROUPS: dict[int, dict[str, list[str]]] = {
    1: {
        "kems": ["x25519", "p256", "bikel1", "hqc128", "kyber512", "kyber90s512"],
        "sigs": ["rsa:3072", "falcon512", "dilithium2", "dilithium2_aes", "sphincs128"],
    },
    3: {
        "kems": ["p384", "bikel3", "hqc192", "kyber768", "kyber90s768"],
        "sigs": ["dilithium3", "dilithium3_aes", "sphincs192"],
    },
    5: {
        "kems": ["p521", "hqc256", "kyber1024", "kyber90s1024"],
        "sigs": ["dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"],
    },
}

# Pre-quantum algorithms (bold in the paper's tables).
CLASSICAL_KEMS = {"x25519", "p256", "p384", "p521"}
CLASSICAL_SIGS = {"rsa:1024", "rsa:2048", "rsa:3072", "rsa:4096"}


def get_kem(name: str) -> Kem:
    try:
        return KEMS[name]
    except KeyError:
        raise KeyError(f"unknown key agreement {name!r}; known: {sorted(KEMS)}") from None


def get_sig(name: str) -> SignatureScheme:
    try:
        return SIGS[name]
    except KeyError:
        raise KeyError(f"unknown signature algorithm {name!r}; known: {sorted(SIGS)}") from None


def is_hybrid(name: str) -> bool:
    algorithm = KEMS.get(name) or SIGS.get(name)
    if algorithm is None:
        raise KeyError(f"unknown algorithm {name!r}")
    return isinstance(algorithm, (HybridKem, CompositeSignature))


ALL_KEM_NAMES = [
    # Table 2a order (level 1, 3, 5)
    "x25519", "bikel1", "hqc128", "kyber512", "kyber90s512", "p256",
    "p256_bikel1", "p256_hqc128", "p256_kyber512",
    "bikel3", "hqc192", "kyber768", "kyber90s768", "p384",
    "p384_bikel3", "p384_hqc192", "p384_kyber768",
    "hqc256", "kyber1024", "kyber90s1024", "p521",
    "p521_hqc256", "p521_kyber1024",
]

ALL_SIG_NAMES = [
    # Table 2b order
    "rsa:1024", "rsa:2048",
    "falcon512", "rsa:3072", "rsa:4096", "sphincs128",
    "p256_falcon512", "p256_sphincs128",
    "dilithium2", "dilithium2_aes", "p256_dilithium2",
    "dilithium3", "dilithium3_aes", "sphincs192",
    "p384_dilithium3", "p384_sphincs192",
    "dilithium5", "dilithium5_aes", "falcon1024", "sphincs256",
    "p521_dilithium5", "p521_falcon1024", "p521_sphincs256",
]
