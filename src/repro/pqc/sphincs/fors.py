"""FORS (Forest Of Random Subsets), the few-time scheme signing the digest."""

from __future__ import annotations

from repro.pqc.sphincs.address import FORS_PRF, FORS_ROOTS, FORS_TREE, Adrs


def message_indices(md: bytes, k: int, a: int) -> list[int]:
    """Split the k*a message-digest bits into k a-bit leaf indices."""
    indices = []
    offset = 0
    for _ in range(k):
        value = 0
        for _ in range(a):
            value = (value << 1) | ((md[offset >> 3] >> (7 - (offset & 7))) & 1)
            offset += 1
        indices.append(value)
    return indices


def _leaf_seed(backend, sk_seed: bytes, adrs: Adrs, index: int) -> bytes:
    prf_adrs = adrs.copy()
    prf_adrs.set_type(FORS_PRF)
    prf_adrs.w1 = adrs.w1
    prf_adrs.w3 = index
    return backend.prf(sk_seed, prf_adrs)


def _tree_node(backend, sk_seed: bytes, index: int, height: int, adrs: Adrs) -> bytes:
    """Recursively compute a FORS Merkle node."""
    if height == 0:
        seed = _leaf_seed(backend, sk_seed, adrs, index)
        adrs.w2 = 0
        adrs.w3 = index
        return backend.thash(adrs, seed)
    left = _tree_node(backend, sk_seed, 2 * index, height - 1, adrs)
    right = _tree_node(backend, sk_seed, 2 * index + 1, height - 1, adrs)
    adrs.w2 = height
    adrs.w3 = index
    return backend.thash(adrs, left + right)


def fors_sign(backend, md: bytes, sk_seed: bytes, adrs: Adrs, k: int, a: int) -> bytes:
    """FORS signature: k * (secret leaf value + a-node auth path)."""
    indices = message_indices(md, k, a)
    parts = []
    for tree, leaf in enumerate(indices):
        tree_adrs = adrs.copy()
        tree_adrs.set_type(FORS_TREE)
        tree_adrs.w1 = adrs.w1
        offset = tree << a
        parts.append(_leaf_seed(backend, sk_seed, tree_adrs, offset + leaf))
        for height in range(a):
            sibling = (leaf >> height) ^ 1
            base = offset >> height
            node_adrs = tree_adrs.copy()
            parts.append(
                _tree_node(backend, sk_seed, base + sibling, height, node_adrs)
            )
    return b"".join(parts)


def fors_pk_from_sig(backend, signature: bytes, md: bytes, adrs: Adrs,
                     k: int, a: int) -> bytes:
    """Recompute the FORS public key from a signature."""
    n = backend.n
    indices = message_indices(md, k, a)
    roots = []
    offset = 0
    for tree, leaf in enumerate(indices):
        tree_adrs = adrs.copy()
        tree_adrs.set_type(FORS_TREE)
        tree_adrs.w1 = adrs.w1
        sk = signature[offset: offset + n]
        offset += n
        index = (tree << a) + leaf
        tree_adrs.w2 = 0
        tree_adrs.w3 = index
        node = backend.thash(tree_adrs, sk)
        for height in range(a):
            sibling = signature[offset: offset + n]
            offset += n
            tree_adrs.w2 = height + 1
            tree_adrs.w3 = index >> (height + 1)
            if (index >> height) & 1:
                node = backend.thash(tree_adrs, sibling + node)
            else:
                node = backend.thash(tree_adrs, node + sibling)
        roots.append(node)
    roots_adrs = adrs.copy()
    roots_adrs.set_type(FORS_ROOTS)
    roots_adrs.w1 = adrs.w1
    return backend.thash(roots_adrs, b"".join(roots))
