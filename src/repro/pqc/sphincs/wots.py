"""WOTS+ one-time signatures (w = 16), the hypertree's leaf scheme."""

from __future__ import annotations

from repro.pqc.sphincs.address import WOTS_HASH, WOTS_PK, WOTS_PRF, Adrs

W = 16
LOG_W = 4


def wots_lengths(n: int) -> tuple[int, int, int]:
    """(len1, len2, len) for message length n bytes and w = 16."""
    len1 = 2 * n
    len2 = 3  # ceil(log2(len1 * (w-1)) / log2(w)) + 1 == 3 for n in 16..32
    return len1, len2, len1 + len2


def _base_w(message: bytes, out_len: int) -> list[int]:
    digits = []
    for byte in message:
        digits.append(byte >> 4)
        digits.append(byte & 0x0F)
        if len(digits) >= out_len:
            break
    return digits[:out_len]


def _checksum_digits(digits: list[int], len2: int) -> list[int]:
    csum = sum(W - 1 - d for d in digits)
    csum <<= (8 - (len2 * LOG_W) % 8) % 8
    csum_bytes = csum.to_bytes((len2 * LOG_W + 7) // 8, "big")
    return _base_w(csum_bytes, len2)


def message_digits(message: bytes, n: int) -> list[int]:
    """Base-w digits plus checksum digits for an n-byte message."""
    len1, len2, _ = wots_lengths(n)
    digits = _base_w(message, len1)
    return digits + _checksum_digits(digits, len2)


def chain(backend, value: bytes, start: int, steps: int, adrs: Adrs) -> bytes:
    """Apply the chaining function *steps* times starting at index *start*."""
    for i in range(start, start + steps):
        adrs.w3 = i
        value = backend.thash(adrs, value)
    return value


def _chain_seeds(backend, sk_seed: bytes, adrs: Adrs, count: int) -> list[bytes]:
    seeds = []
    prf_adrs = adrs.copy()
    prf_adrs.set_type(WOTS_PRF)
    prf_adrs.w1 = adrs.w1
    for i in range(count):
        prf_adrs.w2 = i
        prf_adrs.w3 = 0
        seeds.append(backend.prf(sk_seed, prf_adrs))
    return seeds


def wots_pk_gen(backend, sk_seed: bytes, adrs: Adrs) -> bytes:
    """Compute the compressed WOTS+ public key for the keypair in *adrs*."""
    _, _, length = wots_lengths(backend.n)
    seeds = _chain_seeds(backend, sk_seed, adrs, length)
    hash_adrs = adrs.copy()
    hash_adrs.type = WOTS_HASH
    chains = []
    for i, seed in enumerate(seeds):
        hash_adrs.w2 = i
        chains.append(chain(backend, seed, 0, W - 1, hash_adrs))
    pk_adrs = adrs.copy()
    pk_adrs.set_type(WOTS_PK)
    pk_adrs.w1 = adrs.w1
    return backend.thash(pk_adrs, b"".join(chains))


def wots_sign(backend, message: bytes, sk_seed: bytes, adrs: Adrs) -> bytes:
    """Sign an n-byte message; returns len * n bytes."""
    digits = message_digits(message, backend.n)
    seeds = _chain_seeds(backend, sk_seed, adrs, len(digits))
    hash_adrs = adrs.copy()
    hash_adrs.type = WOTS_HASH
    parts = []
    for i, (digit, seed) in enumerate(zip(digits, seeds)):
        hash_adrs.w2 = i
        parts.append(chain(backend, seed, 0, digit, hash_adrs))
    return b"".join(parts)


def wots_pk_from_sig(backend, signature: bytes, message: bytes, adrs: Adrs) -> bytes:
    """Recompute the compressed public key from a signature."""
    n = backend.n
    digits = message_digits(message, n)
    hash_adrs = adrs.copy()
    hash_adrs.type = WOTS_HASH
    chains = []
    for i, digit in enumerate(digits):
        hash_adrs.w2 = i
        part = signature[n * i: n * (i + 1)]
        chains.append(chain(backend, part, digit, W - 1 - digit, hash_adrs))
    pk_adrs = adrs.copy()
    pk_adrs.set_type(WOTS_PK)
    pk_adrs.w1 = adrs.w1
    return backend.thash(pk_adrs, b"".join(chains))
