"""Tweakable-hash backends for SPHINCS+ ('simple' constructions).

Two backends, matching the paper's variants:

- :class:`HarakaBackend` — the ``sphincs-haraka-*f-simple`` family the paper
  benchmarks as its fastest SPHINCS+ configuration. The Haraka permutation
  is keyed with the public seed (round constants derived from it), inputs
  that fit one 64-byte block use Haraka-512, larger inputs the HarakaS
  sponge.
- :class:`ShakeBackend` — the ``sphincs-shake*`` family; much simpler and
  the faster option in pure Python (hashlib does the permutation in C).
"""

from __future__ import annotations

import hashlib

from repro.crypto import haraka as _haraka
from repro.crypto.haraka import Haraka
from repro.pqc.sphincs.address import Adrs


class ShakeBackend:
    """SHAKE-256 tweakable hashes (sphincs-shake-*-simple)."""

    name = "shake"

    def __init__(self, n: int):
        self.n = n
        self._pk_seed = b""

    def set_pk_seed(self, pk_seed: bytes) -> None:
        self._pk_seed = pk_seed

    def thash(self, adrs: Adrs, data: bytes) -> bytes:
        return hashlib.shake_256(self._pk_seed + adrs.to_bytes() + data).digest(self.n)

    def prf(self, sk_seed: bytes, adrs: Adrs) -> bytes:
        return hashlib.shake_256(self._pk_seed + adrs.to_bytes() + sk_seed).digest(self.n)

    def prf_msg(self, sk_prf: bytes, opt_rand: bytes, message: bytes) -> bytes:
        return hashlib.shake_256(sk_prf + opt_rand + message).digest(self.n)

    def h_msg(self, r: bytes, pk_root: bytes, message: bytes, outlen: int) -> bytes:
        return hashlib.shake_256(r + self._pk_seed + pk_root + message).digest(outlen)


class HarakaBackend:
    """Haraka v2 tweakable hashes (sphincs-haraka-*f-simple)."""

    name = "haraka"

    def __init__(self, n: int):
        if n > 32:
            raise ValueError("Haraka backend supports n <= 32")
        self.n = n
        self._keyed: Haraka | None = None
        self._pk_seed = b""

    def set_pk_seed(self, pk_seed: bytes) -> None:
        self._pk_seed = pk_seed
        # module-attr call: under fast kernels this is memoized per seed,
        # so re-keying for the same key pair skips the RC re-derivation
        self._keyed = _haraka.haraka_keyed(pk_seed)

    def _instance(self) -> Haraka:
        if self._keyed is None:
            raise RuntimeError("backend not keyed: call set_pk_seed first")
        return self._keyed

    def thash(self, adrs: Adrs, data: bytes) -> bytes:
        haraka = self._instance()
        total = adrs.to_bytes() + data
        if len(total) == 64:
            return haraka.haraka512(total)[: self.n]
        if len(total) < 64:
            return haraka.haraka512(total.ljust(64, b"\x00"))[: self.n]
        return haraka.haraka_sponge(total, self.n)

    def prf(self, sk_seed: bytes, adrs: Adrs) -> bytes:
        haraka = self._instance()
        block = (adrs.to_bytes() + sk_seed).ljust(64, b"\x00")[:64]
        return haraka.haraka512(block)[: self.n]

    def prf_msg(self, sk_prf: bytes, opt_rand: bytes, message: bytes) -> bytes:
        return self._instance().haraka_sponge(sk_prf + opt_rand + message, self.n)

    def h_msg(self, r: bytes, pk_root: bytes, message: bytes, outlen: int) -> bytes:
        return self._instance().haraka_sponge(r + pk_root + message, outlen)


def make_backend(kind: str, n: int):
    if kind == "shake":
        return ShakeBackend(n)
    if kind == "haraka":
        return HarakaBackend(n)
    raise ValueError(f"unknown SPHINCS+ backend {kind!r}")
