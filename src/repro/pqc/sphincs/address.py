"""SPHINCS+ hash addresses (ADRS): 32-byte domain-separation structures."""

from __future__ import annotations

WOTS_HASH = 0
WOTS_PK = 1
TREE = 2
FORS_TREE = 3
FORS_ROOTS = 4
WOTS_PRF = 5
FORS_PRF = 6


class Adrs:
    """Mutable ADRS: layer (4 B) | tree (12 B) | type (4 B) | 3 words."""

    __slots__ = ("layer", "tree", "type", "w1", "w2", "w3")

    def __init__(self):
        self.layer = 0
        self.tree = 0
        self.type = WOTS_HASH
        self.w1 = 0
        self.w2 = 0
        self.w3 = 0

    def copy(self) -> "Adrs":
        other = Adrs()
        other.layer, other.tree, other.type = self.layer, self.tree, self.type
        other.w1, other.w2, other.w3 = self.w1, self.w2, self.w3
        return other

    def set_type(self, new_type: int) -> None:
        """Change the type and clear the type-specific words (as the spec)."""
        self.type = new_type
        self.w1 = self.w2 = self.w3 = 0

    # word aliases per type ------------------------------------------------
    # WOTS_HASH / WOTS_PRF: w1=keypair  w2=chain   w3=hash
    # WOTS_PK:              w1=keypair
    # TREE:                 w1=0        w2=height  w3=index
    # FORS_TREE / PRF:      w1=keypair  w2=height  w3=index
    # FORS_ROOTS:           w1=keypair

    def to_bytes(self) -> bytes:
        return (
            self.layer.to_bytes(4, "big")
            + self.tree.to_bytes(12, "big")
            + self.type.to_bytes(4, "big")
            + self.w1.to_bytes(4, "big")
            + self.w2.to_bytes(4, "big")
            + self.w3.to_bytes(4, "big")
        )
