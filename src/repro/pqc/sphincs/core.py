"""SPHINCS+ top level: hypertree of XMSS trees over FORS.

Parameter sets are the round-3 'f' (fast-signing) 'simple' instances the
paper selected as the fastest SPHINCS+ configurations — the only ones it
reports (``sphincs128/192/256`` = sphincs-haraka-{128,192,256}f-simple).
Wire sizes are spec-exact: signatures of 17 088 / 35 664 / 49 856 bytes,
which is what makes SPHINCS+ the paper's worst case for data volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.pqc.sig import SignatureScheme
from repro.pqc.sphincs import fors, wots
from repro.pqc.sphincs.address import TREE, WOTS_HASH, Adrs
from repro.pqc.sphincs.backend import make_backend


@dataclass(frozen=True)
class SphincsParams:
    n: int   # hash output bytes
    h: int   # total hypertree height
    d: int   # number of layers
    a: int   # FORS tree height (log t)
    k: int   # number of FORS trees

    @property
    def tree_height(self) -> int:
        return self.h // self.d

    @property
    def wots_len(self) -> int:
        return wots.wots_lengths(self.n)[2]

    @property
    def signature_bytes(self) -> int:
        return self.n * (
            1
            + self.k * (self.a + 1)
            + self.d * self.wots_len
            + self.h
        )

    @property
    def digest_bytes(self) -> int:
        ka_bytes = (self.k * self.a + 7) // 8
        tree_bits = self.h - self.tree_height
        return ka_bytes + (tree_bits + 7) // 8 + (self.tree_height + 7) // 8


PARAMS_128F = SphincsParams(n=16, h=66, d=22, a=6, k=33)
PARAMS_192F = SphincsParams(n=24, h=66, d=22, a=8, k=33)
PARAMS_256F = SphincsParams(n=32, h=68, d=17, a=9, k=35)


class SphincsSignature(SignatureScheme):
    """One SPHINCS+ instance behind the generic signature interface."""

    def __init__(self, name: str, params: SphincsParams, *, nist_level: int,
                 backend: str = "haraka"):
        self.name = name
        self.nist_level = nist_level
        self.params = params
        self._backend_kind = backend
        self.public_key_bytes = 2 * params.n
        self.signature_bytes = params.signature_bytes

    def _backend(self, pk_seed: bytes):
        backend = make_backend(self._backend_kind, self.params.n)
        backend.set_pk_seed(pk_seed)
        return backend

    # -- XMSS layer ----------------------------------------------------------
    def _xmss_node(self, backend, sk_seed: bytes, index: int, height: int,
                   layer: int, tree: int) -> bytes:
        if height == 0:
            adrs = Adrs()
            adrs.layer, adrs.tree = layer, tree
            adrs.type = WOTS_HASH
            adrs.w1 = index
            return wots.wots_pk_gen(backend, sk_seed, adrs)
        left = self._xmss_node(backend, sk_seed, 2 * index, height - 1, layer, tree)
        right = self._xmss_node(backend, sk_seed, 2 * index + 1, height - 1, layer, tree)
        adrs = Adrs()
        adrs.layer, adrs.tree = layer, tree
        adrs.set_type(TREE)
        adrs.w2, adrs.w3 = height, index
        return backend.thash(adrs, left + right)

    def _xmss_sign(self, backend, message: bytes, sk_seed: bytes, idx_leaf: int,
                   layer: int, tree: int) -> bytes:
        adrs = Adrs()
        adrs.layer, adrs.tree = layer, tree
        adrs.type = WOTS_HASH
        adrs.w1 = idx_leaf
        sig = wots.wots_sign(backend, message, sk_seed, adrs)
        auth = []
        for height in range(self.params.tree_height):
            sibling = (idx_leaf >> height) ^ 1
            auth.append(
                self._xmss_node(backend, sk_seed, sibling, height, layer, tree)
            )
        return sig + b"".join(auth)

    def _xmss_pk_from_sig(self, backend, signature: bytes, message: bytes,
                          idx_leaf: int, layer: int, tree: int) -> bytes:
        n = self.params.n
        wots_bytes = self.params.wots_len * n
        wots_sig, auth = signature[:wots_bytes], signature[wots_bytes:]
        adrs = Adrs()
        adrs.layer, adrs.tree = layer, tree
        adrs.type = WOTS_HASH
        adrs.w1 = idx_leaf
        node = wots.wots_pk_from_sig(backend, wots_sig, message, adrs)
        tree_adrs = Adrs()
        tree_adrs.layer, tree_adrs.tree = layer, tree
        tree_adrs.set_type(TREE)
        index = idx_leaf
        for height in range(self.params.tree_height):
            sibling = auth[height * n: (height + 1) * n]
            tree_adrs.w2 = height + 1
            tree_adrs.w3 = index >> 1
            if index & 1:
                node = backend.thash(tree_adrs, sibling + node)
            else:
                node = backend.thash(tree_adrs, node + sibling)
            index >>= 1
        return node

    # -- hypertree -------------------------------------------------------------
    def _ht_sign(self, backend, message: bytes, sk_seed: bytes,
                 idx_tree: int, idx_leaf: int) -> bytes:
        parts = []
        root = message
        tree, leaf = idx_tree, idx_leaf
        mask = (1 << self.params.tree_height) - 1
        for layer in range(self.params.d):
            sig = self._xmss_sign(backend, root, sk_seed, leaf, layer, tree)
            parts.append(sig)
            if layer < self.params.d - 1:
                root = self._xmss_pk_from_sig(backend, sig, root, leaf, layer, tree)
                leaf = tree & mask
                tree >>= self.params.tree_height
        return b"".join(parts)

    def _ht_verify(self, backend, message: bytes, signature: bytes,
                   idx_tree: int, idx_leaf: int, pk_root: bytes) -> bool:
        n = self.params.n
        xmss_bytes = (self.params.wots_len + self.params.tree_height) * n
        node = message
        tree, leaf = idx_tree, idx_leaf
        mask = (1 << self.params.tree_height) - 1
        for layer in range(self.params.d):
            sig = signature[layer * xmss_bytes: (layer + 1) * xmss_bytes]
            node = self._xmss_pk_from_sig(backend, sig, node, leaf, layer, tree)
            leaf = tree & mask
            tree >>= self.params.tree_height
        return node == pk_root

    # -- digest splitting --------------------------------------------------------
    def _split_digest(self, digest: bytes) -> tuple[bytes, int, int]:
        p = self.params
        ka_bytes = (p.k * p.a + 7) // 8
        tree_bits = p.h - p.tree_height
        tree_bytes = (tree_bits + 7) // 8
        leaf_bytes = (p.tree_height + 7) // 8
        md = digest[:ka_bytes]
        idx_tree = int.from_bytes(
            digest[ka_bytes: ka_bytes + tree_bytes], "big"
        ) % (1 << tree_bits)
        idx_leaf = int.from_bytes(
            digest[ka_bytes + tree_bytes: ka_bytes + tree_bytes + leaf_bytes], "big"
        ) % (1 << p.tree_height)
        return md, idx_tree, idx_leaf

    # -- public API ----------------------------------------------------------------
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        n = self.params.n
        sk_seed = drbg.random_bytes(n)
        sk_prf = drbg.random_bytes(n)
        pk_seed = drbg.random_bytes(n)
        backend = self._backend(pk_seed)
        top_tree_height = self.params.tree_height
        pk_root = self._xmss_node(
            backend, sk_seed, 0, top_tree_height, self.params.d - 1, 0
        )
        public_key = pk_seed + pk_root
        secret_key = sk_seed + sk_prf + public_key
        return public_key, secret_key

    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        n = self.params.n
        sk_seed, sk_prf = secret_key[:n], secret_key[n: 2 * n]
        pk_seed = secret_key[2 * n: 3 * n]
        pk_root = secret_key[3 * n: 4 * n]
        backend = self._backend(pk_seed)
        opt_rand = drbg.random_bytes(n)
        r = backend.prf_msg(sk_prf, opt_rand, message)
        digest = backend.h_msg(r, pk_root, message, self.params.digest_bytes)
        md, idx_tree, idx_leaf = self._split_digest(digest)
        fors_adrs = Adrs()
        fors_adrs.tree = idx_tree
        fors_adrs.w1 = idx_leaf
        fors_sig = fors.fors_sign(
            backend, md, sk_seed, fors_adrs, self.params.k, self.params.a
        )
        fors_pk = fors.fors_pk_from_sig(
            backend, fors_sig, md, fors_adrs, self.params.k, self.params.a
        )
        ht_sig = self._ht_sign(backend, fors_pk, sk_seed, idx_tree, idx_leaf)  # pqtls: allow[CT101] — hypertree indices are published in the signature
        signature = r + fors_sig + ht_sig
        if len(signature) != self.signature_bytes:
            raise AssertionError(
                f"{self.name}: produced {len(signature)} B, expected {self.signature_bytes}")
        return signature

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        p = self.params
        n = p.n
        if len(public_key) != self.public_key_bytes:
            return False
        if len(signature) != self.signature_bytes:
            return False
        pk_seed, pk_root = public_key[:n], public_key[n:]
        backend = self._backend(pk_seed)
        r = signature[:n]
        fors_bytes = p.k * (p.a + 1) * n
        fors_sig = signature[n: n + fors_bytes]
        ht_sig = signature[n + fors_bytes:]
        digest = backend.h_msg(r, pk_root, message, p.digest_bytes)
        md, idx_tree, idx_leaf = self._split_digest(digest)
        fors_adrs = Adrs()
        fors_adrs.tree = idx_tree
        fors_adrs.w1 = idx_leaf
        fors_pk = fors.fors_pk_from_sig(backend, fors_sig, md, fors_adrs, p.k, p.a)
        return self._ht_verify(backend, fors_pk, ht_sig, idx_tree, idx_leaf, pk_root)


SPHINCS128 = SphincsSignature("sphincs128", PARAMS_128F, nist_level=1)
SPHINCS192 = SphincsSignature("sphincs192", PARAMS_192F, nist_level=3)
SPHINCS256 = SphincsSignature("sphincs256", PARAMS_256F, nist_level=5)
SPHINCS_SHAKE_128F = SphincsSignature(
    "sphincs-shake-128f", PARAMS_128F, nist_level=1, backend="shake"
)
