"""SPHINCS+ (round-3 'f'/simple parameter sets, Haraka and SHAKE backends)."""

from repro.pqc.sphincs.core import (
    SPHINCS128,
    SPHINCS192,
    SPHINCS256,
    SPHINCS_SHAKE_128F,
    SphincsSignature,
)

__all__ = [
    "SphincsSignature",
    "SPHINCS128",
    "SPHINCS192",
    "SPHINCS256",
    "SPHINCS_SHAKE_128F",
]
