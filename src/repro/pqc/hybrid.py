"""Hybrid key agreements and composite signatures.

Key agreements follow draft-ietf-tls-hybrid-design: key shares,
"ciphertexts" (server shares), and shared secrets are plain
concatenations, so both component schemes must be broken to recover the
TLS secret. Signatures follow draft-ounsworth-pq-composite-sigs: both
component signatures must verify.

The paper's naming convention is preserved: ``p256_kyber512`` is P-256
ECDH combined with Kyber-512, etc. Hybrids claim the NIST level of their
PQ component.
"""

from __future__ import annotations

from repro.crypto.constanttime import declassify
from repro.crypto.drbg import Drbg
from repro.pqc.kem import Kem
from repro.pqc.sig import SignatureScheme


class HybridKem(Kem):
    """Concatenation combiner over two KEMs (classical first)."""

    def __init__(self, name: str, classical: Kem, pq: Kem):
        self.name = name
        self.classical = classical
        self.pq = pq
        self.nist_level = pq.nist_level
        self.public_key_bytes = classical.public_key_bytes + pq.public_key_bytes
        self.ciphertext_bytes = classical.ciphertext_bytes + pq.ciphertext_bytes
        self.shared_secret_bytes = (
            classical.shared_secret_bytes + pq.shared_secret_bytes
        )
        self.client_attribution = pq.client_attribution
        self.server_attribution = pq.server_attribution

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        pk1, sk1 = self.classical.keygen(drbg)
        pk2, sk2 = self.pq.keygen(drbg)
        sk = len(sk1).to_bytes(4, "big") + sk1 + sk2
        return pk1 + pk2, sk

    def _split_sk(self, secret_key: bytes) -> tuple[bytes, bytes]:
        # the 4-byte prefix is structural (the classical component's key
        # length, a public per-scheme constant), not secret material
        sk1_len = declassify(int.from_bytes(secret_key[:4], "big"))
        return secret_key[4: 4 + sk1_len], secret_key[4 + sk1_len:]

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        if len(public_key) != self.public_key_bytes:
            raise ValueError(f"{self.name}: bad public key length")
        split = self.classical.public_key_bytes
        ct1, ss1 = self.classical.encaps(public_key[:split], drbg)
        ct2, ss2 = self.pq.encaps(public_key[split:], drbg)
        return ct1 + ct2, ss1 + ss2

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) != self.ciphertext_bytes:
            raise ValueError(f"{self.name}: bad ciphertext length")
        sk1, sk2 = self._split_sk(secret_key)
        split = self.classical.ciphertext_bytes
        ss1 = self.classical.decaps(sk1, ciphertext[:split])
        ss2 = self.pq.decaps(sk2, ciphertext[split:])
        return ss1 + ss2


class CompositeSignature(SignatureScheme):
    """Concatenation combiner over two signature schemes (classical first)."""

    def __init__(self, name: str, classical: SignatureScheme, pq: SignatureScheme):
        self.name = name
        self.classical = classical
        self.pq = pq
        self.nist_level = pq.nist_level
        self.public_key_bytes = classical.public_key_bytes + pq.public_key_bytes
        self.signature_bytes = classical.signature_bytes + pq.signature_bytes
        self.client_attribution = pq.client_attribution
        self.server_attribution = pq.server_attribution

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        pk1, sk1 = self.classical.keygen(drbg)
        pk2, sk2 = self.pq.keygen(drbg)
        sk = len(sk1).to_bytes(4, "big") + sk1 + sk2
        return pk1 + pk2, sk

    def _split_sk(self, secret_key: bytes) -> tuple[bytes, bytes]:
        # the 4-byte prefix is structural (the classical component's key
        # length, a public per-scheme constant), not secret material
        sk1_len = declassify(int.from_bytes(secret_key[:4], "big"))
        return secret_key[4: 4 + sk1_len], secret_key[4 + sk1_len:]

    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        sk1, sk2 = self._split_sk(secret_key)
        sig1 = self.classical.sign(sk1, message, drbg)
        sig2 = self.pq.sign(sk2, message, drbg)
        return sig1 + sig2

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        if len(public_key) != self.public_key_bytes:
            return False
        if len(signature) != self.signature_bytes:
            return False
        pk_split = self.classical.public_key_bytes
        sig_split = self.classical.signature_bytes
        return self.classical.verify(
            public_key[:pk_split], message, signature[:sig_split]
        ) and self.pq.verify(public_key[pk_split:], message, signature[sig_split:])
