"""HQC KEM (round-3): quasi-cyclic codes + concatenated RS–RM decoding.

The ambient ring is GF(2)[x]/(x^n - 1) with n prime; vectors are numpy bit
arrays and sparse·dense products are cyclic-shift XOR accumulations.
Wire sizes are spec-exact (hqc-128 pk 2249 B / ct 4481 B, hqc-192
4522/9026, hqc-256 7245/14469) — the largest KEM payloads in the paper's
Table 2a.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass

import numpy as np

from repro.crypto.constanttime import ct_eq_bytes, ct_select_bytes
from repro.crypto.drbg import Drbg
from repro.pqc.hqc import reedmuller
from repro.pqc.hqc.reedsolomon import ReedSolomon
from repro.pqc.kem import Kem

_SEED_LEN = 40
_SS_LEN = 64


@dataclass(frozen=True)
class _Params:
    n: int            # ambient ring length (prime)
    n1: int           # RS code length (bytes)
    k: int            # RS dimension = message bytes
    multiplicity: int  # RM duplication factor (n2 = 128 * multiplicity)
    w: int            # key weight
    wr: int           # encryption randomness weight
    we: int           # error weight

    @property
    def n2(self) -> int:
        return 128 * self.multiplicity

    @property
    def codeword_bits(self) -> int:
        return self.n1 * self.n2


_PARAM_SETS = {
    128: _Params(n=17669, n1=46, k=16, multiplicity=3, w=66, wr=75, we=75),
    192: _Params(n=35851, n1=56, k=24, multiplicity=5, w=100, wr=114, we=114),
    256: _Params(n=57637, n1=90, k=32, multiplicity=5, w=131, wr=149, we=149),
}


def _bits_to_bytes(bits: np.ndarray) -> bytes:
    return np.packbits(bits, bitorder="little").tobytes()


def _bytes_to_bits(data: bytes, nbits: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    return bits[:nbits].astype(np.uint8)


class _SeedExpander:
    """SHAKE-256-seeded stream used for all deterministic expansions."""

    def __init__(self, seed: bytes, domain: bytes):
        self._drbg = Drbg(hashlib.shake_256(domain + seed).digest(32))

    def dense_vector(self, n: int) -> np.ndarray:
        data = self._drbg.random_bytes((n + 7) // 8)
        return _bytes_to_bits(data, n)

    def sparse_support(self, n: int, weight: int) -> list[int]:
        return self._drbg.sample_distinct(n, weight)


def _sparse_mul(support: list[int], dense: np.ndarray) -> np.ndarray:
    """(sum_i x^support[i]) * dense in GF(2)[x]/(x^n - 1)."""
    acc = np.zeros_like(dense)
    for shift in support:
        acc ^= np.roll(dense, shift)
    return acc


def _sparse_to_bits(support: list[int], n: int) -> np.ndarray:
    bits = np.zeros(n, dtype=np.uint8)
    bits[support] = 1
    return bits


class HqcKem(Kem):
    """One HQC parameter set behind the generic KEM interface."""

    def __init__(self, strength: int, *, nist_level: int):
        p = _PARAM_SETS[strength]
        self._p = p
        self._rs = ReedSolomon(p.n1, p.k)
        self.name = f"hqc{strength}"
        self.nist_level = nist_level
        self._n_bytes = (p.n + 7) // 8
        self._cw_bytes = (p.codeword_bits + 7) // 8
        self.public_key_bytes = _SEED_LEN + self._n_bytes
        self.ciphertext_bytes = self._n_bytes + self._cw_bytes + _SS_LEN
        self.shared_secret_bytes = _SS_LEN

    # -- code (RS ∘ RM) ------------------------------------------------------
    def _encode(self, message: bytes) -> np.ndarray:
        return reedmuller.rm_encode(self._rs.encode(message), self._p.multiplicity)

    def _decode(self, bits: np.ndarray) -> bytes:
        symbols = reedmuller.rm_decode(bits, self._p.n1, self._p.multiplicity)
        return self._rs.decode(symbols)

    # -- PKE --------------------------------------------------------------------
    def _pke_keygen(self, pk_seed: bytes, sk_seed: bytes):
        p = self._p
        h = _SeedExpander(pk_seed, b"hqc-pk").dense_vector(p.n)
        sk_exp = _SeedExpander(sk_seed, b"hqc-sk")
        x = sk_exp.sparse_support(p.n, p.w)
        y = sk_exp.sparse_support(p.n, p.w)
        s = _sparse_to_bits(x, p.n) ^ _sparse_mul(y, h)
        return h, s, y

    def _pke_encrypt(self, h: np.ndarray, s: np.ndarray, message: bytes,
                     theta: bytes) -> tuple[np.ndarray, np.ndarray]:
        p = self._p
        exp = _SeedExpander(theta, b"hqc-enc")
        r1 = exp.sparse_support(p.n, p.wr)
        r2 = exp.sparse_support(p.n, p.wr)
        e = exp.sparse_support(p.n, p.we)
        u = _sparse_to_bits(r1, p.n) ^ _sparse_mul(r2, h)
        noise = _sparse_mul(r2, s) ^ _sparse_to_bits(e, p.n)
        v = self._encode(message) ^ noise[: p.codeword_bits]
        return u, v

    def _pke_decrypt(self, y: list[int], u: np.ndarray, v: np.ndarray) -> bytes:
        noisy = v ^ _sparse_mul(y, u)[: self._p.codeword_bits]
        return self._decode(noisy)

    # -- KEM (FO transform) --------------------------------------------------------
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        pk_seed = drbg.random_bytes(_SEED_LEN)
        sk_seed = drbg.random_bytes(_SEED_LEN)
        _, s, _ = self._pke_keygen(pk_seed, sk_seed)
        pk = pk_seed + _bits_to_bytes(s)[: self._n_bytes]
        sk = sk_seed + pk
        return pk, sk

    def _parse_pk(self, pk: bytes):
        p = self._p
        pk_seed, s_bytes = pk[:_SEED_LEN], pk[_SEED_LEN:]
        h = _SeedExpander(pk_seed, b"hqc-pk").dense_vector(p.n)
        s = _bytes_to_bits(s_bytes, p.n)
        return h, s

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        if len(public_key) != self.public_key_bytes:
            raise ValueError(f"{self.name}: bad public key length")
        p = self._p
        h, s = self._parse_pk(public_key)
        m = drbg.random_bytes(p.k)
        theta = hashlib.shake_256(b"hqc-G" + m).digest(_SEED_LEN)
        u, v = self._pke_encrypt(h, s, m, theta)
        u_bytes = _bits_to_bytes(u)[: self._n_bytes]
        v_bytes = _bits_to_bytes(v)[: self._cw_bytes]
        d = hashlib.sha512(b"hqc-H" + m).digest()
        ciphertext = u_bytes + v_bytes + d
        shared = hashlib.sha512(b"hqc-K" + m + ciphertext).digest()
        return ciphertext, shared

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) != self.ciphertext_bytes:
            raise ValueError(f"{self.name}: bad ciphertext length")
        p = self._p
        sk_seed = secret_key[:_SEED_LEN]
        pk = secret_key[_SEED_LEN:]
        h, s = self._parse_pk(pk)
        sk_exp = _SeedExpander(sk_seed, b"hqc-sk")
        sk_exp.sparse_support(p.n, p.w)  # x: not needed for decryption
        y = sk_exp.sparse_support(p.n, p.w)
        u_bytes = ciphertext[: self._n_bytes]
        v_bytes = ciphertext[self._n_bytes: self._n_bytes + self._cw_bytes]
        u = _bytes_to_bits(u_bytes, p.n)
        v = _bytes_to_bits(v_bytes, p.codeword_bits)
        try:
            m_prime = self._pke_decrypt(y, u, v)
        except ValueError:
            m_prime = b"\x00" * p.k  # decoding failure -> implicit rejection
        theta = hashlib.shake_256(b"hqc-G" + m_prime).digest(_SEED_LEN)
        u2, v2 = self._pke_encrypt(h, s, m_prime, theta)
        recomputed = (
            _bits_to_bytes(u2)[: self._n_bytes]
            + _bits_to_bytes(v2)[: self._cw_bytes]
            + hashlib.sha512(b"hqc-H" + m_prime).digest()
        )
        # FO implicit rejection, branchlessly: both keys derived, then
        # selected on the recomputation mask (the spec's verify + cmov)
        accept = hashlib.sha512(b"hqc-K" + m_prime + ciphertext).digest()
        reject = hashlib.sha512(b"hqc-reject" + sk_seed + ciphertext).digest()
        return ct_select_bytes(ct_eq_bytes(recomputed, ciphertext), accept, reject)


HQC128 = HqcKem(128, nist_level=1)
HQC192 = HqcKem(192, nist_level=3)
HQC256 = HqcKem(256, nist_level=5)


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import hqc as _fast  # noqa: E402

_kernels.bind(sys.modules[__name__], "_sparse_mul",
              ref=_sparse_mul, fast=_fast.sparse_mul)
