"""HQC (round-3) code-based KEM — 128 / 192 / 256."""

from repro.pqc.hqc.kem import HQC128, HQC192, HQC256, HqcKem

__all__ = ["HqcKem", "HQC128", "HQC192", "HQC256"]
