"""Duplicated first-order Reed–Muller RM(1,7): HQC's inner code.

Each GF(256) symbol of the outer RS codeword becomes a 128-bit RM(1,7)
codeword repeated ``multiplicity`` times (3 for hqc-128, 5 for 192/256).
Decoding is maximum-likelihood via the fast Walsh–Hadamard transform
("Green machine"): the duplicated copies are summed into a soft vector,
transformed, and the largest component picks the information byte.
``PQTLS_KERNELS=fast`` (default) swaps ``rm_decode`` for the batched
transform in ``repro.crypto.kernels.hqc``; call it through the module
so rebinding takes effect.
"""

from __future__ import annotations

import sys

import numpy as np

_RM_BITS = 128


def _encode_table() -> np.ndarray:
    """All 256 RM(1,7) codewords as a (256, 128) bit matrix.

    Message byte m: bit 7 (MSB) is the all-ones row a0; bits 0..6 select
    the linear-form rows, codeword[i] = a0 ^ <a, bits(i)>.
    """
    table = np.zeros((256, _RM_BITS), dtype=np.uint8)
    positions = np.arange(_RM_BITS, dtype=np.uint16)
    for m in range(256):
        acc = np.zeros(_RM_BITS, dtype=np.uint8)
        for j in range(7):
            if (m >> j) & 1:
                acc ^= ((positions >> j) & 1).astype(np.uint8)
        if m & 0x80:
            acc ^= 1
        table[m] = acc
    return table


_TABLE = _encode_table()


def rm_encode(symbols: bytes, multiplicity: int) -> np.ndarray:
    """Encode bytes to a bit array of len(symbols) * 128 * multiplicity."""
    codewords = _TABLE[np.frombuffer(bytes(symbols), dtype=np.uint8)]
    duplicated = np.repeat(codewords[:, None, :], multiplicity, axis=1)
    return duplicated.reshape(-1).astype(np.uint8)


def _hadamard(vector: np.ndarray) -> np.ndarray:
    """In-place fast Walsh–Hadamard transform of a length-128 int vector."""
    v = vector.astype(np.int32)
    h = 1
    while h < _RM_BITS:
        v = v.reshape(-1, 2 * h)
        left = v[:, :h].copy()
        right = v[:, h:].copy()
        v[:, :h] = left + right
        v[:, h:] = left - right
        v = v.reshape(-1)
        h *= 2
    return v


def rm_decode(bits: np.ndarray, n1: int, multiplicity: int) -> bytes:
    """ML-decode n1 duplicated RM(1,7) codewords back to n1 bytes."""
    expected = n1 * _RM_BITS * multiplicity
    if bits.shape[0] != expected:
        raise ValueError(f"expected {expected} bits, got {bits.shape[0]}")
    blocks = bits.reshape(n1, multiplicity, _RM_BITS)
    # soft values: +1 for bit 0, -1 for bit 1, summed over copies
    soft = (multiplicity - 2 * blocks.sum(axis=1)).astype(np.int32)
    out = bytearray()
    for row in soft:
        transformed = _hadamard(row)
        index = int(np.argmax(np.abs(transformed)))
        byte = index
        if transformed[index] < 0:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import hqc as _fast  # noqa: E402

_kernels.bind(sys.modules[__name__], "rm_decode",
              ref=rm_decode, fast=_fast.rm_decode)
