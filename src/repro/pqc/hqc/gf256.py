"""GF(2^8) arithmetic with the HQC/AES-adjacent polynomial x^8+x^4+x^3+x^2+1.

``PQTLS_KERNELS=fast`` (default) swaps ``poly_mul`` for the flat
product-table kernel in ``repro.crypto.kernels.gf256``; call it through
the module (``gf256.poly_mul(...)``) so rebinding takes effect.
"""

from __future__ import annotations

import sys

_POLY = 0x11D


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


EXP, LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("inverse of 0 in GF(256)")
    return EXP[255 - LOG[a]]


def gf_div(a: int, b: int) -> int:
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, e: int) -> int:
    if a == 0:
        return 0 if e else 1
    return EXP[(LOG[a] * e) % 255]


def poly_mul(a: list[int], b: list[int]) -> list[int]:
    """Multiply polynomials with coefficients in GF(256) (index = degree)."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj:
                out[i + j] ^= gf_mul(ai, bj)
    return out


def poly_eval(poly: list[int], x: int) -> int:
    """Horner evaluation."""
    acc = 0
    for coeff in reversed(poly):
        acc = gf_mul(acc, x) ^ coeff
    return acc


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import gf256 as _fast  # noqa: E402

_kernels.bind(sys.modules[__name__], "poly_mul",
              ref=poly_mul, fast=_fast.poly_mul)
