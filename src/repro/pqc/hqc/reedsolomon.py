"""Shortened Reed–Solomon codes over GF(256): HQC's outer code.

Systematic encoding, and decoding via syndromes → Berlekamp–Massey →
Chien search → Forney, correcting up to ``delta`` symbol errors.

The evaluation-heavy stages (encode LFSR, syndromes, Chien search) live
in module-level functions so ``PQTLS_KERNELS=fast`` (default) can swap
them for the table-gather kernels in ``repro.crypto.kernels.hqc``; the
class calls them as module globals so rebinding takes effect.
"""

from __future__ import annotations

import sys

from repro.pqc.hqc import gf256
from repro.pqc.hqc.gf256 import gf_div, gf_mul, gf_pow, poly_eval


def _poly_add(a: list[int], b: list[int]) -> list[int]:
    size = max(len(a), len(b))
    return [
        (a[i] if i < len(a) else 0) ^ (b[i] if i < len(b) else 0)
        for i in range(size)
    ]


def _poly_deriv(p: list[int]) -> list[int]:
    """Formal derivative in characteristic 2: keep odd-degree terms."""
    return [p[i] if i % 2 == 1 else 0 for i in range(1, len(p))]


def rs_encode(message: bytes, gen: list[int], n: int, k: int) -> bytes:
    """Systematic RS encoding: codeword = parity || message (degree order)."""
    parity_len = n - k
    remainder = [0] * parity_len + list(message)
    for i in range(n - 1, parity_len - 1, -1):
        coeff = remainder[i]
        if coeff:
            shift = i - (len(gen) - 1)
            for j, gj in enumerate(gen):
                remainder[shift + j] ^= gf_mul(coeff, gj)
    return bytes(remainder[:parity_len]) + message


def rs_syndromes(word: list[int], delta: int) -> list[int]:
    """Evaluate the received word at alpha^1 .. alpha^(2*delta)."""
    return [poly_eval(word, gf_pow(2, i)) for i in range(1, 2 * delta + 1)]


def rs_chien(sigma: list[int], n: int) -> list[int]:
    """Positions p in 0..n-1 with sigma(alpha^-p) == 0, ascending."""
    return [
        pos for pos in range(n)
        if poly_eval(sigma, gf_pow(2, (255 - pos) % 255)) == 0
    ]


class ReedSolomon:
    """[n, k] shortened RS code with design distance 2*delta + 1."""

    def __init__(self, n: int, k: int):
        if n - k <= 0 or (n - k) % 2:
            raise ValueError("n - k must be a positive even number")
        if n > 255:
            raise ValueError("RS over GF(256) needs n <= 255")
        self.n = n
        self.k = k
        self.delta = (n - k) // 2
        # generator polynomial: product of (x + alpha^i), i = 1..2*delta
        g = [1]
        for i in range(1, 2 * self.delta + 1):
            g = gf256.poly_mul(g, [gf_pow(2, i), 1])
        self._gen = g

    def encode(self, message: bytes) -> bytes:
        """Systematic encoding: codeword = parity || message (degree order)."""
        if len(message) != self.k:
            raise ValueError(f"message must be {self.k} bytes")
        return rs_encode(bytes(message), self._gen, self.n, self.k)

    def _syndromes(self, codeword) -> list[int]:
        return rs_syndromes(list(codeword), self.delta)

    def decode(self, received: bytes) -> bytes:
        """Correct up to delta symbol errors; return the message part.

        Raises ValueError when the error weight exceeds the decoding radius.
        """
        if len(received) != self.n:
            raise ValueError(f"received word must be {self.n} bytes")
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return bytes(received[self.n - self.k:])

        # Berlekamp–Massey
        sigma = [1]
        prev = [1]
        length = 0
        gap = 1
        b = 1
        for i, s in enumerate(syndromes):
            d = s
            for j in range(1, length + 1):
                if j < len(sigma):
                    d ^= gf_mul(sigma[j], syndromes[i - j])
            if d == 0:
                gap += 1
                continue
            correction = [0] * gap + [gf_mul(gf_div(d, b), c) for c in prev]
            if 2 * length <= i:
                prev, sigma = sigma, _poly_add(sigma, correction)
                length = i + 1 - length
                b = d
                gap = 1
            else:
                sigma = _poly_add(sigma, correction)
                gap += 1
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        num_errors = len(sigma) - 1
        if num_errors > self.delta:
            raise ValueError("too many errors for RS decoder")

        # Chien search: roots of sigma are inverse error locators alpha^-pos
        positions = rs_chien(sigma, self.n)
        if len(positions) != num_errors:
            raise ValueError("error locator does not split (decoding failure)")

        # Forney error values (narrow-sense code, b = 1)
        omega = gf256.poly_mul(syndromes, sigma)[: 2 * self.delta]
        sigma_deriv = _poly_deriv(sigma)
        corrected = bytearray(received)
        for pos in positions:
            x_inv = gf_pow(2, (255 - pos) % 255)
            denominator = poly_eval(sigma_deriv, x_inv)
            if denominator == 0:
                raise ValueError("Forney denominator vanished (decoding failure)")
            magnitude = gf_div(poly_eval(omega, x_inv), denominator)
            corrected[pos] ^= magnitude
        if any(self._syndromes(corrected)):
            raise ValueError("residual syndrome after correction")
        return bytes(corrected[self.n - self.k:])


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import hqc as _fast  # noqa: E402

_kernels.bind(sys.modules[__name__], "rs_encode",
              ref=rs_encode, fast=_fast.rs_encode)
_kernels.bind(sys.modules[__name__], "rs_syndromes",
              ref=rs_syndromes, fast=_fast.rs_syndromes)
_kernels.bind(sys.modules[__name__], "rs_chien",
              ref=rs_chien, fast=_fast.rs_chien)
