"""Post-quantum cryptography substrate.

Every KEM and signature algorithm the paper measures, implemented from
scratch: Kyber (+90s), Dilithium (+AES), Falcon, SPHINCS+, HQC, BIKE, the
classical algorithms wrapped behind the same interfaces, and the hybrid
combiners. ``repro.pqc.registry`` exposes them by the paper's names
(``kyber512``, ``p256_dilithium2``, ``rsa:2048``, ...).
"""

from repro.pqc.kem import Kem
from repro.pqc.sig import SignatureScheme

__all__ = ["Kem", "SignatureScheme"]
