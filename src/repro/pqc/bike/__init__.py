"""BIKE (round-3) QC-MDPC KEM — levels 1 and 3."""

from repro.pqc.bike.kem import BIKEL1, BIKEL3, BikeKem

__all__ = ["BikeKem", "BIKEL1", "BIKEL3"]
