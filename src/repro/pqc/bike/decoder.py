"""Black-Gray-Flip (BGF) decoder for QC-MDPC syndromes.

The BIKE round-3 decoder: iterative bit flipping with the specification's
affine thresholds, a black/gray refinement pass on the first iteration,
and unsatisfied-parity-check counting done with cyclic shifts.
"""

from __future__ import annotations

import numpy as np

from repro.pqc.bike import ring


class BgfDecoder:
    """Decodes a syndrome to the (e0, e1) error pattern, or fails."""

    def __init__(self, r: int, d: int, t: int, threshold_coeffs: tuple[float, float, int],
                 iterations: int = 7):
        self.r = r
        self.d = d  # column weight (weight of each h_i)
        self.t = t
        self._a, self._b, self._min = threshold_coeffs
        self.iterations = iterations

    def _threshold(self, syndrome_weight: int) -> int:
        import math
        return max(int(math.ceil(self._a * syndrome_weight + self._b)), self._min)

    def _upc(self, syndrome: np.ndarray, support: np.ndarray) -> np.ndarray:
        """Unsatisfied parity-check counts for one circulant block."""
        counts = np.zeros(self.r, dtype=np.int32)
        for k in support:
            counts += np.roll(syndrome, -int(k)).astype(np.int32)
        return counts

    def decode(self, syndrome: np.ndarray, h_supports: list[np.ndarray]) -> np.ndarray | None:
        """Return the length-2r error bit vector, or None on failure."""
        r = self.r
        e = np.zeros(2 * r, dtype=np.uint8)
        s = syndrome.copy()
        for iteration in range(self.iterations):
            weight = int(s.sum())
            if weight == 0:
                break
            threshold = self._threshold(weight)
            black = np.zeros(2 * r, dtype=bool)
            gray = np.zeros(2 * r, dtype=bool)
            for block, support in enumerate(h_supports):
                upc = self._upc(s, support)
                flip = upc >= threshold
                gray_mask = (~flip) & (upc >= threshold - 3)
                idx = np.nonzero(flip)[0]
                if idx.size:
                    e[block * r + idx] ^= 1
                    for j in idx:
                        s ^= np.roll(self._hbits(support), int(j))
                black[block * r: (block + 1) * r] = flip
                gray[block * r: (block + 1) * r] = gray_mask
            if iteration == 0:
                # black step: re-evaluate freshly flipped positions
                for mask in (black, gray):
                    th2 = (self.d + 1) // 2 + 1
                    for block, support in enumerate(h_supports):
                        upc = self._upc(s, support)
                        flip = (upc >= th2) & mask[block * r: (block + 1) * r]
                        idx = np.nonzero(flip)[0]
                        if idx.size:
                            e[block * r + idx] ^= 1
                            for j in idx:
                                s ^= np.roll(self._hbits(support), int(j))
        if int(s.sum()) != 0:
            return None
        return e

    def _hbits(self, support: np.ndarray) -> np.ndarray:
        key = support.tobytes()
        cache = getattr(self, "_hbits_cache", None)
        if cache is None:
            cache = {}
            self._hbits_cache = cache
        bits = cache.get(key)
        if bits is None:
            bits = ring.support_to_bits(support, self.r)
            cache[key] = bits
        return bits
