"""BIKE KEM (round-3): Niederreiter QC-MDPC with the BGF decoder.

Wire sizes are spec-exact: bikel1 pk 1541 B / ct 1573 B, bikel3 pk 3083 B /
ct 3115 B. The paper's white-box quirk — BIKE's client-side computation
showing up in libssl rather than libcrypto (Table 3) — is modelled via the
``client_attribution`` tag the profiler reads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.crypto.drbg import Drbg
from repro.pqc.bike import ring
from repro.pqc.bike.decoder import BgfDecoder
from repro.pqc.kem import Kem

_SS_LEN = 32


@dataclass(frozen=True)
class _Params:
    r: int
    d: int   # weight of each h_i (w = 2d)
    t: int   # error weight
    thresholds: tuple[float, float, int]


_PARAM_SETS = {
    1: _Params(r=12323, d=71, t=134, thresholds=(0.0069722, 13.530, 36)),
    3: _Params(r=24659, d=103, t=199, thresholds=(0.005265, 15.2588, 52)),
}


def _expand_error(seed: bytes, r: int, t: int) -> np.ndarray:
    """H: derive a weight-t error pattern over 2r positions from a seed."""
    drbg = Drbg(hashlib.shake_256(b"bike-H" + seed).digest(32))
    support = drbg.sample_distinct(2 * r, t)
    e = np.zeros(2 * r, dtype=np.uint8)
    e[support] = 1
    return e


def _hash_l(e: np.ndarray) -> bytes:
    return hashlib.shake_256(b"bike-L" + e.tobytes()).digest(32)


def _hash_k(m: bytes, c0: bytes, c1: bytes) -> bytes:
    return hashlib.shake_256(b"bike-K" + m + c0 + c1).digest(_SS_LEN)


class BikeKem(Kem):
    """One BIKE level behind the generic KEM interface."""

    # The paper observed BIKE's client computation lives in libssl.
    client_attribution = "libssl"

    def __init__(self, level: int):
        p = _PARAM_SETS[level]
        self._p = p
        self.name = f"bikel{level}"
        self.nist_level = level
        self._r_bytes = (p.r + 7) // 8
        self.public_key_bytes = self._r_bytes
        self.ciphertext_bytes = self._r_bytes + 32
        self.shared_secret_bytes = _SS_LEN
        self._decoder = BgfDecoder(p.r, p.d, p.t, p.thresholds)

    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        p = self._p
        h0_support = np.array(sorted(drbg.sample_distinct(p.r, p.d)), dtype=np.int64)
        h1_support = np.array(sorted(drbg.sample_distinct(p.r, p.d)), dtype=np.int64)
        sigma = drbg.random_bytes(32)
        h0_bits = ring.support_to_bits(h0_support, p.r)
        h1_bits = ring.support_to_bits(h1_support, p.r)
        h0_inv = ring.inverse(h0_bits, p.r)
        h = ring.mul(h1_bits, h0_inv, p.r)
        pk = ring.to_bytes(h)[: self._r_bytes]
        sk = (
            np.int64(p.d).tobytes()
            + h0_support.tobytes()
            + h1_support.tobytes()
            + sigma
            + pk
        )
        return pk, sk

    def _parse_sk(self, sk: bytes):
        p = self._p
        offset = 8
        h0 = np.frombuffer(sk[offset: offset + 8 * p.d], dtype=np.int64)
        offset += 8 * p.d
        h1 = np.frombuffer(sk[offset: offset + 8 * p.d], dtype=np.int64)
        offset += 8 * p.d
        sigma = sk[offset: offset + 32]
        pk = sk[offset + 32:]
        return h0, h1, sigma, pk

    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        if len(public_key) != self.public_key_bytes:
            raise ValueError(f"{self.name}: bad public key length")
        p = self._p
        h = ring.from_bytes(public_key, p.r)
        m = drbg.random_bytes(32)
        e = _expand_error(m, p.r, p.t)
        e0, e1 = e[: p.r], e[p.r:]
        c0_bits = e0 ^ ring.mul(e1, h, p.r)
        c0 = ring.to_bytes(c0_bits)[: self._r_bytes]
        c1 = bytes(a ^ b for a, b in zip(m, _hash_l(e)))
        shared = _hash_k(m, c0, c1)
        return c0 + c1, shared

    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) != self.ciphertext_bytes:
            raise ValueError(f"{self.name}: bad ciphertext length")
        p = self._p
        h0, h1, sigma, _pk = self._parse_sk(secret_key)
        c0 = ciphertext[: self._r_bytes]
        c1 = ciphertext[self._r_bytes:]
        c0_bits = ring.from_bytes(c0, p.r)
        syndrome = ring.sparse_mul(h0, c0_bits)
        e = self._decoder.decode(syndrome, [h0, h1])  # pqtls: allow[CT101] — BGF decoder iterations are ciphertext-dependent by design; the paper measures exactly this variability
        if e is None or int(e.sum()) != p.t:
            return _hash_k(sigma, c0, c1)  # implicit rejection
        m_prime = bytes(a ^ b for a, b in zip(c1, _hash_l(e)))
        if not np.array_equal(_expand_error(m_prime, p.r, p.t), e):
            return _hash_k(sigma, c0, c1)
        return _hash_k(m_prime, c0, c1)


BIKEL1 = BikeKem(1)
BIKEL3 = BikeKem(3)
