"""Arithmetic in GF(2)[x]/(x^r - 1) for BIKE's quasi-cyclic codes.

Dense multiplication runs through a real-FFT convolution (exact for these
sizes: coefficient counts stay far below 2^53), squaring is the index
permutation i -> 2i mod r, and inversion uses the Itoh–Tsujii addition
chain over Fermat's little theorem — squarings are free permutations, so
only ~log2(r) dense multiplications are needed.
"""

from __future__ import annotations

import numpy as np


def _fft_size(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


def mul(a: np.ndarray, b: np.ndarray, r: int) -> np.ndarray:
    """Dense GF(2) polynomial product modulo x^r - 1."""
    size = _fft_size(2 * r)
    fa = np.fft.rfft(a.astype(np.float64), size)
    fb = np.fft.rfft(b.astype(np.float64), size)
    conv = np.rint(np.fft.irfft(fa * fb, size)).astype(np.int64)
    counts = conv[:r].copy()
    counts[: len(conv) - r] += conv[r: 2 * r]
    return (counts & 1).astype(np.uint8)


def sparse_mul(support: list[int] | np.ndarray, dense: np.ndarray) -> np.ndarray:
    """(sum x^i for i in support) * dense, via cyclic shifts."""
    acc = np.zeros_like(dense)
    for shift in support:
        acc ^= np.roll(dense, int(shift))
    return acc


def square_k(a: np.ndarray, k: int, r: int) -> np.ndarray:
    """a^(2^k): coefficient at i moves to i * 2^k mod r."""
    factor = pow(2, k, r)
    indices = (np.arange(r, dtype=np.int64) * factor) % r
    out = np.zeros(r, dtype=np.uint8)
    out[indices] = a
    return out


def inverse(a: np.ndarray, r: int) -> np.ndarray:
    """a^{-1} via Itoh–Tsujii (requires odd-weight a, and BIKE's r: prime
    with 2 primitive mod r, so x^r - 1 = (x - 1) * irreducible).

    The ring splits as F2 x F_{2^(r-1)}; inversion is exponentiation by
    2^(r-1) - 2 = 2 * (2^(r-2) - 1), so we build f_k = a^(2^k - 1) along
    the binary expansion of r - 2 and square once at the end.
    """
    exponent = r - 2
    bits = bin(exponent)[2:]
    f = a.copy()          # f = a^(2^1 - 1), covered exponent length = 1
    covered = 1
    for bit in bits[1:]:
        f = mul(square_k(f, covered, r), f, r)  # doubles covered
        covered *= 2
        if bit == "1":
            f = mul(square_k(f, 1, r), a, r)
            covered += 1
    result = square_k(f, 1, r)
    return result


def to_bytes(bits: np.ndarray) -> bytes:
    return np.packbits(bits, bitorder="little").tobytes()


def from_bytes(data: bytes, r: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    return bits[:r].astype(np.uint8)


def support_to_bits(support: list[int] | np.ndarray, r: int) -> np.ndarray:
    bits = np.zeros(r, dtype=np.uint8)
    bits[list(support)] = 1
    return bits
