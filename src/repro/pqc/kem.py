"""The KEM interface every key agreement implements.

TLS 1.3 key shares map naturally onto a KEM: the client's key share is a
KEM public key, the server's key share is a KEM ciphertext (encapsulation),
and classical (EC)DH fits the same shape with "ciphertext" = the server's
ephemeral public key. This is exactly the framing of the hybrid KEX draft
the paper's OpenSSL fork implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.drbg import Drbg


class Kem(ABC):
    """Key encapsulation mechanism with fixed wire sizes.

    Attributes
    ----------
    name: the paper's algorithm name (e.g. ``kyber512``).
    nist_level: claimed NIST security level (1, 3 or 5).
    public_key_bytes / ciphertext_bytes / shared_secret_bytes: wire sizes.
    client_attribution / server_attribution: which library the paper's
        white-box profiling charges this algorithm's work to (``libcrypto``
        for OpenSSL-native and liboqs code, ``libssl`` for BIKE's
        client-side integration — the quirk Table 3 highlights).
    """

    name: str
    nist_level: int
    public_key_bytes: int
    ciphertext_bytes: int
    shared_secret_bytes: int
    client_attribution: str = "libcrypto"
    server_attribution: str = "libcrypto"

    @abstractmethod
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        """Return (public_key, secret_key)."""

    @abstractmethod
    def encaps(self, public_key: bytes, drbg: Drbg) -> tuple[bytes, bytes]:
        """Return (ciphertext, shared_secret)."""

    @abstractmethod
    def decaps(self, secret_key: bytes, ciphertext: bytes) -> bytes:
        """Return the shared secret."""

    # -- convenience ------------------------------------------------------
    def check_sizes(self, public_key: bytes, ciphertext: bytes, shared: bytes) -> None:
        """Assert an exchange produced the advertised wire sizes."""
        if len(public_key) != self.public_key_bytes:
            raise AssertionError(
                f"{self.name}: pk is {len(public_key)} B, expected {self.public_key_bytes}")
        if len(ciphertext) != self.ciphertext_bytes:
            raise AssertionError(
                f"{self.name}: ct is {len(ciphertext)} B, expected {self.ciphertext_bytes}")
        if len(shared) != self.shared_secret_bytes:
            raise AssertionError(
                f"{self.name}: ss is {len(shared)} B, expected {self.shared_secret_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kem {self.name} L{self.nist_level}>"
