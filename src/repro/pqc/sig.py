"""The signature interface every handshake-signature algorithm implements."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.crypto.drbg import Drbg


class SignatureScheme(ABC):
    """Digital signature scheme with fixed (maximum) wire sizes.

    ``signature_bytes`` is the wire size our TLS stack reserves; schemes
    with slightly variable signatures (Falcon, ECDSA-in-composite) pad to
    this size so certificates and CertificateVerify have deterministic
    lengths, mirroring how the paper's tables report one size per run.
    """

    name: str
    nist_level: int
    public_key_bytes: int
    signature_bytes: int
    client_attribution: str = "libcrypto"
    server_attribution: str = "libcrypto"

    @abstractmethod
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        """Return (public_key, secret_key)."""

    @abstractmethod
    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        """Return a signature of exactly ``signature_bytes`` bytes."""

    @abstractmethod
    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        """Return True iff the signature is valid (never raises)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sig {self.name} L{self.nist_level}>"
