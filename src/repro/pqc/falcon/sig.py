"""Falcon-512 / Falcon-1024 signatures.

Key generation is the real NTRUSolve pipeline; verification is the spec
equation (s1 = c - s2*h mod q, squared-norm bound); signature and public
key encodings are the spec's padded formats, so wire sizes are exact
(pk 897/1793 B, sig 666/1280 B).

Documented substitution (DESIGN.md): signing computes (s1, s2) by a
deterministic Babai *nearest-plane* step against the module-Gram-Schmidt
of the secret basis [[g, -f], [G, -F]] instead of the randomized
ffSampling Gaussian sampler. Signatures are genuinely short (shorter than
Falcon's, in fact) and verify under the spec equation, but their
distribution leaks the basis statistically — fine for a performance study,
not for production use.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.crypto.drbg import Drbg
from repro.pqc.falcon.ntrugen import NtruSolveError, _neg_fft, _neg_ifft, ntru_solve, verify_ntru
from repro.pqc.falcon.ntt import Q, FalconNtt
from repro.pqc.sig import SignatureScheme

_SALT_LEN = 40
_HEAD_SIG = 0x30
_MAX_KEYGEN_ATTEMPTS = 64
_MAX_SALT_ATTEMPTS = 64


@dataclass(frozen=True)
class _Params:
    n: int
    sig_bytes: int    # padded signature size
    pk_bytes: int
    beta_sq: int      # squared-norm acceptance bound


_PARAM_SETS = {
    512: _Params(n=512, sig_bytes=666, pk_bytes=897, beta_sq=34034726),
    1024: _Params(n=1024, sig_bytes=1280, pk_bytes=1793, beta_sq=70265242),
}


def _hash_to_point(data: bytes, n: int) -> list[int]:
    """SHAKE-256 rejection sampling of a uniform mod-q polynomial."""
    k = (1 << 16) // Q  # = 5
    bound = k * Q
    out: list[int] = []
    length = 2 * n * 2
    stream = hashlib.shake_256(data).digest(length)
    offset = 0
    while len(out) < n:
        if offset + 2 > len(stream):
            length *= 2
            stream = hashlib.shake_256(data).digest(length)
        value = (stream[offset] << 8) | stream[offset + 1]
        offset += 2
        if value < bound:
            out.append(value % Q)
    return out


def _gaussian_small(drbg: Drbg, sigma: float) -> int:
    """Small discrete Gaussian via Box–Muller + rounding (keygen only)."""
    u1 = max(drbg.random(), 1e-12)
    u2 = drbg.random()
    return round(sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2))


class FalconSignature(SignatureScheme):
    """One Falcon parameter set behind the generic signature interface."""

    def __init__(self, n: int, *, nist_level: int):
        p = _PARAM_SETS[n]
        self._p = p
        self.name = f"falcon{n}"
        self.nist_level = nist_level
        self.public_key_bytes = p.pk_bytes
        self.signature_bytes = p.sig_bytes
        self._ntt = FalconNtt(n)
        self._sigma_fg = 1.17 * math.sqrt(Q / (2.0 * n))

    # -- key generation -------------------------------------------------------
    def keygen(self, drbg: Drbg) -> tuple[bytes, bytes]:
        n = self._p.n
        for _ in range(_MAX_KEYGEN_ATTEMPTS):
            f = [_gaussian_small(drbg, self._sigma_fg) for _ in range(n)]
            g = [_gaussian_small(drbg, self._sigma_fg) for _ in range(n)]
            if not self._ntt.is_invertible(f):
                continue
            try:
                F, G = ntru_solve(f, g)
            except NtruSolveError:
                continue
            if not verify_ntru(f, g, F, G):
                continue
            h = self._ntt.div(g, f)
            return self._encode_pk(h), self._encode_sk(f, g, F, G, h)
        raise RuntimeError(f"{self.name}: key generation failed to converge")

    def _encode_pk(self, h: list[int]) -> bytes:
        n = self._p.n
        logn = n.bit_length() - 1
        acc = 0
        acc_bits = 0
        out = bytearray([0x00 + logn])
        for coeff in h:
            acc = (acc << 14) | coeff
            acc_bits += 14
            while acc_bits >= 8:
                out.append((acc >> (acc_bits - 8)) & 0xFF)
                acc_bits -= 8
        if acc_bits:
            out.append((acc << (8 - acc_bits)) & 0xFF)
        if len(out) != self._p.pk_bytes:
            raise AssertionError(f"pk encoding produced {len(out)} bytes")
        return bytes(out)

    def _decode_pk(self, data: bytes) -> list[int]:
        n = self._p.n
        if len(data) != self._p.pk_bytes or data[0] != (0x00 + n.bit_length() - 1):
            raise ValueError("bad Falcon public key")
        acc = 0
        acc_bits = 0
        out = []
        for byte in data[1:]:
            acc = (acc << 8) | byte
            acc_bits += 8
            if acc_bits >= 14:
                coeff = (acc >> (acc_bits - 14)) & 0x3FFF
                acc_bits -= 14
                if len(out) < n:
                    if coeff >= Q:
                        raise ValueError("pk coefficient out of range")
                    out.append(coeff)
        if len(out) != n:
            raise ValueError("truncated Falcon public key")
        return out

    def _encode_sk(self, f, g, F, G, h) -> bytes:
        import json

        payload = json.dumps({"f": f, "g": g, "F": F, "G": G, "h": h})
        return payload.encode()

    def _decode_sk(self, data: bytes):
        import json

        obj = json.loads(data.decode())
        return obj["f"], obj["g"], obj["F"], obj["G"], obj["h"]

    # -- signature compression (spec §3.11.2) ------------------------------------
    def _compress(self, s2: list[int], budget_bytes: int) -> bytes | None:
        bits = []
        for coeff in s2:
            sign = 1 if coeff < 0 else 0
            mag = -coeff if coeff < 0 else coeff
            if mag >= (1 << 12):
                return None
            bits.append(sign)
            for i in range(6, -1, -1):
                bits.append((mag >> i) & 1)
            bits.extend([0] * (mag >> 7))
            bits.append(1)
        if len(bits) > 8 * budget_bytes:
            return None
        out = bytearray(budget_bytes)
        for i, bit in enumerate(bits):
            if bit:
                out[i // 8] |= 0x80 >> (i % 8)
        return bytes(out)

    def _decompress(self, data: bytes, n: int) -> list[int] | None:
        bits = []
        for byte in data:
            for i in range(7, -1, -1):
                bits.append((byte >> i) & 1)
        out = []
        pos = 0
        try:
            for _ in range(n):
                sign = bits[pos]
                pos += 1
                mag = 0
                for _ in range(7):
                    mag = (mag << 1) | bits[pos]
                    pos += 1
                high = 0
                while bits[pos] == 0:
                    high += 1
                    pos += 1
                pos += 1
                mag |= high << 7
                if sign and mag == 0:
                    return None  # non-canonical -0
                out.append(-mag if sign else mag)
        except IndexError:
            return None
        if any(bits[pos:]):
            return None  # padding must be zero
        return out

    # -- signing -------------------------------------------------------------------
    def sign(self, secret_key: bytes, message: bytes, drbg: Drbg) -> bytes:
        p = self._p
        n = p.n
        f, g, F, G, _h = self._decode_sk(secret_key)
        f_fft = _neg_fft(f)
        g_fft = _neg_fft(g)
        F_fft = _neg_fft(F)
        G_fft = _neg_fft(G)
        logn = n.bit_length() - 1
        # Module Gram-Schmidt of the basis b1 = (g, -f), b2 = (G, -F),
        # done pointwise in the FFT domain (precomputed once per key).
        d11 = g_fft * np.conj(g_fft) + f_fft * np.conj(f_fft)
        proj = (G_fft * np.conj(g_fft) + F_fft * np.conj(f_fft)) / d11
        b2gs_0 = G_fft - proj * g_fft
        b2gs_1 = -F_fft + proj * f_fft
        d22 = b2gs_0 * np.conj(b2gs_0) + b2gs_1 * np.conj(b2gs_1)
        for _ in range(_MAX_SALT_ATTEMPTS):
            salt = drbg.random_bytes(_SALT_LEN)
            c = _hash_to_point(salt + message, n)
            c_fft = _neg_fft(c)
            # Nearest-plane against the module-GS basis: project the target
            # (c, 0) onto b2~ first, then reduce the remainder against b1.
            y = np.rint(_neg_ifft(c_fft * np.conj(b2gs_0) / d22)).astype(np.int64)
            y_fft = _neg_fft(y)
            t0 = c_fft - y_fft * G_fft
            t1 = y_fft * F_fft
            x = np.rint(
                _neg_ifft((t0 * np.conj(g_fft) - t1 * np.conj(f_fft)) / d11)
            ).astype(np.int64)
            x_fft = _neg_fft(x)
            s1 = np.rint(_neg_ifft(t0 - x_fft * g_fft)).astype(np.int64)
            s2 = np.rint(_neg_ifft(t1 + x_fft * f_fft)).astype(np.int64)
            norm = int((s1 * s1).sum() + (s2 * s2).sum())
            if norm > p.beta_sq:
                continue
            compressed = self._compress([int(v) for v in s2], p.sig_bytes - 1 - _SALT_LEN)
            if compressed is None:
                continue
            return bytes([_HEAD_SIG + logn]) + salt + compressed
        raise RuntimeError(f"{self.name}: signing failed to produce a short signature")

    # -- verification ------------------------------------------------------------------
    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        p = self._p
        n = p.n
        if len(signature) != p.sig_bytes:
            return False
        logn = n.bit_length() - 1
        if signature[0] != _HEAD_SIG + logn:
            return False
        try:
            h = self._decode_pk(public_key)
        except ValueError:
            return False
        salt = signature[1: 1 + _SALT_LEN]
        s2 = self._decompress(signature[1 + _SALT_LEN:], n)
        if s2 is None:
            return False
        c = _hash_to_point(salt + message, n)
        s2h = self._ntt.mul([v % Q for v in s2], h)
        norm = 0
        for ci, s2hi, s2i in zip(c, s2h, s2):
            s1 = (ci - s2hi) % Q
            if s1 > Q // 2:
                s1 -= Q
            norm += s1 * s1 + s2i * s2i
        return norm <= p.beta_sq


FALCON512 = FalconSignature(512, nist_level=1)
FALCON1024 = FalconSignature(1024, nist_level=5)
