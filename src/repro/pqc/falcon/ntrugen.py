"""NTRUSolve: given small f, g, find F, G with f*G - g*F = q in Z[x]/(x^n+1).

The classic tower-of-fields recursion (field norms down to integers, lift,
then Babai-reduce F, G against f, g). The reduction follows falcon.py's
scheme: scale the big coefficients down to 53-bit floats, compute the
rounding quotient k in the (negacyclic) FFT domain with numpy, and apply
the exact integer update — repeating until k vanishes.
"""

from __future__ import annotations

import numpy as np

from repro.pqc.falcon import polyint as pz

Q = 12289


class NtruSolveError(Exception):
    """Raised when (f, g) admits no solution — caller resamples."""


def _xgcd(a: int, b: int) -> tuple[int, int, int]:
    r0, r1 = a, b
    s0, s1, t0, t1 = 1, 0, 0, 1
    while r1:
        quotient = r0 // r1
        r0, r1 = r1, r0 - quotient * r1
        s0, s1 = s1, s0 - quotient * s1
        t0, t1 = t1, t0 - quotient * t1
    return r0, s0, t0


def _neg_fft(a: list[float] | np.ndarray) -> np.ndarray:
    """Negacyclic FFT: evaluate at the odd 2n-th roots of unity."""
    n = len(a)
    twist = np.exp(1j * np.pi * np.arange(n) / n)
    return np.fft.fft(np.asarray(a, dtype=np.float64) * twist)


def _neg_ifft(values: np.ndarray) -> np.ndarray:
    n = len(values)
    twist = np.exp(-1j * np.pi * np.arange(n) / n)
    return np.real(np.fft.ifft(values) * twist)


def _reduce(f: list[int], g: list[int], F: list[int], G: list[int]) -> tuple[list[int], list[int]]:
    """Babai-reduce (F, G) against (f, g) (falcon.py's float-window trick)."""
    size = max(53, pz.max_bitlength(f), pz.max_bitlength(g))
    f_adj = [c >> (size - 53) for c in f]
    g_adj = [c >> (size - 53) for c in g]
    fa = _neg_fft(f_adj)
    ga = _neg_fft(g_adj)
    denominator = fa * np.conj(fa) + ga * np.conj(ga)
    if np.any(np.abs(denominator) < 1e-12):
        raise NtruSolveError("degenerate denominator in reduction")
    for _ in range(200):
        big = max(53, pz.max_bitlength(F), pz.max_bitlength(G))
        if big < size:
            break
        shift = big - 53
        Fa = _neg_fft([c >> shift for c in F])
        Ga = _neg_fft([c >> shift for c in G])
        numerator = Fa * np.conj(fa) + Ga * np.conj(ga)
        k = np.rint(_neg_ifft(numerator / denominator)).astype(object)
        k_ints = [int(v) for v in k]
        if not any(k_ints):
            break
        scale = big - size
        kf = pz.neg_mul(k_ints, f)
        kg = pz.neg_mul(k_ints, g)
        F = [Fc - (kfc << scale) for Fc, kfc in zip(F, kf)]
        G = [Gc - (kgc << scale) for Gc, kgc in zip(G, kg)]
    return F, G


def ntru_solve(f: list[int], g: list[int]) -> tuple[list[int], list[int]]:
    """Solve f*G - g*F = q; raises NtruSolveError when unsolvable."""
    n = len(f)
    if n == 1:
        d, u, v = _xgcd(f[0], g[0])
        if d not in (1, -1):
            raise NtruSolveError(f"gcd(f0, g0) = {d} != 1")
        # u*f + v*g = d  ->  f*(q*u/d) - g*(-q*v/d) = q
        return [-q_div(v, d)], [q_div(u, d)]
    f_prime = pz.field_norm(f)
    g_prime = pz.field_norm(g)
    F_prime, G_prime = ntru_solve(f_prime, g_prime)
    # F = F'(x^2) * g(-x), G = G'(x^2) * f(-x)
    F = pz.neg_mul(pz.lift_twist(F_prime), pz.galois_conjugate(g))
    G = pz.neg_mul(pz.lift_twist(G_prime), pz.galois_conjugate(f))
    return _reduce(f, g, F, G)


def q_div(value: int, d: int) -> int:
    """q * value / d for d in {1, -1}."""
    return Q * value if d == 1 else -Q * value


def verify_ntru(f: list[int], g: list[int], F: list[int], G: list[int]) -> bool:
    """Check the NTRU equation exactly."""
    lhs = pz.sub(pz.neg_mul(f, G), pz.neg_mul(g, F))
    return lhs[0] == Q and all(c == 0 for c in lhs[1:])
