"""NTT over Z_12289[x]/(x^n + 1) for Falcon (n = 512 or 1024)."""

from __future__ import annotations

Q = 12289


def _find_generator() -> int:
    # q - 1 = 2^12 * 3; an element is a generator iff neither power is 1
    for candidate in range(2, Q):
        if pow(candidate, (Q - 1) // 2, Q) != 1 and pow(candidate, (Q - 1) // 3, Q) != 1:
            return candidate
    raise RuntimeError("no generator found")


_GEN = _find_generator()


def _bitrev(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class FalconNtt:
    """Negacyclic NTT tables for one ring degree."""

    def __init__(self, n: int):
        if n & (n - 1) or n > 2048:
            raise ValueError("n must be a power of two <= 2048")
        self.n = n
        bits = n.bit_length() - 1
        psi = pow(_GEN, (Q - 1) // (2 * n), Q)  # primitive 2n-th root
        self._zetas = [pow(psi, _bitrev(i, bits), Q) for i in range(n)]
        self._n_inv = pow(n, Q - 2, Q)

    def ntt(self, coeffs: list[int]) -> list[int]:
        f = [c % Q for c in coeffs]
        length = self.n // 2
        k = 1
        while length >= 1:
            for start in range(0, self.n, 2 * length):
                zeta = self._zetas[k]
                k += 1
                for j in range(start, start + length):
                    t = zeta * f[j + length] % Q
                    f[j + length] = (f[j] - t) % Q
                    f[j] = (f[j] + t) % Q
            length //= 2
        return f

    def intt(self, coeffs: list[int]) -> list[int]:
        f = list(coeffs)
        k = self.n
        length = 1
        while length < self.n:
            for start in range(0, self.n, 2 * length):
                k -= 1
                zeta = self._zetas[k]
                for j in range(start, start + length):
                    t = f[j]
                    f[j] = (t + f[j + length]) % Q
                    f[j + length] = zeta * (f[j + length] - t) % Q
            length *= 2
        return [c * self._n_inv % Q for c in f]

    def mul(self, a: list[int], b: list[int]) -> list[int]:
        fa = self.ntt(a)
        fb = self.ntt(b)
        return self.intt([x * y % Q for x, y in zip(fa, fb)])

    def is_invertible(self, a: list[int]) -> bool:
        return all(self.ntt(a))

    def div(self, a: list[int], b: list[int]) -> list[int]:
        """a / b mod q (b must be invertible)."""
        fa = self.ntt(a)
        fb = self.ntt(b)
        if not all(fb):
            raise ZeroDivisionError("polynomial not invertible mod q")
        return self.intt([x * pow(y, Q - 2, Q) % Q for x, y in zip(fa, fb)])
