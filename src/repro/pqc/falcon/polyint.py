"""Exact integer polynomial arithmetic in Z[x]/(x^n + 1) (n a power of 2).

Used by NTRUSolve, where coefficients grow to thousands of bits — Python
integers handle the precision, schoolbook multiplication the degrees
(they halve as the coefficients double, keeping each level cheap).
"""

from __future__ import annotations


def neg_mul(a: list[int], b: list[int]) -> list[int]:
    """Negacyclic product: a * b mod (x^n + 1)."""
    n = len(a)
    if len(b) != n:
        raise ValueError("operands must share a degree")
    out = [0] * n
    for i, ai in enumerate(a):
        if not ai:
            continue
        for j, bj in enumerate(b):
            if not bj:
                continue
            k = i + j
            if k < n:
                out[k] += ai * bj
            else:
                out[k - n] -= ai * bj
    return out


def add(a: list[int], b: list[int]) -> list[int]:
    return [x + y for x, y in zip(a, b)]


def sub(a: list[int], b: list[int]) -> list[int]:
    return [x - y for x, y in zip(a, b)]


def adjoint(a: list[int]) -> list[int]:
    """a*(x) = a(1/x) mod x^n + 1: reverse with sign flips."""
    return [a[0]] + [-c for c in reversed(a[1:])]


def even_odd(a: list[int]) -> tuple[list[int], list[int]]:
    """Split a(x) = e(x^2) + x * o(x^2)."""
    return a[0::2], a[1::2]


def field_norm(a: list[int]) -> list[int]:
    """N(a)(y) with a(x)a(-x) = N(a)(x^2); halves the degree."""
    even, odd = even_odd(a)
    e2 = neg_mul(even, even)
    o2 = neg_mul(odd, odd)
    # a(x)a(-x) = e(x^2)^2 - x^2 o(x^2)^2  ->  N(y) = e^2 - y * o^2
    shifted = [-o2[-1]] + o2[:-1]  # multiply by y mod y^m + 1
    return sub(e2, shifted)


def lift_twist(a_half: list[int]) -> list[int]:
    """a'(x^2) as a degree-n polynomial (zero odd coefficients)."""
    out = [0] * (2 * len(a_half))
    out[0::2] = a_half
    return out


def galois_conjugate(a: list[int]) -> list[int]:
    """a(-x): negate odd coefficients."""
    return [c if i % 2 == 0 else -c for i, c in enumerate(a)]


def max_bitlength(a: list[int]) -> int:
    return max((abs(c).bit_length() for c in a), default=0)
