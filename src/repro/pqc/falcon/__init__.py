"""Falcon signatures over NTRU lattices — Falcon-512 and Falcon-1024."""

from repro.pqc.falcon.sig import FALCON512, FALCON1024, FalconSignature

__all__ = ["FalconSignature", "FALCON512", "FALCON1024"]
