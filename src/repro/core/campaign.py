"""The experiment sets of the paper's Appendix B, by their names.

``all-kem``, ``all-sig``, ``all-[kem,sig]-scenarios``, ``level[1,3,5]``,
``level[1,3,5]-nopush``, ``level[1,3,5]-perf``, and ``all-sphincs``.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.executor import run_campaign
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.obs.metrics import NULL_METRICS
from repro.obs.recorder import NULL_RECORDER
from repro.obs.tracer import NULL_TRACER
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES, LEVEL_GROUPS

BASE_KEM = "x25519"      # fixed KA for all-sig (paper §5)
BASE_SIG = "rsa:2048"    # fixed SA for all-kem

SCENARIO_ORDER = ["none", "high-loss", "low-bandwidth", "high-delay", "lte-m", "5g"]

SPHINCS_VARIANTS = ["sphincs128", "sphincs192", "sphincs256", "sphincs-shake-128f"]

# session-lifecycle sweep: every handshake shape over a classical
# baseline and the paper's level-1/level-3 primary PQ pairs
SESSION_ORDER = ["full", "resume", "mtls", "hrr"]
LIFECYCLE_PAIRS = [
    ("x25519", "rsa:2048"),
    ("kyber512", "dilithium2"),
    ("kyber768", "dilithium3"),
]


def lifecycle() -> list[ExperimentConfig]:
    """Each session shape for each lifecycle pair (scenario ``none``)."""
    return [
        ExperimentConfig(kem=kem, sig=sig, session=session)
        for session in SESSION_ORDER
        for kem, sig in LIFECYCLE_PAIRS
    ]


def all_kem(scenario: str = "none", policy: str = "optimized") -> list[ExperimentConfig]:
    return [
        ExperimentConfig(kem=kem, sig=BASE_SIG, scenario=scenario, policy=policy)
        for kem in ALL_KEM_NAMES
    ]


def all_sig(scenario: str = "none", policy: str = "optimized") -> list[ExperimentConfig]:
    return [
        ExperimentConfig(kem=BASE_KEM, sig=sig, scenario=scenario, policy=policy)
        for sig in ALL_SIG_NAMES
    ]


def all_kem_scenarios() -> list[ExperimentConfig]:
    return [cfg for scenario in SCENARIO_ORDER for cfg in all_kem(scenario)]


def all_sig_scenarios() -> list[ExperimentConfig]:
    return [cfg for scenario in SCENARIO_ORDER for cfg in all_sig(scenario)]


def level(level_number: int, *, nopush: bool = False,
          perf: bool = False) -> list[ExperimentConfig]:
    """Every KA x SA combination on one NIST level (non-hybrid)."""
    group = LEVEL_GROUPS[level_number]
    policy = "default" if nopush else "optimized"
    configs = []
    for kem in group["kems"]:
        for sig in group["sigs"]:
            configs.append(ExperimentConfig(
                kem=kem, sig=sig, policy=policy, profiling=perf,
            ))
    # the independence baselines E(k, s) need M(k, rsa:2048) and
    # M(x25519, s) measured under the same policy
    for kem in group["kems"]:
        configs.append(ExperimentConfig(kem=kem, sig=BASE_SIG, policy=policy,
                                        profiling=perf))
    for sig in group["sigs"]:
        configs.append(ExperimentConfig(kem=BASE_KEM, sig=sig, policy=policy,
                                        profiling=perf))
    configs.append(ExperimentConfig(kem=BASE_KEM, sig=BASE_SIG, policy=policy,
                                    profiling=perf))
    # dedupe, preserving order
    seen = set()
    unique = []
    for cfg in configs:
        if cfg.key not in seen:
            seen.add(cfg.key)
            unique.append(cfg)
    return unique


def all_sphincs() -> list[ExperimentConfig]:
    return [ExperimentConfig(kem=BASE_KEM, sig=sig) for sig in SPHINCS_VARIANTS]


def table3_perf() -> list[ExperimentConfig]:
    """Exactly the white-box (KA, SA) pairs Table 3 displays."""
    from repro.core.evaluate import TABLE3_PAIRS

    return [
        ExperimentConfig(kem=kem, sig=sig, profiling=True)
        for _level, kem, sig in TABLE3_PAIRS
    ]


EXPERIMENT_SETS = {
    "all-kem": all_kem,
    "all-sig": all_sig,
    "all-kem-scenarios": all_kem_scenarios,
    "all-sig-scenarios": all_sig_scenarios,
    "level1": lambda: level(1),
    "level3": lambda: level(3),
    "level5": lambda: level(5),
    "level1-nopush": lambda: level(1, nopush=True),
    "level3-nopush": lambda: level(3, nopush=True),
    "level5-nopush": lambda: level(5, nopush=True),
    "level1-perf": lambda: level(1, perf=True),
    "level3-perf": lambda: level(3, perf=True),
    "level5-perf": lambda: level(5, perf=True),
    "all-sphincs": all_sphincs,
    "table3-perf": table3_perf,
    "lifecycle": lifecycle,
}


def run_set(name: str, progress=None, metrics=NULL_METRICS,
            jobs: int | None = 1, tracer=NULL_TRACER,
            recorder=NULL_RECORDER,
            batch_seconds: float | None = None) -> dict[str, ExperimentResult]:
    """Run one named experiment set; returns results keyed by config key.

    Pass a :class:`repro.obs.metrics.Metrics` as ``metrics`` to accumulate
    every experiment's counters into one campaign-level registry. ``jobs``
    fans cache misses over that many worker processes via
    :mod:`repro.core.executor` (``None`` = one per CPU); results and the
    merged metrics are identical to the serial ``jobs=1`` path.
    ``batch_seconds`` tunes how many cheap misses share one worker task
    (``None`` = executor default, ``0`` = no batching). A
    :class:`repro.obs.recorder.FlightRecorder` as ``recorder`` logs the
    campaign's task/cache/timing events.
    """
    try:
        configs = EXPERIMENT_SETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown experiment set {name!r}; known: {sorted(EXPERIMENT_SETS)}"
        ) from None
    kwargs = {} if batch_seconds is None else {"batch_seconds": batch_seconds}
    return run_campaign(configs, jobs=jobs, metrics=metrics,
                        progress=progress, tracer=tracer, set_name=name,
                        recorder=recorder, **kwargs)


def run_sets(names: Iterable[str], progress=None, metrics=NULL_METRICS,
             jobs: int | None = 1, recorder=NULL_RECORDER,
             batch_seconds: float | None = None) -> dict[str, ExperimentResult]:
    results: dict[str, ExperimentResult] = {}
    for name in names:
        results.update(run_set(name, progress, metrics=metrics, jobs=jobs,
                               recorder=recorder, batch_seconds=batch_seconds))
    return results
