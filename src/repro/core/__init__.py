"""The paper's measurement campaign: experiments, evaluation, reports.

This is the "primary contribution" layer: it reproduces every table and
figure of the paper (Tables 2-4, Figures 3-4, the §5.5 attack metrics)
on top of the TLS + testbed substrates.
"""

from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment"]
