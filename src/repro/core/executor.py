"""Parallel campaign executor: fan an experiment set across CPU cores.

Appendix B's campaigns are hundreds of independent (KA, SA, scenario,
policy) experiments; this module is the only place in the stack allowed
to touch host parallelism (enforced by ``pqtls-lint`` DET005 — the
sans-io simulation below stays process-free). :func:`run_campaign`:

1. **partitions** the set into cache hits, resolved inline in the parent
   with no worker dispatch, and cache misses;
2. **schedules** the misses longest-expected-first (LPT) using the
   static cost table below, so one straggling SPHINCS+ or Falcon-1024
   recording starts immediately instead of tailing the pool;
3. relies on **single-flight recording** (`cache.lock` inside
   :func:`~repro.core.experiment.load_script` /
   :func:`~repro.netsim.scripted.load_credentials`): one worker records
   each distinct ``(kem, sig, policy, seed)`` script while peers block on
   a per-key file lock and then read the cache;
4. **merges** per-worker metrics snapshots (and the traced first
   handshake, if a tracer is given) back into the parent's registry *in
   the set's original config order*, so the aggregated ``--metrics`` /
   ``--trace`` output is identical to a serial run.

Determinism: every experiment derives all randomness from a per-config
``Drbg`` (``experiment:<key>``) and all time from the simulated event
loop, so a worker computes bit-identical results to an in-process run —
the pool changes wall-clock time, never values. ``jobs=1`` bypasses the
pool entirely and preserves the exact serial code path.

Workers are spawned (not forked) so each starts from a clean interpreter
with zeroed module-level metrics; they communicate only through the
shared on-disk cache and their pickled return values.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro import cache
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentResult,
    merge_result_metrics,
    run_experiment,
    script_key,
)
from repro.netsim.netem import SCENARIOS
from repro.obs.metrics import NULL_METRICS
from repro.obs.recorder import NULL_RECORDER, walltime
from repro.obs.tracer import NULL_TRACER, Tracer

# ---------------------------------------------------------------------------
# Static cost table
#
# Expected host cost of an experiment, in units calibrated to seconds on the
# reference container. Only the *relative* order matters (LPT scheduling);
# the absolute scale just keeps the numbers debuggable. Costs derive from
# the algorithms' declared wire sizes — the same numbers Table 2 reports —
# with per-family exponents reflecting how runtime grows with key material:
# RSA prime search is ~cubic in the modulus, Falcon's NTRU solving ~quartic
# in the key size, hash-based signing linear in the signature (each wire
# byte is bought with a fixed number of hash calls).
#
# Coefficients are calibrated against measured cold-record times with the
# default fast kernels (PQTLS_KERNELS=fast; see benchmarks/bench_crypto.py)
# and the primorial-screened prime search in repro.crypto.modmath:
# dilithium2 0.14 s, rsa:2048 ~1.2 s, falcon512 2.24 s, sphincs128 11.5 s,
# hqc/bike within noise of the lattice KEMs. RSA recording varies ~2x run
# to run with prime-search luck, so its coefficient targets the middle of
# that band. Under PQTLS_KERNELS=ref the absolute numbers grow but the
# family order — and so the LPT schedule — is unchanged.
# ---------------------------------------------------------------------------

_WIRE_BYTES_PER_SEGMENT = 1200.0   # rough payload per simulated TCP segment
_REPLAY_SECONDS_PER_SEGMENT = 2e-4  # event-loop cost per segment per handshake
_PROFILING_FACTOR = 1.2            # white-box runs add cost-model events


def _sig_components(sig):
    return [sig.classical, sig.pq] if hasattr(sig, "pq") else [sig]


def _kem_components(kem):
    return [kem.classical, kem.pq] if hasattr(kem, "pq") else [kem]


def record_cost(kem_name: str, sig_name: str) -> float:
    """Expected one-time cost of recording this script on a cold cache.

    Dominated by real pure-Python crypto: credential generation + one
    lockstep handshake. Charged once per distinct script key — the
    single-flight lock guarantees no second worker pays it.
    """
    from repro.pqc.registry import get_kem, get_sig

    cost = 0.1  # lockstep handshake, record/store bookkeeping
    for sig in _sig_components(get_sig(sig_name)):
        name = sig.name
        if name.startswith("rsa"):
            cost += 1.5 * (sig.signature_bytes / 256.0) ** 3
        elif name.startswith("falcon"):
            cost += 2.3 * (sig.public_key_bytes / 897.0) ** 4
        elif name.startswith("sphincs"):
            # recording pays ~2 signatures (CA chain + CertificateVerify)
            cost += 11.4 * (sig.signature_bytes / 17088.0)
        else:  # lattice / ECDSA: milliseconds, wire size as tiebreaker
            cost += (sig.signature_bytes + sig.public_key_bytes) / 1e6
    for kem in _kem_components(get_kem(kem_name)):
        # all KEM families record in milliseconds now that the code-based
        # decoders run on the table-driven GF(256) kernel; wire volume is
        # a good enough tiebreaker
        cost += 4e-6 * (kem.public_key_bytes + kem.ciphertext_bytes)
    return cost


def replay_cost(config: ExperimentConfig) -> float:
    """Expected cost of replaying the script through TCP/netem.

    Scales with handshakes simulated (3 for deterministic scenarios,
    ``max_samples`` for lossy ones — the same rule ``run_experiment``
    applies) times the per-handshake event count, which wire volume sets.
    """
    from repro.pqc.registry import get_kem, get_sig

    kem = get_kem(config.kem)
    sig = get_sig(config.sig)
    # certificate chain carries ~2 public keys + 2 signatures, plus the
    # CertificateVerify signature and the KEM exchange
    wire = (kem.public_key_bytes + kem.ciphertext_bytes
            + 2 * sig.public_key_bytes + 3 * sig.signature_bytes)
    segments = 8.0 + wire / _WIRE_BYTES_PER_SEGMENT
    samples = 3 if SCENARIOS[config.scenario].loss == 0.0 else config.max_samples
    cost = samples * segments * _REPLAY_SECONDS_PER_SEGMENT
    if config.profiling:
        cost *= _PROFILING_FACTOR
    return cost


def estimated_cost(config: ExperimentConfig, cold: bool = True) -> float:
    """Expected total cost of one experiment (recording charged if cold)."""
    cost = replay_cost(config)
    if cold:
        cost += record_cost(config.kem, config.sig)
    return cost


def schedule(configs: list[ExperimentConfig]) -> list[ExperimentConfig]:
    """Order cache-missing configs for dispatch: longest expected first.

    One *leader* per distinct script key is picked and dispatched ahead of
    every follower, ordered by recording + replay cost — the recordings
    are the long poles and must all start as early as possible. Followers
    (same script, different scenario/duration) carry only replay cost and
    fill the pool's tail; their single-flight wait costs nothing extra.
    """
    groups: dict[str, list[ExperimentConfig]] = {}
    for config in configs:
        key = script_key(config.kem, config.sig, config.policy, config.seed,
                         config.session, config.chain)
        groups.setdefault(key, []).append(config)
    leaders, followers = [], []
    for members in groups.values():
        ordered = sorted(members, key=replay_cost, reverse=True)
        leaders.append(ordered[0])
        followers.extend(ordered[1:])
    leaders.sort(key=lambda c: estimated_cost(c, cold=True), reverse=True)
    followers.sort(key=replay_cost, reverse=True)
    return leaders + followers


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _counter_delta(before: dict, after: dict) -> dict[str, float]:
    return {name: value - before.get(name, 0.0)
            for name, value in after.items() if value > before.get(name, 0.0)}


def _worker_warm() -> None:
    """Pool initializer: build lazy kernel tables once per worker.

    Spawned workers start from a clean interpreter, so without this every
    worker would rebuild e.g. the 64 KiB GF(256) product table lazily,
    mid-way through its first recorded experiment.
    """
    from repro.crypto import kernels

    kernels.warm()


def _worker_run(config: ExperimentConfig, trace: bool = False):
    """Run one experiment in a worker process.

    Returns ``(key, result, cache_counters, trace_records, host_seconds)``:
    the result carries its own metrics snapshot; ``cache_counters`` is
    this task's hit/miss/store delta (workers are long-lived, so a
    before/after diff isolates the task); ``trace_records`` is the traced
    first handshake when requested (tracing bypasses the result cache,
    exactly as in a serial run); ``host_seconds`` is the task's real CPU
    wall time in the worker, reported to the flight recorder.
    """
    started = walltime()
    before = cache.metrics.snapshot()["counters"]
    tracer = Tracer() if trace else NULL_TRACER
    result = run_experiment(config, tracer=tracer)
    after = cache.metrics.snapshot()["counters"]
    records = (tracer.spans, tracer.instants, tracer.counters) if trace else None
    return (config.key, result, _counter_delta(before, after), records,
            walltime() - started)


def _worker_run_batch(configs: list[ExperimentConfig],
                      traced_key: str | None = None):
    """Run a batch of experiments sequentially in one worker task.

    Returns the list of per-experiment :func:`_worker_run` tuples in
    batch order. Batching only amortizes dispatch overhead (submit,
    pickle, result shipping); each experiment still runs exactly as it
    would alone.
    """
    return [_worker_run(config, config.key == traced_key)
            for config in configs]


def _flight_outcome(result: ExperimentResult) -> tuple[dict, float]:
    """(fault outcomes, TCP retransmit count) of one result, for the log."""
    outcomes = getattr(result, "outcomes", None) or {}
    counters = result.metrics.get("counters", {}) if result.metrics else {}
    retransmits = sum(value for name, value in counters.items()
                      if name.endswith("retransmits"))
    return outcomes, retransmits


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: requested jobs, clamped to the core count.

    Campaign work is CPU-bound, so oversubscribing cores only adds spawn
    and context-switch overhead; on a 1-core runner the clamp routes
    ``jobs=2`` straight to the exact serial path (the PR 3 pool measured
    speedup < 1 there).
    """
    cpus = os.cpu_count() or 1
    if jobs is None:
        return cpus
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    return min(jobs, cpus)


def run_sharded(task, payloads: list, *, jobs: int | None = None,
                on_complete=None) -> list:
    """Map a picklable ``task`` over ``payloads`` across spawned workers.

    The generic fan-out primitive behind ``repro.traffic`` (DET005
    confines host parallelism to this module): results come back **in
    payload order**, whatever order workers finish in, so callers can
    merge deterministically. ``jobs`` resolves like :func:`run_campaign`
    (clamped to cores; 1 or a single payload runs inline on the exact
    same code path). ``on_complete(index, result)`` fires per finished
    payload in completion order — observation only (progress display),
    never part of the result.

    ``task`` must be a module-level callable computing a pure function
    of its payload: workers are spawned, so the only state it sees is
    what the payload carries (plus the shared on-disk cache).
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(payloads) <= 1:
        results = []
        for index, payload in enumerate(payloads):
            result = task(payload)
            if on_complete is not None:
                on_complete(index, result)
            results.append(result)
        return results
    context = multiprocessing.get_context("spawn")
    workers = min(jobs, len(payloads))
    results: list = [None] * len(payloads)
    with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                             initializer=_worker_warm) as pool:
        futures = {pool.submit(task, payload): index
                   for index, payload in enumerate(payloads)}
        try:
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if on_complete is not None:
                    on_complete(index, results[index])
        except BaseException:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)
            raise
    return results


DEFAULT_BATCH_SECONDS = 0.25


def batch_units(ordered: list[ExperimentConfig], costs: dict[str, float],
                batch_seconds: float,
                traced_key: str | None = None) -> list[list[ExperimentConfig]]:
    """Pack scheduled configs into dispatch units of ~``batch_seconds``.

    Cheap experiments (expected cost below the threshold) accumulate
    into a shared unit until it reaches the threshold, amortizing the
    per-task submit/pickle/result overhead that dominates sub-100ms
    replays. Expensive configs — and the traced one, which must ship its
    trace records by itself — stay singleton units. ``batch_seconds <= 0``
    disables packing (every unit is a singleton, the PR 3 behavior).
    """
    units: list[list[ExperimentConfig]] = []
    open_batch: list[ExperimentConfig] = []
    open_cost = 0.0
    for config in ordered:
        cost = costs[config.key]
        if batch_seconds <= 0 or cost >= batch_seconds or config.key == traced_key:
            units.append([config])
            continue
        if open_batch and open_cost + cost > batch_seconds:
            units.append(open_batch)
            open_batch, open_cost = [], 0.0
        open_batch.append(config)
        open_cost += cost
    if open_batch:
        units.append(open_batch)
    return units


def run_campaign(configs: list[ExperimentConfig], *, jobs: int | None = 1,
                 metrics=NULL_METRICS, progress=None, tracer=NULL_TRACER,
                 set_name: str = "campaign", stats: dict | None = None,
                 recorder=NULL_RECORDER,
                 batch_seconds: float = DEFAULT_BATCH_SECONDS
                 ) -> dict[str, ExperimentResult]:
    """Run a list of experiments, fanning cache misses over ``jobs`` workers.

    ``jobs=None`` means one worker per CPU; ``jobs=1`` is the exact serial
    path (no pool, no spawn). Requested jobs are clamped to the core
    count, and sets with fewer than two dispatch units run serially too —
    both guards keep the pool from ever losing to the serial path on
    small machines. Cache misses cheaper than ``batch_seconds`` are
    packed into shared dispatch units (:func:`batch_units`) so per-task
    pool overhead is amortized; ``batch_seconds=0`` dispatches one task
    per experiment. Results are keyed by config key and merged
    in the original config order, so metrics/trace aggregation is
    key-for-key identical to a serial run. If a worker raises, pending
    work is cancelled and the original exception propagates.

    ``stats``, if given, is filled with the partition/schedule summary
    (``jobs``, ``hits``, ``dispatched``, ``distinct_scripts``, ...).

    ``recorder`` (a :class:`repro.obs.recorder.FlightRecorder`) logs
    task/cache/timing events and drives the live ETA line; it observes
    only — results, cache state, and metrics are identical with or
    without it.
    """
    jobs = resolve_jobs(jobs)
    total = len(configs)
    if stats is None:
        stats = {}  # pqtls: allow[OBS003] — caller-owned scheduling
        # introspection (bench_campaign reads it back), not telemetry

    stats.update(jobs=jobs, experiments=total)

    flight = recorder.enabled
    started = walltime() if flight else 0.0
    done_cost = total_cost = 0.0
    costs: dict[str, float] = {}
    if flight:
        recorder.event("campaign_begin", set=set_name, experiments=total,
                       jobs=jobs)

    def eta() -> float | None:
        if done_cost <= 0 or total_cost <= done_cost:
            return None
        elapsed = walltime() - started
        return elapsed * (total_cost - done_cost) / done_cost

    if jobs == 1 or total <= 1:
        stats.update(hits=None, dispatched=None, distinct_scripts=None)
        if flight:
            # counter-neutral probes: cost estimates and hit/miss labels
            # for the log, with cache metrics untouched
            costs = {c.key: estimated_cost(
                c, cold=not cache.contains("experiment", c.key))
                for c in configs}
            total_cost = sum(costs[c.key] for c in configs)
        results: dict[str, ExperimentResult] = {}
        for i, config in enumerate(configs):
            if progress is not None:
                progress(set_name, i, total, config)
            hs_tracer = tracer if i == 0 else NULL_TRACER
            if flight:
                recorder.task_start(
                    config.key, mode="serial", set_name=set_name,
                    cached=cache.contains("experiment", config.key),
                    est_cost=costs[config.key])
                task_started = walltime()
            results[config.key] = run_experiment(config, tracer=hs_tracer,
                                                 metrics=metrics)
            if flight:
                outcomes, retransmits = _flight_outcome(results[config.key])
                recorder.task_finish(
                    config.key, mode="serial", set_name=set_name,
                    host_seconds=walltime() - task_started,
                    outcomes=outcomes, retransmits=retransmits)
                done_cost += costs[config.key]
                recorder.progress(set_name, i + 1, total,
                                  elapsed=walltime() - started, eta=eta())
        if flight:
            recorder.event("campaign_end", set=set_name, experiments=total,
                           host_seconds=round(walltime() - started, 6))
        return results

    # -- partition: resolve hits inline, collect distinct misses ------------
    # The first config is special when tracing: run_experiment bypasses the
    # cache for traced runs (cached artifacts must stay identical to
    # untraced ones), so it is always dispatched.
    traced_key = configs[0].key if tracer.enabled else None
    resolved: dict[str, ExperimentResult] = {}
    misses: list[ExperimentConfig] = []
    seen: set[str] = set()
    done = 0
    for config in configs:
        if config.key in seen:
            continue  # duplicate within the set: one run serves all
        seen.add(config.key)
        if config.key != traced_key:
            # counter-neutral probe: the miss is counted exactly once, by
            # whichever process (worker or inline parent) later loads and
            # records — so cache counters match a serial run
            cached = (cache.load("experiment", config.key)
                      if cache.contains("experiment", config.key) else None)
            if cached is not None:
                resolved[config.key] = cached
                if flight:
                    recorder.event("cache_hit", set=set_name, key=config.key)
                if progress is not None:
                    progress(set_name, done, total, config)
                done += 1
                continue
        misses.append(config)
    ordered = schedule(misses)
    # recording is charged once per distinct script (single-flight), so
    # only the first dispatched config of each script is "cold"; the
    # estimates drive both batching and the flight recorder's ETA
    warm_scripts: set[str] = set()
    for config in ordered:
        script = script_key(config.kem, config.sig, config.policy,
                            config.seed, config.session, config.chain)
        costs[config.key] = estimated_cost(
            config, cold=script not in warm_scripts)
        warm_scripts.add(script)
    total_cost = sum(costs.values())
    units = batch_units(ordered, costs, batch_seconds, traced_key)
    stats.update(hits=len(resolved), dispatched=len(misses),
                 distinct_scripts=len({script_key(c.kem, c.sig, c.policy, c.seed,
                                                  c.session, c.chain)
                                       for c in misses}),
                 units=len(units),
                 batched=sum(len(u) for u in units if len(u) > 1))
    if flight:
        recorder.event("schedule", set=set_name, hits=stats["hits"],
                       dispatched=stats["dispatched"],
                       distinct_scripts=stats["distinct_scripts"], jobs=jobs,
                       units=stats["units"], batched=stats["batched"])

    # -- dispatch ------------------------------------------------------------
    trace_records = None
    if len(units) < 2:
        # A pool only pays for itself when two dispatch units can actually
        # run concurrently; for a single unit the spawn + pickle overhead
        # is pure regression (PR 3 measured speedup < 1 in exactly this
        # shape), so run it inline in the parent instead.
        for config in ordered:
            hs_tracer = tracer if config.key == traced_key else NULL_TRACER
            if flight:
                recorder.task_start(config.key, mode="inline",
                                    set_name=set_name,
                                    est_cost=costs[config.key])
                task_started = walltime()
            resolved[config.key] = run_experiment(config, tracer=hs_tracer)
            if flight:
                outcomes, retransmits = _flight_outcome(resolved[config.key])
                recorder.task_finish(
                    config.key, mode="inline", set_name=set_name,
                    host_seconds=walltime() - task_started,
                    outcomes=outcomes, retransmits=retransmits)
            if progress is not None:
                progress(set_name, done, total, config)
            done += 1
        units = []
    if units:
        context = multiprocessing.get_context("spawn")
        workers = min(jobs, len(units))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context,
                                 initializer=_worker_warm) as pool:
            futures = {}
            for unit in units:
                if flight:
                    for config in unit:
                        recorder.task_start(config.key, mode="worker",
                                            set_name=set_name,
                                            est_cost=costs[config.key])
                futures[pool.submit(_worker_run_batch, unit,
                                    traced_key)] = unit
            try:
                for future in as_completed(futures):
                    # a batch returns its members' tuples in batch order
                    for item, config in zip(future.result(), futures[future]):
                        key, result, cache_counters, records, seconds = item
                        resolved[key] = result
                        if records is not None:
                            trace_records = records
                        for name, value in cache_counters.items():
                            # all of this task's cache traffic (including
                            # its experiment miss — the parent's partition
                            # probe is counter-neutral) happened only in
                            # the worker
                            cache.metrics.inc(name, value)
                        if flight:
                            outcomes, retransmits = _flight_outcome(result)
                            recorder.task_finish(
                                key, mode="worker", set_name=set_name,
                                host_seconds=seconds, outcomes=outcomes,
                                retransmits=retransmits,
                                cache_counters=cache_counters)
                            done_cost += costs[key]
                            recorder.progress(set_name, done + 1, total,
                                              elapsed=walltime() - started,
                                              eta=eta(), hits=stats["hits"])
                        if progress is not None:
                            progress(set_name, done, total, config)
                        done += 1
            except BaseException:
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                raise

    # -- merge in original order --------------------------------------------
    # Counter sums and histogram sample order then match the serial run
    # exactly, whatever order workers finished in.
    results = {}
    for config in configs:
        result = resolved[config.key]
        results[config.key] = result
        merge_result_metrics(result, metrics)
    if trace_records is not None:
        tracer.absorb(*trace_records)
    if flight:
        recorder.event("campaign_end", set=set_name, experiments=total,
                       host_seconds=round(walltime() - started, 6))
    return results
