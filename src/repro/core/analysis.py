"""The KA/SA-independence model of §5.2.

If KA and SA contributed to handshake latency independently, the measured
latency M would satisfy M(k1,s1) + M(k2,s2) = M(k1,s2) + M(k2,s1), so the
expectation E(k,s) = M(k, rsa:2048) + M(x25519, s) - M(x25519, rsa:2048)
would predict every combination. Figure 3 plots the deviation E - M
(positive = faster than predicted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import BASE_KEM, BASE_SIG
from repro.core.experiment import ExperimentConfig, ExperimentResult


@dataclass(frozen=True)
class Deviation:
    kem: str
    sig: str
    level: int
    expected: float   # E(k, s), seconds
    measured: float   # M(k, s), seconds

    @property
    def deviation(self) -> float:
        """E - M; positive means the combination was faster than predicted."""
        return self.expected - self.measured


class IndependenceModel:
    """Builds E(k, s) from a result set containing the baselines."""

    def __init__(self, results: dict[str, ExperimentResult], policy: str):
        self._results = results
        self._policy = policy

    def _lookup(self, kem: str, sig: str) -> ExperimentResult:
        config = ExperimentConfig(kem=kem, sig=sig, policy=self._policy)
        try:
            return self._results[config.key]
        except KeyError:
            raise KeyError(
                f"missing measurement for ({kem}, {sig}, {self._policy})"
            ) from None

    def expected(self, kem: str, sig: str) -> float:
        base_kk = self._lookup(kem, BASE_SIG).total_median
        base_ss = self._lookup(BASE_KEM, sig).total_median
        base = self._lookup(BASE_KEM, BASE_SIG).total_median
        return base_kk + base_ss - base

    def deviation(self, kem: str, sig: str, level: int) -> Deviation:
        return Deviation(
            kem=kem,
            sig=sig,
            level=level,
            expected=self.expected(kem, sig),
            measured=self._lookup(kem, sig).total_median,
        )


def deviations_for_levels(results: dict[str, ExperimentResult], policy: str,
                          level_groups: dict) -> list[Deviation]:
    model = IndependenceModel(results, policy)
    out = []
    for level_number, group in level_groups.items():
        for kem in group["kems"]:
            for sig in group["sigs"]:
                out.append(model.deviation(kem, sig, level_number))
    return out
