"""Command-line entry point mirroring the artifact's experiment.py.

Usage::

    pqtls-experiment -o OUT all-kem all-sig          # run experiment sets
    pqtls-experiment --evaluate table2 table4 ...    # render paper artefacts
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import campaign, evaluate, report
from repro.core.analysis import deviations_for_levels
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES, LEVEL_GROUPS


def _progress(set_name: str, index: int, total: int, config) -> None:
    print(f"[{set_name}] {index + 1}/{total} {config.kem} x {config.sig} "
          f"({config.scenario}, {config.policy})", file=sys.stderr)


def _write(outdir: Path, name: str, content: str) -> None:
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / name
    path.write_text(content if content.endswith("\n") else content + "\n")
    print(f"wrote {path}", file=sys.stderr)


ARTIFACTS = ["table2", "table3", "table4", "figure3", "figure4", "section55"]


def evaluate_artifact(name: str, outdir: Path) -> None:
    if name == "table2":
        results = campaign.run_sets(["all-kem", "all-sig"], _progress)
        rows_a = evaluate.table2a(results, ALL_KEM_NAMES)
        rows_b = evaluate.table2b(results, ALL_SIG_NAMES)
        _write(outdir, "table2a.txt", report.render_table2(rows_a, "Table 2a: KAs with rsa:2048"))
        _write(outdir, "table2b.txt", report.render_table2(rows_b, "Table 2b: SAs with X25519"))
        _write(outdir, "latencies_kem.csv", report.latencies_csv(rows_a))
        _write(outdir, "latencies_sig.csv", report.latencies_csv(rows_b))
    elif name == "table3":
        results = campaign.run_sets(["table3-perf"], _progress)
        rows = evaluate.table3(results)
        _write(outdir, "table3.txt", report.render_table3(rows))
    elif name == "table4":
        results = campaign.run_sets(["all-kem-scenarios", "all-sig-scenarios"], _progress)
        rows_a = evaluate.table4(results, ALL_KEM_NAMES, vary="kem")
        rows_b = evaluate.table4(results, ALL_SIG_NAMES, vary="sig")
        _write(outdir, "table4a.txt", report.render_table4(rows_a, "Table 4a: KAs per scenario"))
        _write(outdir, "table4b.txt", report.render_table4(rows_b, "Table 4b: SAs per scenario"))
    elif name == "figure3":
        push = campaign.run_sets(["level1", "level3", "level5"], _progress)
        nopush = campaign.run_sets(["level1-nopush", "level3-nopush", "level5-nopush"], _progress)
        dev_push = deviations_for_levels(push, "optimized", LEVEL_GROUPS)
        dev_nopush = deviations_for_levels(nopush, "default", LEVEL_GROUPS)
        _write(outdir, "figure3a.txt",
               report.render_deviations(dev_nopush, "Figure 3a: deviations, default OpenSSL"))
        _write(outdir, "figure3b.txt",
               report.render_deviations(dev_push, "Figure 3b: deviations, optimized OpenSSL"))
        improvements = [
            f"{n.kem:<14} {n.sig:<16} {1e3 * (n.measured - p.measured):+8.2f} ms"
            for n, p in zip(dev_nopush, dev_push)
        ]
        _write(outdir, "figure3c.txt",
               "Figure 3c: latency improvement of the optimized version\n"
               + "\n".join(improvements))
        _write(outdir, "deviations.csv", report.deviations_csv(dev_push))
    elif name == "figure4":
        results = campaign.run_sets(["all-kem", "all-sig"], _progress)
        kem_ranks, sig_ranks = evaluate.figure4(results, ALL_KEM_NAMES, ALL_SIG_NAMES)
        _write(outdir, "figure4.txt", report.render_ranking(kem_ranks, sig_ranks))
    elif name == "section55":
        results = campaign.run_sets(["table3-perf", "all-sig"], _progress)
        whitebox = evaluate.table3(results)
        t2b = evaluate.table2b(results, ALL_SIG_NAMES)
        metrics = evaluate.attack_metrics(whitebox, t2b)
        _write(outdir, "section55.txt", report.render_attack_metrics(metrics))
    else:
        raise KeyError(f"unknown artifact {name!r}; known: {ARTIFACTS}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the paper's experiment sets and regenerate its tables/figures.")
    parser.add_argument("-o", "--output", default="out", help="output directory")
    parser.add_argument("--evaluate", action="store_true",
                        help="treat names as artifacts (table2, figure3, ...) "
                             "instead of experiment sets")
    parser.add_argument("names", nargs="+",
                        help=f"experiment sets {sorted(campaign.EXPERIMENT_SETS)} "
                             f"or, with --evaluate, artifacts {ARTIFACTS}")
    args = parser.parse_args(argv)
    outdir = Path(args.output)
    if args.evaluate:
        for name in args.names:
            evaluate_artifact(name, outdir)
    else:
        results = campaign.run_sets(args.names, _progress)
        print(f"ran {len(results)} experiments", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
