"""Command-line entry point mirroring the artifact's experiment.py.

Usage::

    pqtls-experiment -o OUT all-kem all-sig          # run experiment sets
    pqtls-experiment --evaluate table2 table4 ...    # render paper artefacts
    pqtls-experiment --kem kyber512 --sig dilithium2 \\
        --trace trace.json --flame                    # trace one handshake
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import cache
from repro.core import campaign, evaluate, report
from repro.core.analysis import deviations_for_levels
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults.plan import FAULT_PLANS, resolve_fault_plan
from repro.netsim.netem import SCENARIOS, split_scenario
from repro.tls.scenarios import SESSION_SCENARIOS
from repro.obs.export import write_chrome_trace, write_jsonl, write_metrics_json
from repro.obs.flame import write_flame_svg
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.obs.profiler import SamplingProfiler
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES, LEVEL_GROUPS


def _progress(set_name: str, index: int, total: int, config) -> None:
    print(f"[{set_name}] {index + 1}/{total} {config.kem} x {config.sig} "
          f"({config.scenario}, {config.policy})", file=sys.stderr)


def _write(outdir: Path, name: str, content: str) -> None:
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / name
    path.write_text(content if content.endswith("\n") else content + "\n")
    print(f"wrote {path}", file=sys.stderr)


ARTIFACTS = ["table2", "table3", "table4", "figure3", "figure4", "section55"]


def evaluate_artifact(name: str, outdir: Path, jobs: int | None = 1,
                      progress=_progress, recorder=NULL_RECORDER,
                      batch_seconds: float | None = None) -> None:
    def run_sets(names):
        # forward --batch-seconds so 0 means "disable batching" here too,
        # instead of silently falling back to the executor default
        return campaign.run_sets(names, progress, jobs=jobs, recorder=recorder,
                                 batch_seconds=batch_seconds)

    if name == "table2":
        results = run_sets(["all-kem", "all-sig"])
        rows_a = evaluate.table2a(results, ALL_KEM_NAMES)
        rows_b = evaluate.table2b(results, ALL_SIG_NAMES)
        _write(outdir, "table2a.txt", report.render_table2(rows_a, "Table 2a: KAs with rsa:2048"))
        _write(outdir, "table2b.txt", report.render_table2(rows_b, "Table 2b: SAs with X25519"))
        _write(outdir, "latencies_kem.csv", report.latencies_csv(rows_a))
        _write(outdir, "latencies_sig.csv", report.latencies_csv(rows_b))
    elif name == "table3":
        results = run_sets(["table3-perf"])
        rows = evaluate.table3(results)
        _write(outdir, "table3.txt", report.render_table3(rows))
    elif name == "table4":
        results = run_sets(["all-kem-scenarios", "all-sig-scenarios"])
        rows_a = evaluate.table4(results, ALL_KEM_NAMES, vary="kem")
        rows_b = evaluate.table4(results, ALL_SIG_NAMES, vary="sig")
        _write(outdir, "table4a.txt", report.render_table4(rows_a, "Table 4a: KAs per scenario"))
        _write(outdir, "table4b.txt", report.render_table4(rows_b, "Table 4b: SAs per scenario"))
    elif name == "figure3":
        push = run_sets(["level1", "level3", "level5"])
        nopush = run_sets(["level1-nopush", "level3-nopush", "level5-nopush"])
        dev_push = deviations_for_levels(push, "optimized", LEVEL_GROUPS)
        dev_nopush = deviations_for_levels(nopush, "default", LEVEL_GROUPS)
        _write(outdir, "figure3a.txt",
               report.render_deviations(dev_nopush, "Figure 3a: deviations, default OpenSSL"))
        _write(outdir, "figure3b.txt",
               report.render_deviations(dev_push, "Figure 3b: deviations, optimized OpenSSL"))
        improvements = [
            f"{n.kem:<14} {n.sig:<16} {1e3 * (n.measured - p.measured):+8.2f} ms"
            for n, p in zip(dev_nopush, dev_push)
        ]
        _write(outdir, "figure3c.txt",
               "Figure 3c: latency improvement of the optimized version\n"
               + "\n".join(improvements))
        _write(outdir, "deviations.csv", report.deviations_csv(dev_push))
    elif name == "figure4":
        results = run_sets(["all-kem", "all-sig"])
        kem_ranks, sig_ranks = evaluate.figure4(results, ALL_KEM_NAMES, ALL_SIG_NAMES)
        _write(outdir, "figure4.txt", report.render_ranking(kem_ranks, sig_ranks))
    elif name == "section55":
        results = run_sets(["table3-perf", "all-sig"])
        whitebox = evaluate.table3(results)
        t2b = evaluate.table2b(results, ALL_SIG_NAMES)
        metrics = evaluate.attack_metrics(whitebox, t2b)
        _write(outdir, "section55.txt", report.render_attack_metrics(metrics))
    else:
        raise KeyError(f"unknown artifact {name!r}; known: {ARTIFACTS}")


def run_single(args, metrics) -> None:
    """Run (and optionally trace) one experiment named by --kem/--sig."""
    netem_name, session_name = split_scenario(args.scenario)
    config = ExperimentConfig(kem=args.kem, sig=args.sig, scenario=netem_name,
                              policy=args.policy, profiling=args.profiling,
                              faults=args.faults, session=session_name)
    tracing = bool(args.trace or args.trace_jsonl or args.flame)
    tracer = Tracer() if tracing else NULL_TRACER
    result = run_experiment(config, tracer=tracer, metrics=metrics)
    shape = config.scenario if config.session == "full" \
        else f"{config.scenario}+{config.session}"
    print(f"{config.kem} x {config.sig} ({shape}, {config.policy}): "
          f"partA {result.part_a_median * 1e3:.2f} ms, "
          f"partB {result.part_b_median * 1e3:.2f} ms, "
          f"ttfb {result.ttfb_median * 1e3:.2f} ms, "
          f"{result.n_handshakes} handshakes/{config.duration:.0f}s",
          file=sys.stderr)
    outcomes = getattr(result, "outcomes", {})
    failed = {k: n for k, n in outcomes.items() if k != "success"}
    if failed:
        breakdown = ", ".join(f"{k}: {n}" for k, n in sorted(failed.items()))
        print(f"  failures ({sum(failed.values())}/{sum(outcomes.values())} "
              f"attempts): {breakdown}", file=sys.stderr)
    if args.trace:
        path = write_chrome_trace(tracer, args.trace)
        print(f"wrote {path} (load at https://ui.perfetto.dev)", file=sys.stderr)
    if args.trace_jsonl:
        path = write_jsonl(tracer, args.trace_jsonl)
        print(f"wrote {path}", file=sys.stderr)
    if args.flame:
        print(report.render_trace_report(tracer))
        print()
        print(report.render_table3_from_spans(tracer, result))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the paper's experiment sets and regenerate its tables/figures.")
    parser.add_argument("-o", "--output", default="out", help="output directory")
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="worker processes for campaign cache misses "
                             "(default: one per CPU; 1 = the serial path)")
    parser.add_argument("--batch-seconds", type=float, default=None,
                        metavar="S",
                        help="pack cache misses cheaper than S seconds into "
                             "shared worker tasks (default: executor's 0.25; "
                             "0 = one task per experiment)")
    parser.add_argument("--evaluate", action="store_true",
                        help="treat names as artifacts (table2, figure3, ...) "
                             "instead of experiment sets")
    single = parser.add_argument_group(
        "single experiment", "trace or profile one (KA, SA) pair instead of a set")
    single.add_argument("--kem", help="key-agreement algorithm, e.g. kyber512")
    single.add_argument("--sig", help="signature algorithm, e.g. dilithium2")
    single.add_argument("--scenario", default="none", metavar="SPEC",
                        help="network emulation scenario "
                             f"({', '.join(sorted(SCENARIOS))}), a session "
                             f"shape ({', '.join(sorted(SESSION_SCENARIOS))}), "
                             "or a '+'-joined combo like lte-m+resume "
                             "(default: none, i.e. full handshakes on an "
                             "unimpaired link)")
    single.add_argument("--policy", default="optimized",
                        choices=["optimized", "default"],
                        help="OpenSSL buffering policy (default: optimized)")
    single.add_argument("--profiling", action="store_true",
                        help="apply the paper's white-box perf overhead")
    single.add_argument("--faults", default="none", metavar="PLAN",
                        help="fault-injection plan: a named plan "
                             f"({', '.join(sorted(FAULT_PLANS))}) or a "
                             "key=value spec like 'corrupt=0.02,dup=0.05' "
                             "(default: none)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace", metavar="FILE",
                     help="write a Chrome trace_event JSON of the first "
                          "handshake (open in Perfetto); single experiment only")
    obs.add_argument("--trace-jsonl", metavar="FILE",
                     help="write the trace as JSON-lines; single experiment only")
    obs.add_argument("--metrics", metavar="FILE",
                     help="write a JSON snapshot of all counters/histograms")
    obs.add_argument("--flame", action="store_true",
                     help="print a perf-style report (call tree, library "
                          "shares, slow summary); single experiment only")
    obs.add_argument("--profile", action="store_true",
                     help="sample the harness's own host CPU while it runs "
                          "and print a self-profile (categories, hot frames)")
    obs.add_argument("--profile-svg", metavar="FILE",
                     help="write the self-profile as an SVG flamegraph "
                          "(implies --profile)")
    obs.add_argument("--flight-record", metavar="FILE",
                     help="write a JSONL flight log of campaign events "
                          "(task start/finish, cache hits, per-worker timing) "
                          "and show a live progress/ETA line")
    parser.add_argument("names", nargs="*",
                        help=f"experiment sets {sorted(campaign.EXPERIMENT_SETS)} "
                             f"or, with --evaluate, artifacts {ARTIFACTS}")
    args = parser.parse_args(argv)

    single_mode = args.kem is not None or args.sig is not None
    if single_mode and (args.kem is None or args.sig is None):
        parser.error("--kem and --sig must be given together")
    if single_mode and args.evaluate:
        parser.error("--evaluate renders named artifacts; it cannot be "
                     "combined with --kem/--sig")
    if not single_mode and not args.names:
        parser.error("nothing to do: name experiment sets (or artifacts with "
                     "--evaluate), or pick one experiment with --kem/--sig")
    if (args.trace or args.trace_jsonl or args.flame) and not single_mode:
        parser.error("--trace/--trace-jsonl/--flame trace a single handshake; "
                     "select it with --kem/--sig")
    try:
        split_scenario(args.scenario)
    except ValueError as exc:
        parser.error(f"--scenario: {exc}")
    if args.faults != "none":
        if not single_mode:
            parser.error("--faults applies to a single experiment; "
                         "select it with --kem/--sig")
        try:
            resolve_fault_plan(args.faults)
        except ValueError as exc:
            parser.error(f"--faults: {exc}")

    if args.flight_record and single_mode and not args.names:
        parser.error("--flight-record logs campaign events; name experiment "
                     "sets or artifacts to run")

    outdir = Path(args.output)
    metrics = Metrics() if args.metrics else NULL_METRICS
    recorder = (FlightRecorder(args.flight_record, live=True)
                if args.flight_record else NULL_RECORDER)
    # the live ETA line replaces the per-experiment progress prints
    progress = None if args.flight_record else _progress
    profiler = (SamplingProfiler()
                if args.profile or args.profile_svg else None)
    if profiler is not None:
        profiler.start()
    try:
        if args.evaluate:
            for name in args.names:
                evaluate_artifact(name, outdir, jobs=args.jobs,
                                  progress=progress, recorder=recorder,
                                  batch_seconds=args.batch_seconds)
        else:
            count = 0
            if single_mode:
                run_single(args, metrics)
                count += 1
            if args.names:
                results = campaign.run_sets(args.names, progress,
                                            metrics=metrics, jobs=args.jobs,
                                            recorder=recorder,
                                            batch_seconds=args.batch_seconds)
                count += len(results)
            print(f"ran {count} experiments", file=sys.stderr)
    finally:
        if profiler is not None:
            profiler.stop()
        recorder.close()
    if args.flight_record:
        print(f"wrote {recorder.path} ({len(recorder.events)} events)",
              file=sys.stderr)
    if profiler is not None:
        print(profiler.report(), file=sys.stderr)
        if args.profile_svg:
            path = write_flame_svg(profiler.to_tracer(), "host-cpu",
                                   args.profile_svg)
            print(f"wrote {path}", file=sys.stderr)
    if args.metrics:
        merged = Metrics()
        merged.merge(cache.metrics)   # hit/miss counts from this process
        merged.merge(metrics)
        path = write_metrics_json(merged, args.metrics)
        print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
