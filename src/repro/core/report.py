"""Render the paper's tables and figures as aligned text and CSV rows.

Beyond the paper artefacts, :func:`render_trace_report` and
:func:`render_table3_from_spans` turn a handshake trace into the textual
equivalent of ``perf report``: per-library shares, a flamegraph-style
call tree per CPU, and a "why was this slow" summary.
"""

from __future__ import annotations

import csv
import io

from repro.core.analysis import Deviation
from repro.core.campaign import SCENARIO_ORDER
from repro.core.evaluate import AttackMetrics, Table2Row, Table3Row, Table4Row
from repro.obs import flame as obs_flame


def _mark(row) -> str:
    if row.classical:
        return "*"       # pre-quantum (bold in the paper)
    if row.hybrid:
        return "+"       # hybrid (highlighted in the paper)
    return " "


def render_table2(rows: list[Table2Row], title: str) -> str:
    out = [title,
           f"{'Lvl':>3} {'Algorithm':<18} {'partA(ms)':>10} {'partB(ms)':>10} "
           f"{'#Total':>8} {'Client(B)':>10} {'Server(B)':>10}"]
    last_level = None
    for row in rows:
        level = str(row.level) if row.level != last_level else ""
        last_level = row.level
        out.append(
            f"{level:>3} {_mark(row)}{row.algorithm:<17} {row.part_a_ms:>10.2f} "
            f"{row.part_b_ms:>10.2f} {row.n_total:>8d} {row.client_bytes:>10d} "
            f"{row.server_bytes:>10d}"
        )
    out.append("(* pre-quantum, + hybrid)")
    return "\n".join(out)


def render_table3(rows: list[Table3Row]) -> str:
    out = ["Table 3: white-box measurements",
           f"{'Lvl':>3} {'KA':<15} {'SA':<12} {'HS/s':>7} {'srvCPU':>7} {'cliCPU':>7} "
           f"{'pkts s/c':>9}  top libraries (server | client)"]
    for row in rows:
        def top(shares: dict) -> str:
            ranked = sorted(shares.items(), key=lambda item: -item[1])[:3]
            return ",".join(f"{lib} {100 * share:.0f}%" for lib, share in ranked)
        out.append(
            f"{row.level:>3} {row.kem:<15} {row.sig:<12} {row.handshakes_per_s:>7.0f} "
            f"{row.server_cpu_ms:>7.2f} {row.client_cpu_ms:>7.2f} "
            f"{row.server_packets:>4d}/{row.client_packets:<4d} "
            f"{top(row.server_library_share)} | {top(row.client_library_share)}"
        )
    return "\n".join(out)


def render_table4(rows: list[Table4Row], title: str) -> str:
    header = f"{'Lvl':>3} {'Algorithm':<18} " + " ".join(
        f"{s:>13}" for s in SCENARIO_ORDER
    )
    out = [title, header]
    last_level = None
    for row in rows:
        level = str(row.level) if row.level != last_level else ""
        last_level = row.level
        cells = " ".join(f"{row.medians_ms[s]:>13.2f}" for s in SCENARIO_ORDER)
        marker = "*" if row.classical else " "
        out.append(f"{level:>3} {marker}{row.algorithm:<17} {cells}")
    out.append("(median total handshake latency in ms; * pre-quantum)")
    return "\n".join(out)


def render_deviations(deviations: list[Deviation], title: str) -> str:
    out = [title,
           f"{'Lvl':>3} {'KA':<14} {'SA':<16} {'E(ms)':>8} {'M(ms)':>8} {'E-M(ms)':>9}"]
    for dev in deviations:
        out.append(
            f"{dev.level:>3} {dev.kem:<14} {dev.sig:<16} {dev.expected * 1e3:>8.2f} "
            f"{dev.measured * 1e3:>8.2f} {dev.deviation * 1e3:>+9.2f}"
        )
    return "\n".join(out)


def render_ranking(kem_ranks: list[tuple[str, int]],
                   sig_ranks: list[tuple[str, int]]) -> str:
    def fmt(ranks):
        return "  ".join(f"{name}:{rank}" for name, rank in ranks)
    return (
        "Figure 4: algorithms ranked by log handshake latency (0 = fastest)\n"
        f"KAs : {fmt(kem_ranks)}\n"
        f"SAs : {fmt(sig_ranks)}"
    )


def render_attack_metrics(metrics: AttackMetrics) -> str:
    kem, sig, ratio = metrics.worst_cpu_ratio
    sig2, amp = metrics.worst_amplification
    return (
        "Section 5.5: attack-surface asymmetry\n"
        f"  worst server/client CPU ratio : {ratio:.1f}x  ({kem} + {sig})\n"
        f"  worst amplification factor    : {amp:.1f}x  (SA {sig2}; QUIC caps at 3x)"
    )


# -- perf-style views over one handshake trace -------------------------------

def _cpu_tracks(tracer) -> list[str]:
    return [track for track in tracer.tracks() if track.endswith("-cpu")]


def render_trace_report(tracer) -> str:
    """perf-report over one traced handshake: shares, call trees, stalls."""
    out = []
    for track in _cpu_tracks(tracer):
        totals = obs_flame.library_breakdown(tracer, track)
        grand = sum(totals.values())
        ranked = sorted(totals.items(), key=lambda item: -item[1])
        shares = "  ".join(f"{lib} {100 * value / grand:.1f}%"
                           for lib, value in ranked) if grand > 0 else "(idle)"
        host = track[: -len("-cpu")]
        out.append(f"{host} CPU {grand * 1e3:.3f} ms — {shares}")
    out.append("")
    for track in _cpu_tracks(tracer):
        out.append(obs_flame.flame_text(tracer, track))
        out.append("")
    out.append(obs_flame.render_slow_summary(obs_flame.summarize_slow(tracer)))
    return "\n".join(out)


def render_table3_from_spans(tracer, result) -> str:
    """Table 3's library percentages regenerated from trace spans.

    The cost-model sums (``client_cpu_by_library``) are printed alongside:
    the two columns must agree, which is the whole point — the trace is a
    faithful decomposition of the simulated CPU time, not a re-estimate.
    """
    config = result.config
    out = [f"Table 3 breakdown from spans — {config.kem} x {config.sig} "
           f"({config.scenario}, {config.policy})"]
    for host, legacy in (("server", result.server_cpu_by_library),
                         ("client", result.client_cpu_by_library)):
        span_totals = obs_flame.library_breakdown(tracer, f"{host}-cpu")
        span_grand = sum(span_totals.values())
        legacy_grand = sum(legacy.values())
        out.append(f"  {host}: {span_grand * 1e3:.3f} ms traced, "
                   f"{legacy_grand * 1e3:.3f} ms per handshake (cost model)")
        out.append(f"    {'library':<10} {'spans':>8} {'model':>8}")
        for lib in sorted(set(span_totals) | set(legacy),
                          key=lambda lib: -span_totals.get(lib, 0.0)):
            from_spans = (100 * span_totals.get(lib, 0.0) / span_grand
                          if span_grand > 0 else 0.0)
            from_model = (100 * legacy.get(lib, 0.0) / legacy_grand
                          if legacy_grand > 0 else 0.0)
            out.append(f"    {lib:<10} {from_spans:>7.1f}% {from_model:>7.1f}%")
    return "\n".join(out)


# -- CSV export (the artifact's latencies.csv / deviations.csv shapes) -------

def latencies_csv(rows: list[Table2Row]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["algorithm", "level", "partAMedian", "partBMedian",
                     "partAllMedian", "nTotal", "clientBytes", "serverBytes"])
    for row in rows:
        writer.writerow([
            row.algorithm, row.level, f"{row.part_a_ms:.4f}", f"{row.part_b_ms:.4f}",
            f"{row.part_a_ms + row.part_b_ms:.4f}", row.n_total,
            row.client_bytes, row.server_bytes,
        ])
    return buffer.getvalue()


def deviations_csv(deviations: list[Deviation]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kem", "sig", "level", "expectedMs", "measuredMs", "deviationMs"])
    for dev in deviations:
        writer.writerow([
            dev.kem, dev.sig, dev.level, f"{dev.expected * 1e3:.4f}",
            f"{dev.measured * 1e3:.4f}", f"{dev.deviation * 1e3:.4f}",
        ])
    return buffer.getvalue()
