"""Derived quantities for every table and figure of the paper."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.campaign import BASE_KEM, BASE_SIG, SCENARIO_ORDER
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.pqc.registry import CLASSICAL_KEMS, CLASSICAL_SIGS, get_kem, get_sig, is_hybrid


def _result(results: dict[str, ExperimentResult], **kwargs) -> ExperimentResult:
    config = ExperimentConfig(**kwargs)
    try:
        return results[config.key]
    except KeyError:
        raise KeyError(f"missing experiment {config.key}") from None


# -- Table 2 -----------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    level: int
    algorithm: str
    classical: bool
    hybrid: bool
    part_a_ms: float
    part_b_ms: float
    n_total: int
    client_bytes: int
    server_bytes: int


def table2a(results: dict[str, ExperimentResult], kem_names: list[str]) -> list[Table2Row]:
    rows = []
    for kem in kem_names:
        result = _result(results, kem=kem, sig=BASE_SIG)
        rows.append(Table2Row(
            level=get_kem(kem).nist_level,
            algorithm=kem,
            classical=kem in CLASSICAL_KEMS,
            hybrid=is_hybrid(kem),
            part_a_ms=result.part_a_median * 1e3,
            part_b_ms=result.part_b_median * 1e3,
            n_total=result.n_handshakes,
            client_bytes=result.client_bytes,
            server_bytes=result.server_bytes,
        ))
    return rows


def table2b(results: dict[str, ExperimentResult], sig_names: list[str]) -> list[Table2Row]:
    rows = []
    for sig in sig_names:
        result = _result(results, kem=BASE_KEM, sig=sig)
        rows.append(Table2Row(
            level=get_sig(sig).nist_level,
            algorithm=sig,
            classical=sig in CLASSICAL_SIGS,
            hybrid=is_hybrid(sig),
            part_a_ms=result.part_a_median * 1e3,
            part_b_ms=result.part_b_median * 1e3,
            n_total=result.n_handshakes,
            client_bytes=result.client_bytes,
            server_bytes=result.server_bytes,
        ))
    return rows


# -- Table 3 (white-box) --------------------------------------------------------

@dataclass(frozen=True)
class Table3Row:
    level: int
    kem: str
    sig: str
    handshakes_per_s: float
    server_cpu_ms: float
    client_cpu_ms: float
    server_library_share: dict
    client_library_share: dict
    server_packets: int
    client_packets: int


# the paper's Table 3 selection of (KA, SA) pairs
TABLE3_PAIRS = [
    (1, "x25519", "rsa:2048"),
    (1, "kyber512", "dilithium2"),
    (1, "bikel1", "dilithium2"),
    (1, "kyber512", "sphincs128"),
    (1, "hqc128", "falcon512"),
    (1, "p256_kyber512", "p256_dilithium2"),
    (3, "kyber768", "dilithium3"),
    (5, "kyber1024", "dilithium5"),
]


def _shares(by_library: dict) -> dict:
    total = sum(by_library.values())
    if total <= 0:
        return {}
    return {lib: value / total for lib, value in sorted(by_library.items())}


def table3(results: dict[str, ExperimentResult],
           pairs: list[tuple[int, str, str]] = TABLE3_PAIRS) -> list[Table3Row]:
    rows = []
    for level, kem, sig in pairs:
        result = _result(results, kem=kem, sig=sig, profiling=True)
        rows.append(Table3Row(
            level=level,
            kem=kem,
            sig=sig,
            handshakes_per_s=result.handshakes_per_second,
            server_cpu_ms=result.server_cpu_ms,
            client_cpu_ms=result.client_cpu_ms,
            server_library_share=_shares(result.server_cpu_by_library),
            client_library_share=_shares(result.client_cpu_by_library),
            server_packets=result.server_packets,
            client_packets=result.client_packets,
        ))
    return rows


# -- Table 4 (constrained environments) --------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    level: int
    algorithm: str
    classical: bool
    medians_ms: dict  # scenario -> median total latency in ms


def table4(results: dict[str, ExperimentResult], names: list[str],
           vary: str) -> list[Table4Row]:
    """vary='kem' for Table 4a, 'sig' for Table 4b."""
    rows = []
    for name in names:
        medians = {}
        for scenario in SCENARIO_ORDER:
            kwargs = dict(scenario=scenario)
            if vary == "kem":
                kwargs.update(kem=name, sig=BASE_SIG)
                level = get_kem(name).nist_level
                classical = name in CLASSICAL_KEMS
            else:
                kwargs.update(kem=BASE_KEM, sig=name)
                level = get_sig(name).nist_level
                classical = name in CLASSICAL_SIGS
            medians[scenario] = _result(results, **kwargs).total_median * 1e3
        rows.append(Table4Row(level=level, algorithm=name, classical=classical,
                              medians_ms=medians))
    return rows


# -- Figure 4 (log-latency ranking) ---------------------------------------------------

def ranking(latencies_ms: dict[str, float], buckets: int = 10) -> list[tuple[str, int]]:
    """The paper's Figure 4 scaling: log, linear-map to [0, buckets], round."""
    logs = {name: math.log(ms) for name, ms in latencies_ms.items()}
    low = min(logs.values())
    high = max(logs.values())
    span = (high - low) or 1.0
    ranked = [
        (name, round(buckets * (value - low) / span)) for name, value in logs.items()
    ]
    ranked.sort(key=lambda item: (item[1], logs[item[0]]))
    return ranked


def figure4(results: dict[str, ExperimentResult], kem_names: list[str],
            sig_names: list[str]) -> tuple[list[tuple[str, int]], list[tuple[str, int]]]:
    kem_latency = {
        kem: _result(results, kem=kem, sig=BASE_SIG).total_median * 1e3
        for kem in kem_names
    }
    sig_latency = {
        sig: _result(results, kem=BASE_KEM, sig=sig).total_median * 1e3
        for sig in sig_names
    }
    return ranking(kem_latency), ranking(sig_latency)


# -- §5.5 attack metrics -----------------------------------------------------------------

@dataclass(frozen=True)
class AttackMetrics:
    worst_cpu_ratio: tuple[str, str, float]        # (kem, sig, server/client)
    worst_amplification: tuple[str, float]         # (sig, server/client bytes)


def attack_metrics(whitebox: list[Table3Row],
                   table2b_rows: list[Table2Row]) -> AttackMetrics:
    worst_cpu = max(
        ((row.kem, row.sig, row.server_cpu_ms / row.client_cpu_ms)
         for row in whitebox if row.client_cpu_ms > 0),
        key=lambda item: item[2],
    )
    worst_amp = max(
        ((row.algorithm, row.server_bytes / row.client_bytes)
         for row in table2b_rows),
        key=lambda item: item[1],
    )
    return AttackMetrics(worst_cpu_ratio=worst_cpu, worst_amplification=worst_amp)
