"""One measurement run: sequential handshakes for 60 (simulated) seconds.

Mirrors the paper's §4: for a (KA, SA, scenario, OpenSSL-policy) tuple,
TLS handshakes run back-to-back for the measurement period; the reported
latencies are medians over the period. Between handshakes the testbed
pays a fixed tooling gap (process startup, TCP teardown) calibrated so the
per-period handshake counts land near Table 2's.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.crypto.drbg import Drbg
from repro import cache
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS
from repro.netsim.scripted import HandshakeScript, record_script, scripted_apps
from repro.netsim.testbed import run_simulated_handshake
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.obs.tracer import NULL_TRACER
from repro.tls.server import BufferPolicy

# Calibration: with this gap the no-emulation counts match Table 2
# (x25519/rsa:2048 -> ~22k handshakes per 60 s).
INTER_HANDSHAKE_GAP = 0.0009


@dataclass(frozen=True)
class ExperimentConfig:
    kem: str
    sig: str
    scenario: str = "none"
    policy: str = "optimized"          # "optimized" | "default"
    profiling: bool = False            # white-box (perf) run
    duration: float = 60.0             # measurement period, seconds
    seed: str = "paper"
    max_samples: int = 151             # cap on simulated handshakes per run

    @property
    def key(self) -> str:
        return (f"{self.kem}|{self.sig}|{self.scenario}|{self.policy}"
                f"|prof={self.profiling}|dur={self.duration}|seed={self.seed}"
                f"|max={self.max_samples}")


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    part_a_samples: list[float]
    part_b_samples: list[float]
    total_samples: list[float]
    n_handshakes: int
    client_bytes: int
    server_bytes: int
    client_packets: int
    server_packets: int
    client_cpu_ms: float = 0.0
    server_cpu_ms: float = 0.0
    client_cpu_by_library: dict = field(default_factory=dict)
    server_cpu_by_library: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)  # Metrics.snapshot() of the run

    @property
    def part_a_median(self) -> float:
        return statistics.median(self.part_a_samples)

    @property
    def part_b_median(self) -> float:
        return statistics.median(self.part_b_samples)

    @property
    def total_median(self) -> float:
        return statistics.median(self.total_samples)

    @property
    def handshakes_per_second(self) -> float:
        return self.n_handshakes / self.config.duration


def script_key(kem: str, sig: str, policy_value: str, seed: str = "paper") -> str:
    """The script-cache key; the executor groups experiments by this to
    single-flight recording (one script serves every scenario/duration)."""
    return f"{kem}|{sig}|{policy_value}|{seed}"


def load_script(kem: str, sig: str, policy: BufferPolicy,
                seed: str = "paper") -> HandshakeScript:
    """Load a recorded handshake script from the cache, recording on miss.

    Recording is single-flighted across processes: under parallel
    campaigns, the first worker to reach a missing key records it under a
    per-key file lock while its peers block on the lock and then load the
    stored script, instead of N workers redoing identical crypto.
    """
    key = script_key(kem, sig, policy.value, seed)
    script = cache.load("script", key)
    if script is None:
        with cache.lock("script", key):
            script = cache.load("script", key)
            if script is None:
                script = record_script(kem, sig, policy, seed=seed)
                cache.store("script", key, script)
    return script


def merge_result_metrics(result: ExperimentResult, metrics) -> None:
    """Replay a result's recorded metrics snapshot into ``metrics``.

    Used on cache hits and when folding parallel-worker results into the
    campaign registry, so an aggregated registry is identical whether the
    experiment ran here, in a worker, or was loaded from disk. Counters,
    gauges, *and* histograms are restored (snapshots carry raw samples;
    pre-samples snapshots from old cache entries degrade to counters and
    gauges only).
    """
    if metrics.enabled and result.metrics:
        metrics.merge_snapshot(result.metrics)


def run_experiment(config: ExperimentConfig, use_cache: bool = True,
                   tracer=NULL_TRACER, metrics=NULL_METRICS) -> ExperimentResult:
    """Execute (or load) one experiment.

    ``tracer`` records spans for the *first* handshake of the run (they all
    replay the same script, so one trace represents the run); a traced run
    bypasses the result cache both ways, keeping cached artifacts identical
    to untraced runs. ``metrics`` receives the run's counters/histograms;
    the same numbers are always snapshot onto ``ExperimentResult.metrics``.
    """
    if config.duration <= 0:
        raise ValueError(
            f"duration must be positive, got {config.duration!r} "
            "(the measurement period needs room for at least one handshake)")
    if config.max_samples < 1:
        raise ValueError(f"max_samples must be >= 1, got {config.max_samples!r}")
    tracing = tracer.enabled
    if use_cache and not tracing:
        cached = cache.load("experiment", config.key)
        if cached is not None:
            merge_result_metrics(cached, metrics)
            return cached
    policy = BufferPolicy(config.policy)
    script = load_script(config.kem, config.sig, policy, config.seed)
    scenario = SCENARIOS[config.scenario]
    cost_model = CostModel(profiling=config.profiling)
    drbg = Drbg(f"experiment:{config.key}")

    deterministic = scenario.loss == 0.0
    sample_cap = 3 if deterministic else config.max_samples

    part_a, part_b, totals, periods = [], [], [], []
    first_trace = None
    run_metrics = Metrics()
    elapsed = 0.0
    count = 0
    while elapsed < config.duration and len(totals) < sample_cap:
        client_app, server_app = scripted_apps(script)
        # every handshake replays the same script, so tracing the first one
        # captures the run's structure without recording thousands of copies
        hs_tracer = tracer if count == 0 else NULL_TRACER
        trace = run_simulated_handshake(
            client_app, server_app, scenario=scenario,
            netem_drbg=drbg.fork(f"netem:{count}"), cost_model=cost_model,
            max_sim_seconds=600.0,
            tracer=hs_tracer, metrics=run_metrics,
        )
        if first_trace is None:
            first_trace = trace
        part_a.append(trace.part_a)
        part_b.append(trace.part_b)
        totals.append(trace.total)
        period = trace.wall_end + INTER_HANDSHAKE_GAP
        periods.append(period)
        for lib, seconds in trace.client_cpu.items():
            run_metrics.inc(f"cpu.client.{lib}", seconds)
        for lib, seconds in trace.server_cpu.items():
            run_metrics.inc(f"cpu.server.{lib}", seconds)
        elapsed += period
        count += 1

    mean_period = statistics.fmean(periods)
    n_handshakes = count
    if elapsed < config.duration:
        # sample cap hit: extrapolate the count over the full period
        n_handshakes = int(config.duration / mean_period)

    samples_run = len(totals)
    cpu_client = run_metrics.counters_with_prefix("cpu.client.")
    cpu_server = run_metrics.counters_with_prefix("cpu.server.")
    client_cpu_total = sum(cpu_client.values()) / samples_run
    server_cpu_total = sum(cpu_server.values()) / samples_run
    result = ExperimentResult(
        config=config,
        part_a_samples=part_a,
        part_b_samples=part_b,
        total_samples=totals,
        n_handshakes=n_handshakes,
        client_bytes=first_trace.client_wire_bytes,
        server_bytes=first_trace.server_wire_bytes,
        client_packets=first_trace.client_packets,
        server_packets=first_trace.server_packets,
        client_cpu_ms=client_cpu_total * 1e3,
        server_cpu_ms=server_cpu_total * 1e3,
        client_cpu_by_library={k: v / samples_run for k, v in cpu_client.items()},
        server_cpu_by_library={k: v / samples_run for k, v in cpu_server.items()},
        metrics=run_metrics.snapshot(),
    )
    if metrics.enabled:
        metrics.merge(run_metrics)
    if use_cache and not tracing:
        cache.store("experiment", config.key, result)
    return result
