"""One measurement run: sequential handshakes for 60 (simulated) seconds.

Mirrors the paper's §4: for a (KA, SA, scenario, OpenSSL-policy) tuple,
TLS handshakes run back-to-back for the measurement period; the reported
latencies are medians over the period. Between handshakes the testbed
pays a fixed tooling gap (process startup, TCP teardown) calibrated so the
per-period handshake counts land near Table 2's.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.crypto.drbg import Drbg
from repro import cache
from repro.faults.errors import FailureQuotaExceeded
from repro.faults.outcome import KIND_TIMEOUT
from repro.faults.plan import CORRUPT_DELIVER, resolve_fault_plan
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS
from repro.netsim.scripted import HandshakeScript, record_script, scripted_apps
from repro.netsim.testbed import run_simulated_handshake
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.obs.tracer import NULL_TRACER
from repro.tls.server import BufferPolicy

# Calibration: with this gap the no-emulation counts match Table 2
# (x25519/rsa:2048 -> ~22k handshakes per 60 s).
INTER_HANDSHAKE_GAP = 0.0009

# Defaults for the failure-handling knobs (kept out of the cache key when
# unchanged, so pre-fault cache entries stay addressable).
DEFAULT_HANDSHAKE_TIMEOUT = 600.0
DEFAULT_FAILURE_QUOTA = 50


@dataclass(frozen=True)
class ExperimentConfig:
    kem: str
    sig: str
    scenario: str = "none"
    policy: str = "optimized"          # "optimized" | "default"
    profiling: bool = False            # white-box (perf) run
    duration: float = 60.0             # measurement period, seconds
    seed: str = "paper"
    max_samples: int = 151             # cap on simulated handshakes per run
    faults: str = "none"               # FaultPlan name or key=value spec
    handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT  # per-handshake wall clock
    failure_quota: int = DEFAULT_FAILURE_QUOTA  # failed handshakes tolerated per run
    session: str = "full"              # handshake shape (repro.tls.scenarios)
    chain: str = "direct"              # certificate-chain profile (certs.py)

    @property
    def key(self) -> str:
        base = (f"{self.kem}|{self.sig}|{self.scenario}|{self.policy}"
                f"|prof={self.profiling}|dur={self.duration}|seed={self.seed}"
                f"|max={self.max_samples}")
        # newer knobs append only when set, so older keys stay stable
        plan_spec = resolve_fault_plan(self.faults).spec
        if plan_spec != "none":
            base += f"|faults={plan_spec}"
        if self.handshake_timeout != DEFAULT_HANDSHAKE_TIMEOUT:
            base += f"|hsto={self.handshake_timeout}"
        if self.failure_quota != DEFAULT_FAILURE_QUOTA:
            base += f"|quota={self.failure_quota}"
        if self.session != "full":
            base += f"|session={self.session}"
        if self.chain != "direct":
            base += f"|chain={self.chain}"
        return base


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    part_a_samples: list[float]
    part_b_samples: list[float]
    total_samples: list[float]
    n_handshakes: int
    client_bytes: int
    server_bytes: int
    client_packets: int
    server_packets: int
    client_cpu_ms: float = 0.0
    server_cpu_ms: float = 0.0
    client_cpu_by_library: dict = field(default_factory=dict)
    server_cpu_by_library: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)  # Metrics.snapshot() of the run
    # outcome-key -> count over every attempted handshake ("success",
    # "timeout", "transport-error", "alert.<name>"); read with
    # getattr(result, "outcomes", {}) when old cached pickles may appear
    outcomes: dict = field(default_factory=dict)
    # connect -> first application byte, per successful handshake; read
    # with getattr(result, "ttfb_samples", []) against old cached pickles
    ttfb_samples: list = field(default_factory=list)

    @property
    def n_failures(self) -> int:
        return sum(n for key, n in self.outcomes.items() if key != "success")

    @property
    def part_a_median(self) -> float:
        return statistics.median(self.part_a_samples)

    @property
    def part_b_median(self) -> float:
        return statistics.median(self.part_b_samples)

    @property
    def total_median(self) -> float:
        return statistics.median(self.total_samples)

    @property
    def ttfb_median(self) -> float:
        samples = getattr(self, "ttfb_samples", [])
        return statistics.median(samples) if samples else 0.0

    @property
    def handshakes_per_second(self) -> float:
        return self.n_handshakes / self.config.duration


def script_key(kem: str, sig: str, policy_value: str, seed: str = "paper",
               session: str = "full", chain: str = "direct") -> str:
    """The script-cache key; the executor groups experiments by this to
    single-flight recording (one script serves every scenario/duration).
    Session/chain append only when non-default so pre-lifecycle cache
    entries stay addressable."""
    key = f"{kem}|{sig}|{policy_value}|{seed}"
    if session != "full":
        key += f"|session={session}"
    if chain != "direct":
        key += f"|chain={chain}"
    return key


def load_script(kem: str, sig: str, policy: BufferPolicy,
                seed: str = "paper", session: str = "full",
                chain: str = "direct") -> HandshakeScript:
    """Load a recorded handshake script from the cache, recording on miss.

    Recording is single-flighted across processes: under parallel
    campaigns, the first worker to reach a missing key records it under a
    per-key file lock while its peers block on the lock and then load the
    stored script, instead of N workers redoing identical crypto.
    """
    key = script_key(kem, sig, policy.value, seed, session, chain)
    script = cache.load("script", key)
    if script is None:
        with cache.lock("script", key):
            script = cache.load("script", key)
            if script is None:
                script = record_script(kem, sig, policy, seed=seed,
                                       session=session, chain=chain)
                cache.store("script", key, script)
    return script


def merge_result_metrics(result: ExperimentResult, metrics) -> None:
    """Replay a result's recorded metrics snapshot into ``metrics``.

    Used on cache hits and when folding parallel-worker results into the
    campaign registry, so an aggregated registry is identical whether the
    experiment ran here, in a worker, or was loaded from disk. Counters,
    gauges, *and* histograms are restored (snapshots carry raw samples;
    pre-samples snapshots from old cache entries degrade to counters and
    gauges only).
    """
    if metrics.enabled and result.metrics:
        metrics.merge_snapshot(result.metrics)


def run_experiment(config: ExperimentConfig, use_cache: bool = True,
                   tracer=NULL_TRACER, metrics=NULL_METRICS) -> ExperimentResult:
    """Execute (or load) one experiment.

    ``tracer`` records spans for the *first* handshake of the run (they all
    replay the same script, so one trace represents the run); a traced run
    bypasses the result cache both ways, keeping cached artifacts identical
    to untraced runs. ``metrics`` receives the run's counters/histograms;
    the same numbers are always snapshot onto ``ExperimentResult.metrics``.
    """
    if config.duration <= 0:
        raise ValueError(
            f"duration must be positive, got {config.duration!r} "
            "(the measurement period needs room for at least one handshake)")
    if config.max_samples < 1:
        raise ValueError(f"max_samples must be >= 1, got {config.max_samples!r}")
    plan = resolve_fault_plan(config.faults)
    if plan.active and plan.corrupt_mode == CORRUPT_DELIVER and (
            plan.corrupt or plan.corrupt_nth):
        raise ValueError(
            "deliver-mode corruption needs real TLS endpoints (Testbed); "
            "scripted replay only counts bytes and would sail past a flipped "
            "bit — use corrupt_mode=checksum in experiments")
    tracing = tracer.enabled
    if use_cache and not tracing:
        cached = cache.load("experiment", config.key)
        if cached is not None:
            merge_result_metrics(cached, metrics)
            return cached
    policy = BufferPolicy(config.policy)
    script = load_script(config.kem, config.sig, policy, config.seed,
                         config.session, config.chain)
    scenario = SCENARIOS[config.scenario]
    cost_model = CostModel(profiling=config.profiling)
    drbg = Drbg(f"experiment:{config.key}")

    deterministic = scenario.loss == 0.0
    sample_cap = 3 if deterministic else config.max_samples

    part_a, part_b, totals, ttfbs, periods = [], [], [], [], []
    outcomes: dict[str, int] = {}
    first_trace = None
    run_metrics = Metrics()
    elapsed = 0.0
    attempt = 0   # every attempt (success or failure) advances the DRBG fork
    failures = 0
    while elapsed < config.duration and len(totals) < sample_cap:
        client_app, server_app = scripted_apps(script)
        # every handshake replays the same script, so tracing the first one
        # captures the run's structure without recording thousands of copies
        hs_tracer = tracer if attempt == 0 else NULL_TRACER
        trace = run_simulated_handshake(
            client_app, server_app, scenario=scenario,
            netem_drbg=drbg.fork(f"netem:{attempt}"), cost_model=cost_model,
            max_sim_seconds=config.handshake_timeout,
            plan=plan if plan.active else None,
            tracer=hs_tracer, metrics=run_metrics,
        )
        attempt += 1
        outcomes[trace.outcome.key] = outcomes.get(trace.outcome.key, 0) + 1
        if not trace.outcome.ok:
            # retry with a fresh seed: the next attempt forks "netem:{n+1}",
            # so the retry sees new loss/fault randomness, and the failed
            # handshake's wall time still counts against the period
            failures += 1
            if failures > config.failure_quota:
                raise FailureQuotaExceeded(
                    f"{failures} failed handshakes (quota {config.failure_quota}) "
                    f"for {config.key}; last: {trace.outcome.key} "
                    f"({trace.outcome.detail})")
            if trace.outcome.kind == KIND_TIMEOUT:
                # the operator's watchdog would have waited out the timer
                elapsed += config.handshake_timeout + INTER_HANDSHAKE_GAP
            else:
                elapsed += trace.wall_end + INTER_HANDSHAKE_GAP
            continue
        if first_trace is None:
            first_trace = trace
        part_a.append(trace.part_a)
        part_b.append(trace.part_b)
        totals.append(trace.total)
        ttfbs.append(trace.ttfb)
        period = trace.wall_end + INTER_HANDSHAKE_GAP
        periods.append(period)
        for lib, seconds in trace.client_cpu.items():
            run_metrics.inc(f"cpu.client.{lib}", seconds)
        for lib, seconds in trace.server_cpu.items():
            run_metrics.inc(f"cpu.server.{lib}", seconds)
        elapsed += period

    if not totals:
        raise FailureQuotaExceeded(
            f"no successful handshake in {config.duration}s measurement period "
            f"for {config.key} ({failures} failures: {outcomes})")
    mean_period = statistics.fmean(periods)
    n_handshakes = len(totals)
    if elapsed < config.duration:
        # sample cap hit: extrapolate the count over the full period
        n_handshakes = int(config.duration / mean_period)

    samples_run = len(totals)
    cpu_client = run_metrics.counters_with_prefix("cpu.client.")
    cpu_server = run_metrics.counters_with_prefix("cpu.server.")
    client_cpu_total = sum(cpu_client.values()) / samples_run
    server_cpu_total = sum(cpu_server.values()) / samples_run
    result = ExperimentResult(
        config=config,
        part_a_samples=part_a,
        part_b_samples=part_b,
        total_samples=totals,
        n_handshakes=n_handshakes,
        client_bytes=first_trace.client_wire_bytes,
        server_bytes=first_trace.server_wire_bytes,
        client_packets=first_trace.client_packets,
        server_packets=first_trace.server_packets,
        client_cpu_ms=client_cpu_total * 1e3,
        server_cpu_ms=server_cpu_total * 1e3,
        client_cpu_by_library={k: v / samples_run for k, v in cpu_client.items()},
        server_cpu_by_library={k: v / samples_run for k, v in cpu_server.items()},
        metrics=run_metrics.snapshot(),
        outcomes=outcomes,
        ttfb_samples=ttfbs,
    )
    if metrics.enabled:
        metrics.merge(run_metrics)
    if use_cache and not tracing:
        cache.store("experiment", config.key, result)
    return result
