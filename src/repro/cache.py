"""Disk cache for recorded handshake scripts and experiment results.

Recording a script runs real crypto (a SPHINCS+-256f signature alone is
tens of seconds of pure-Python hashing), so scripts are cached under
``.cache/`` keyed by configuration + a schema version. Delete the
directory (or set ``REPRO_CACHE_DIR``) to force re-recording.

Hit/miss/store counts land in the module-level :data:`metrics` registry
(``cache.<kind>.hit`` / ``.miss`` / ``.store`` / ``.evicted``), which the
CLI folds into its ``--metrics`` output.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.obs.metrics import Metrics

# v4: ExperimentResult grew a metrics snapshot, CryptoOp a detail label
SCHEMA_VERSION = 4

metrics = Metrics()


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[2] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key_path(kind: str, key: str) -> Path:
    digest = hashlib.sha256(f"v{SCHEMA_VERSION}:{kind}:{key}".encode()).hexdigest()[:24]
    sub = cache_dir() / kind
    sub.mkdir(parents=True, exist_ok=True)
    return sub / f"{digest}.pkl"


def load(kind: str, key: str):
    path = _key_path(kind, key)
    if not path.exists():
        metrics.inc(f"cache.{kind}.miss")
        return None
    try:
        with path.open("rb") as handle:
            value = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        # truncated/corrupt pickle or a class that no longer unpickles:
        # evict and re-record; anything else is a bug and must surface
        path.unlink(missing_ok=True)
        metrics.inc(f"cache.{kind}.evicted")
        metrics.inc(f"cache.{kind}.miss")
        return None
    metrics.inc(f"cache.{kind}.hit")
    return value


def store(kind: str, key: str, value) -> None:
    path = _key_path(kind, key)
    tmp = path.with_suffix(".tmp")
    with tmp.open("wb") as handle:
        pickle.dump(value, handle)
    tmp.replace(path)
    metrics.inc(f"cache.{kind}.store")
