"""Disk cache for recorded handshake scripts and experiment results.

Recording a script runs real crypto (a SPHINCS+-256f signature alone is
tens of seconds of pure-Python hashing), so scripts are cached under
``.cache/`` keyed by configuration + a schema version. Delete the
directory (or set ``REPRO_CACHE_DIR``) to force re-recording.

The cache is safe under concurrent writers (the parallel campaign
executor runs one process per core against the same directory): `store`
writes to a unique per-process temp file and publishes it with an atomic
``os.replace``, and `lock` hands out a per-key advisory file lock so
expensive recordings can be single-flighted across processes.

Hit/miss/store counts land in the module-level :data:`metrics` registry
(``cache.<kind>.hit`` / ``.miss`` / ``.store`` / ``.evicted``), which the
CLI folds into its ``--metrics`` output.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX: locks degrade to no-ops (see `lock`)
    fcntl = None

from repro.obs.metrics import Metrics

# v4: ExperimentResult grew a metrics snapshot, CryptoOp a detail label
SCHEMA_VERSION = 4

# Per-kind bumps invalidate one artifact family without re-recording the
# rest. experiment v5: the netem drop-before-rate fix changed every lossy
# scenario's timings (scripts are unaffected — recording runs on a perfect
# link), so experiment results recompute while scripts stay cached.
KIND_VERSIONS = {"experiment": 5}

metrics = Metrics()


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[2] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key_path(kind: str, key: str) -> Path:
    version = f"v{SCHEMA_VERSION}"
    if kind in KIND_VERSIONS:  # unversioned kinds keep their pre-bump paths
        version += f".{KIND_VERSIONS[kind]}"
    digest = hashlib.sha256(f"{version}:{kind}:{key}".encode()).hexdigest()[:24]
    sub = cache_dir() / kind
    sub.mkdir(parents=True, exist_ok=True)
    return sub / f"{digest}.pkl"


def contains(kind: str, key: str) -> bool:
    """Counter-neutral existence probe (no hit/miss accounting).

    The campaign executor partitions hits from misses with this before
    deciding whether a pool is worth spawning; the miss itself is only
    counted by whoever eventually :func:`load`-s and records, so the
    counters come out identical to a serial run.
    """
    return _key_path(kind, key).exists()


def load(kind: str, key: str):
    path = _key_path(kind, key)
    if not path.exists():
        metrics.inc(f"cache.{kind}.miss")
        return None
    try:
        with path.open("rb") as handle:
            value = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        # truncated/corrupt pickle or a class that no longer unpickles:
        # evict and re-record; anything else is a bug and must surface
        path.unlink(missing_ok=True)
        metrics.inc(f"cache.{kind}.evicted")
        metrics.inc(f"cache.{kind}.miss")
        return None
    metrics.inc(f"cache.{kind}.hit")
    return value


def store(kind: str, key: str, value) -> None:
    path = _key_path(kind, key)
    # unique per-process temp name: concurrent stores of the same key must
    # not share a temp file (a fixed `.tmp` suffix lets writer B truncate
    # the file writer A is about to publish, or os.replace a name A already
    # consumed); whoever replaces last wins, and every replace is atomic
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.stem + "-",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    metrics.inc(f"cache.{kind}.store")


@contextlib.contextmanager
def lock(kind: str, key: str):
    """Advisory per-key exclusive lock (single-flight for slow recordings).

    Callers follow the double-checked pattern::

        value = cache.load(kind, key)
        if value is None:
            with cache.lock(kind, key):
                value = cache.load(kind, key)   # a peer may have finished
                if value is None:
                    value = expensive_compute()
                    cache.store(kind, key, value)

    On POSIX this is ``flock`` on a sibling ``.lock`` file (blocking, so
    waiters sleep in the kernel until the recorder releases). The lock
    file is left in place — unlinking under contention races a peer that
    already opened it. Without ``fcntl`` (non-POSIX) the lock is a no-op:
    peers may duplicate work, but unique temp names keep stores safe.
    """
    if fcntl is None:
        yield
        return
    path = _key_path(kind, key).with_suffix(".lock")
    fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
