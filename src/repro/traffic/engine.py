"""The traffic engine: arrivals × queueing profiles on the event loop.

One *shard* simulates a contiguous time-slice of the arrival timeline
against its own :class:`~repro.traffic.server.ServerCores` and a fresh
:class:`~repro.obs.metrics.Metrics` registry. Per handshake the engine
runs exactly four event-loop callbacks — arrival, burst-A enqueue,
burst-B enqueue (where every latency is observed), completion — and
allocates nothing but three `partial` thunks: connection state lives in
a pooled free-list, latencies stream straight into the registry's
histograms (exact to the retention window, constant-memory sketch +
reservoir beyond), so memory is flat in the handshake count.

Determinism contract (`--jobs` bit-identity): the shard layout depends
only on the config (never on the worker count), each shard forks its
DRBG as ``Drbg("traffic:<key>").fork("shard:<i>")``, and the leader
merges the per-shard snapshots in shard-index order. The serial path
runs the *same* shard task inline, so ``--jobs 1`` and ``--jobs N``
produce byte-identical merged sketch state. Closed-loop runs restart
their N clients at each shard boundary (a cold-cache approximation the
shard size controls); open-loop arrivals are exact.

Host wall-clock appears only in flight-recorder heartbeats (via
:func:`repro.obs.recorder.walltime`, the sanctioned accessor) and never
feeds a simulated result.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from functools import partial

from repro.core import executor
from repro.crypto.drbg import Drbg
from repro.netsim.eventloop import EventLoop
from repro.obs.hostmeta import rss_bytes
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.obs.recorder import NULL_RECORDER, walltime
from repro.traffic.arrivals import Window, open_arrivals, parse_arrival
from repro.traffic.profile import handshake_profile
from repro.traffic.server import ServerCores

# host seconds between flight-recorder heartbeats (checked every
# _HEARTBEAT_MASK+1 completions so the hot path never reads the clock)
HEARTBEAT_SECONDS = 5.0
_HEARTBEAT_MASK = 0x3FF

_UNSAFE = re.compile(r"[^a-z0-9_]")


def metric_key(name: str) -> str:
    """An algorithm name as a metric-name component (OBS001-clean)."""
    return _UNSAFE.sub("_", name.lower())


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic run; hashable and picklable (pairs are tuples)."""

    arrival: str = "poisson:1000/s"
    duration: float = 60.0
    pairs: tuple[tuple[str, str], ...] = (("kyber512", "dilithium2"),)
    scenario: str = "none"
    policy: str = "optimized"
    seed: str = "paper"
    shard_seconds: float = 60.0
    server_cores: int = 1
    max_in_flight: int = 100_000
    # per-pair PSK-resumption fraction in [0, 1] (one entry per pair;
    # empty = all-full handshakes, the pre-lifecycle behavior)
    resume: tuple[float, ...] = ()

    @property
    def key(self) -> str:
        pair_text = "+".join(f"{kem}/{sig}" for kem, sig in self.pairs)
        base = (f"{self.arrival}|d={self.duration}|{pair_text}"
                f"|{self.scenario}|{self.policy}|seed={self.seed}"
                f"|shard={self.shard_seconds}|cores={self.server_cores}"
                f"|mif={self.max_in_flight}")
        # appended only when set, so pre-lifecycle keys stay stable
        if any(self.resume):
            base += "|resume=" + ",".join(f"{f:g}" for f in self.resume)
        return base


@dataclass(frozen=True)
class TrafficSummary:
    """Leader-side aggregate of a run (quantiles live in the metrics)."""

    config: TrafficConfig
    jobs: int
    shards: int
    offered: int
    completed: int
    dropped: int
    peak_in_flight: int
    busy_seconds: float
    pool_peak: int

    @property
    def load_factor(self) -> float:
        """Offered CPU seconds over capacity (ρ); > 1 means overload —
        every admitted handshake is still served, draining past the
        window's end, so this measures offered load, not busy fraction."""
        capacity = self.config.duration * self.config.server_cores
        return self.busy_seconds / capacity if capacity > 0 else 0.0


def shard_windows(config: TrafficConfig) -> list[Window]:
    """The run's deterministic shard layout (independent of ``--jobs``)."""
    duration = config.duration
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration!r}")
    size = config.shard_seconds
    if size <= 0:
        raise ValueError(f"shard_seconds must be positive, got {size!r}")
    count = max(1, math.ceil(duration / size - 1e-12))
    return [Window(i, i * size, duration if i == count - 1 else (i + 1) * size)
            for i in range(count)]


class _Conn:
    """Pooled per-handshake state (free-listed, never per-handshake GC)."""

    __slots__ = ("channel", "wait_a")

    def __init__(self):
        self.channel = None
        self.wait_a = 0.0


class _PairChannel:
    """One (KEM, SIG) pair's profile plus bound histogram observers."""

    __slots__ = ("profile", "prefix", "completed", "part_a", "part_b",
                 "total", "ttfb", "wait")

    def __init__(self, profile, metrics, prefix: str):
        self.profile = profile
        self.prefix = prefix
        self.completed = 0
        self.part_a = metrics.histogram(prefix + "part_a").observe
        self.part_b = metrics.histogram(prefix + "part_b").observe
        self.total = metrics.histogram(prefix + "total").observe
        self.ttfb = metrics.histogram(prefix + "ttfb").observe
        self.wait = metrics.histogram(prefix + "server_wait").observe


class _ShardEngine:
    """One time-slice of the run: arrivals -> queueing -> streamed latencies."""

    def __init__(self, config: TrafficConfig, window: Window, metrics,
                 recorder=NULL_RECORDER,
                 heartbeat_seconds: float = HEARTBEAT_SECONDS):
        self.config = config
        self.window = window
        self.loop = EventLoop()
        self.server = ServerCores(config.server_cores)
        self.spec = parse_arrival(config.arrival, config.duration)
        self.drbg = Drbg(f"traffic:{config.key}").fork(f"shard:{window.index}")
        fractions = config.resume or (0.0,) * len(config.pairs)
        self.channels = []
        self.resume_channels = []
        for (kem, sig), fraction in zip(config.pairs, fractions):
            prefix = f"traffic.{metric_key(kem)}.{metric_key(sig)}."
            self.channels.append(_PairChannel(
                handshake_profile(kem, sig, scenario=config.scenario,
                                  policy=config.policy, seed=config.seed),
                metrics, prefix))
            # a resumed-handshake channel exists only for mixed pairs, so
            # all-full configs build (and draw) exactly what they used to
            self.resume_channels.append(_PairChannel(
                handshake_profile(kem, sig, scenario=config.scenario,
                                  policy=config.policy, seed=config.seed,
                                  session="resume"),
                metrics, prefix + "resume.") if fraction > 0.0 else None)
        self.fractions = fractions
        self._pick = (self.drbg.fork("pair")
                      if len(self.channels) > 1 else None)
        self._resume_pick = (self.drbg.fork("resume")
                             if any(fractions) else None)
        self.pool: list[_Conn] = []
        self.pool_peak = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.offered = 0
        self.completed = 0
        self.dropped = 0
        self._arrivals = None
        # heartbeat bookkeeping (host clock; observation only)
        self._recorder = recorder
        self._beat = recorder.enabled
        self._beat_seconds = heartbeat_seconds
        self._beat_t = walltime() if self._beat else 0.0
        self._beat_done = 0

    # -- arrival drivers ----------------------------------------------------
    def run(self) -> None:
        if self.spec.closed:
            self._start_closed()
        else:
            self._arrivals = open_arrivals(self.spec, self.window,
                                           self.drbg.fork("arrivals"))
            self._chain_arrival()
        # arrivals stop at the window's end, so the queue always drains:
        # in-flight handshakes complete past the boundary, then the loop
        # goes idle (no budget cap — 1M handshakes is ~4M events)
        self.loop.run(max_events=1 << 62)

    def _chain_arrival(self) -> None:
        at = self._arrivals.next_time()
        if at is not None:
            self.loop.schedule(at - self.loop.now, self._open_arrival)

    def _open_arrival(self) -> None:
        self._chain_arrival()
        self._begin()

    def _start_closed(self) -> None:
        # clients ramp in uniformly over one think time (10 ms minimum)
        # so a shard never opens with a synchronized thundering herd
        ramp = max(self.spec.think, 0.01)
        stagger = self.drbg.fork("stagger")
        start = self.window.start
        for _ in range(self.spec.clients):
            self.loop.schedule(start + stagger.random() * ramp, self._begin)

    # -- per-handshake hot path (4 events, zero per-handshake objects) -------
    def _begin(self) -> None:
        self.offered += 1
        if self.in_flight >= self.config.max_in_flight:
            self.dropped += 1
            return
        channels = self.channels
        index = (0 if self._pick is None
                 else self._pick.randint_below(len(channels)))
        channel = channels[index]
        resume_channel = self.resume_channels[index]
        if resume_channel is not None and \
                self._resume_pick.random() < self.fractions[index]:
            channel = resume_channel
        pool = self.pool
        conn = pool.pop() if pool else _Conn()
        conn.channel = channel
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        self.loop.schedule(channel.profile.a_enqueue,
                           partial(self._enqueue_a, conn))

    def _enqueue_a(self, conn: _Conn) -> None:
        now = self.loop.now
        profile = conn.channel.profile
        start, end = self.server.acquire(now, profile.burst_a)
        conn.wait_a = start - now
        self.loop.schedule(end + profile.b_gap - now,
                           partial(self._enqueue_b, conn))

    def _enqueue_b(self, conn: _Conn) -> None:
        now = self.loop.now
        channel = conn.channel
        profile = channel.profile
        start, end = self.server.acquire(now, profile.burst_b)
        wait_a = conn.wait_a
        wait_b = start - now
        # wait_a shifts the whole server flight, so it lands in part A and
        # everything downstream; wait_b happens after the client's
        # Finished is already on the wire, so only TTFB sees it
        channel.part_a(profile.part_a + wait_a)
        channel.part_b(profile.part_b)
        channel.total(profile.total + wait_a)
        channel.ttfb(profile.ttfb + wait_a + wait_b)
        channel.wait(wait_a + wait_b)
        channel.completed += 1
        self.loop.schedule(end + profile.resp_transit - now,
                           partial(self._finish, conn))

    def _finish(self, conn: _Conn) -> None:
        self.in_flight -= 1
        self.completed += 1
        conn.channel = None
        pool = self.pool
        pool.append(conn)
        if len(pool) > self.pool_peak:
            self.pool_peak = len(pool)
        if self.spec.closed:
            think = self.spec.think
            if self.loop.now + think < self.window.end:
                self.loop.schedule(think, self._begin)
        if self._beat and not (self.completed & _HEARTBEAT_MASK):
            self._heartbeat()

    # -- observation ---------------------------------------------------------
    def _heartbeat(self) -> None:
        now = walltime()
        elapsed = now - self._beat_t
        if elapsed < self._beat_seconds:
            return
        done = self.completed
        self._recorder.heartbeat(
            in_flight=self.in_flight, completed=done,
            hps=(done - self._beat_done) / elapsed if elapsed > 0 else None,
            rss=rss_bytes(), shard=self.window.index,
            sim_t=round(self.loop.now, 3))
        self._beat_t = now
        self._beat_done = done

    def finalize(self, metrics) -> dict:
        """Flush shard counters into the registry, return the aggregates."""
        metrics.inc("traffic.offered", self.offered)
        metrics.inc("traffic.completed", self.completed)
        metrics.inc("traffic.dropped", self.dropped)
        metrics.inc("traffic.shards")
        metrics.inc("traffic.server.busy_s", self.server.busy_seconds)
        for channel in self.channels:
            metrics.inc(channel.prefix + "completed", channel.completed)
        for channel in self.resume_channels:
            if channel is not None:
                metrics.inc(channel.prefix + "completed", channel.completed)
        return {
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "peak_in_flight": self.peak_in_flight,
            "busy_seconds": self.server.busy_seconds,
            "pool_peak": self.pool_peak,
        }


def _run_shard(config: TrafficConfig, index: int, metrics,
               recorder=NULL_RECORDER,
               heartbeat_seconds: float = HEARTBEAT_SECONDS) -> dict:
    """Run one shard into ``metrics`` (a fresh per-shard registry)."""
    window = shard_windows(config)[index]
    engine = _ShardEngine(config, window, metrics, recorder=recorder,
                          heartbeat_seconds=heartbeat_seconds)
    engine.run()
    return engine.finalize(metrics)


def _shard_task(payload: tuple[TrafficConfig, int]) -> tuple[dict, dict]:
    """Worker entry point: one shard -> (metrics snapshot, aggregates)."""
    config, index = payload
    metrics = Metrics()
    shard = _run_shard(config, index, metrics)
    return metrics.snapshot(), shard


def run_traffic(config: TrafficConfig, *, jobs: int | None = 1,
                metrics=NULL_METRICS, recorder=NULL_RECORDER,
                heartbeat_seconds: float = HEARTBEAT_SECONDS
                ) -> TrafficSummary:
    """Run the full arrival timeline, sharded over ``jobs`` workers.

    The merged content of ``metrics`` — and therefore any exported
    snapshot — is byte-identical at any ``jobs``: both paths run the
    same per-shard task against a fresh registry and merge the snapshots
    in shard-index order; only wall-clock time changes. ``recorder``
    observes (shard progress, heartbeats) and never alters results.
    """
    parse_arrival(config.arrival, config.duration)  # fail fast on bad specs
    if config.resume:
        if len(config.resume) != len(config.pairs):
            raise ValueError(
                f"resume needs one fraction per pair: got "
                f"{len(config.resume)} fractions for {len(config.pairs)} pairs")
        for fraction in config.resume:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"resume fractions must be in [0, 1], got {fraction!r}")
    fractions = config.resume or (0.0,) * len(config.pairs)
    for (kem, sig), fraction in zip(config.pairs, fractions):
        handshake_profile(kem, sig, scenario=config.scenario,
                          policy=config.policy, seed=config.seed)
        if fraction > 0.0:
            handshake_profile(kem, sig, scenario=config.scenario,
                              policy=config.policy, seed=config.seed,
                              session="resume")
    windows = shard_windows(config)
    jobs = executor.resolve_jobs(jobs)
    flight = recorder.enabled
    started = walltime() if flight else 0.0
    if flight:
        recorder.event("traffic_begin", key=config.key, shards=len(windows),
                       jobs=jobs)

    if jobs == 1 or len(windows) == 1:
        results = []
        for window in windows:
            shard_metrics = Metrics()
            shard = _run_shard(config, window.index, shard_metrics,
                               recorder=recorder,
                               heartbeat_seconds=heartbeat_seconds)
            results.append((shard_metrics.snapshot(), shard))
            if flight:
                recorder.event("shard_finish", shard=window.index,
                               mode="serial", **shard)
    else:
        payloads = [(config, window.index) for window in windows]
        on_complete = _leader_progress(recorder, started) if flight else None
        results = executor.run_sharded(_shard_task, payloads, jobs=jobs,
                                       on_complete=on_complete)

    offered = completed = dropped = peak = pool_peak = 0
    busy = 0.0
    for snapshot, shard in results:
        metrics.merge_snapshot(snapshot)
        offered += shard["offered"]
        completed += shard["completed"]
        dropped += shard["dropped"]
        busy += shard["busy_seconds"]
        peak = max(peak, shard["peak_in_flight"])
        pool_peak = max(pool_peak, shard["pool_peak"])
    summary = TrafficSummary(
        config=config, jobs=jobs, shards=len(windows), offered=offered,
        completed=completed, dropped=dropped, peak_in_flight=peak,
        busy_seconds=busy, pool_peak=pool_peak)
    if flight:
        recorder.event("traffic_end", offered=offered, completed=completed,
                       dropped=dropped, shards=len(windows),
                       host_seconds=round(walltime() - started, 6))
    return summary


def _leader_progress(recorder, started: float):
    """Per-shard-completion observer for the parallel path (leader side)."""
    progress = {"shards": 0, "completed": 0}

    def on_complete(index: int, result) -> None:
        _, shard = result
        progress["shards"] += 1
        progress["completed"] += shard["completed"]
        recorder.event("shard_finish", shard=index, mode="worker", **shard)
        elapsed = walltime() - started
        recorder.heartbeat(
            completed=progress["completed"],
            hps=progress["completed"] / elapsed if elapsed > 0 else None,
            rss=rss_bytes(), shards_done=progress["shards"])

    return on_complete
