"""Calibration: one full-fidelity handshake per pair -> a queueing profile.

Replaying the complete TCP/netem simulation per handshake costs
milliseconds of host time — three orders of magnitude too slow for a
million-handshake run. But under load the *only* shared resource is the
server's CPU: every other component of handshake latency (client
compute, propagation, serialization) is private to the connection and
identical to the uncontended case. So the engine runs the full
simulation **once** per (KA, SA, scenario, policy) and compresses it
into a :class:`HandshakeProfile`:

* the calibrated uncontended phase latencies (part A, part B, total) and
  the derived time-to-first-byte;
* the server's two CPU *bursts* — phase A (accept + ClientHello through
  the ServerHello..Finished flight: KEM keygen/encaps, CertificateVerify
  signing, record protection) and phase B (client Finished processing) —
  split analytically from the recorded script's milestones priced by the
  cost model, with the trace's total server CPU (which also carries
  per-packet kernel/driver and tooling costs) assigned to phase A's
  burst so the two bursts sum to the measured total;
* the wire offsets that place those bursts on the arrival timeline.

Under load, each handshake's latency is then ``base + queueing wait`` of
its bursts on the shared :class:`~repro.traffic.server.ServerCores` —
exact at zero contention by construction, M/G/k-style queueing beyond.

Calibration always runs the scenario's *lossless* twin (loss forced to
0): the baseline must be the deterministic common case, not one random
draw of a retransmit distribution. Loss-induced tail effects remain the
experiment layer's subject (`repro.core`); this layer isolates
contention. Profiles are cached per process, so a worker prices each
pair once no matter how many shards it runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import load_script
from repro.crypto.drbg import Drbg
from repro.netsim.costmodel import CostModel
from repro.netsim.netem import SCENARIOS, NetemConfig
from repro.netsim.scripted import HandshakeScript, ScriptedSend, scripted_apps
from repro.netsim.testbed import run_simulated_handshake
from repro.tls.actions import Compute
from repro.tls.server import BufferPolicy

# Wire framing used for the analytic transit legs: TCP/IPv4/Ethernet
# header bytes per segment on top of the TLS stream bytes.
_MSS = 1448
_HEADER_BYTES = 66


class CalibrationError(RuntimeError):
    """The calibration handshake failed — lossless replay must succeed."""


@dataclass(frozen=True)
class HandshakeProfile:
    """Everything the traffic engine needs to know about one pair."""

    kem: str
    sig: str
    scenario: str
    policy: str
    # uncontended baselines (seconds), from the calibration trace
    part_a: float                # CH -> SH
    part_b: float                # SH -> client Finished
    total: float                 # CH -> client Finished
    ttfb: float                  # connect -> first application byte
    # server CPU bursts (seconds)
    burst_a: float               # accept + CH processing + server flight
    burst_b: float               # client Finished processing
    # timeline offsets (seconds from the handshake's arrival)
    a_enqueue: float             # when the CH reaches the server
    b_gap: float                 # end of burst A -> burst B enqueue
    resp_transit: float          # end of burst B -> first byte at client
    # per-handshake totals for reporting
    server_cpu: float
    client_cpu: float
    wire_bytes: int
    session: str = "full"        # handshake shape (repro.tls.scenarios)


def _transit(stream_bytes: int, scenario: NetemConfig) -> float:
    """One-way flight time of a TLS stream chunk: propagation + wire."""
    if stream_bytes <= 0:
        return scenario.one_way_delay
    segments = (stream_bytes + _MSS - 1) // _MSS
    wire_bits = 8.0 * (stream_bytes + _HEADER_BYTES * segments)
    return scenario.one_way_delay + wire_bits / scenario.rate_bps


def _client_hello_bytes(script: HandshakeScript) -> int:
    """Stream length of the client's first flight (the CH milestone)."""
    first = script.client_milestones[0]
    return sum(action.length for action in first.actions
               if isinstance(action, ScriptedSend))


def _phase_b_cost(script: HandshakeScript, ch_bytes: int,
                  cost_model: CostModel) -> float:
    """Analytic server CPU of the milestones the client Finished triggers."""
    seconds = 0.0
    for milestone in script.server_milestones:
        if milestone.after_bytes <= ch_bytes:
            continue
        for action in milestone.actions:
            if isinstance(action, Compute):
                for op in action.ops:
                    seconds += cost_model.op_cost(op, "server").seconds
    return seconds


def build_profile(kem: str, sig: str, scenario: str = "none",
                  policy: str = "optimized",
                  seed: str = "paper",
                  session: str = "full") -> HandshakeProfile:
    """Run the calibration handshake and derive the queueing profile."""
    netem = SCENARIOS[scenario]
    if netem.loss:
        netem = NetemConfig(name=netem.name, loss=0.0, rtt=netem.rtt,
                            rate_bps=netem.rate_bps)
    buffer_policy = BufferPolicy(policy)
    script = load_script(kem, sig, buffer_policy, seed, session)
    cost_model = CostModel()
    client_app, server_app = scripted_apps(script)
    label = f"traffic-profile:{kem}:{sig}:{scenario}:{policy}:{seed}"
    if session != "full":
        # appended only when non-default: full-session labels (and the
        # netem draws they seed) stay identical to pre-lifecycle runs
        label += f":{session}"
    drbg = Drbg(label)
    trace = run_simulated_handshake(
        client_app, server_app, scenario=netem,
        netem_drbg=drbg.fork("netem:0"), cost_model=cost_model)
    if not trace.outcome.ok:
        raise CalibrationError(
            f"calibration handshake failed for {kem}/{sig} on "
            f"{scenario}: {trace.outcome.key} ({trace.outcome.detail})")

    ch_bytes = _client_hello_bytes(script)
    fin_bytes = script.server_total_in - ch_bytes
    burst_b = _phase_b_cost(script, ch_bytes, cost_model)
    server_cpu = sum(trace.server_cpu.values())
    # phase A absorbs everything else the server measurably spent —
    # analytic phase-A ops plus per-packet kernel/driver and tooling —
    # so the bursts sum exactly to the calibrated server CPU
    burst_a = max(server_cpu - burst_b, 0.0)

    a_enqueue = trace.t_ch + _transit(ch_bytes, netem)
    b_enqueue = trace.t_fin + _transit(fin_bytes, netem)
    # burst B can never start before burst A finished; if the analytic
    # burst A overruns the calibrated SH timing (tooling is charged at
    # accept time, before the CH fully arrived) the gap clamps to zero
    b_gap = max(0.0, b_enqueue - (a_enqueue + burst_a))
    resp_transit = _transit(_MSS, netem)
    ttfb = (a_enqueue + burst_a + b_gap) + burst_b + resp_transit

    return HandshakeProfile(
        kem=kem,
        sig=sig,
        scenario=scenario,
        policy=policy,
        session=session,
        part_a=trace.part_a,
        part_b=trace.part_b,
        total=trace.total,
        ttfb=ttfb,
        burst_a=burst_a,
        burst_b=burst_b,
        a_enqueue=a_enqueue,
        b_gap=b_gap,
        resp_transit=resp_transit,
        server_cpu=server_cpu,
        client_cpu=sum(trace.client_cpu.values()),
        wire_bytes=trace.client_wire_bytes + trace.server_wire_bytes,
    )


_PROFILES: dict[tuple, HandshakeProfile] = {}


def handshake_profile(kem: str, sig: str, scenario: str = "none",
                      policy: str = "optimized",
                      seed: str = "paper",
                      session: str = "full") -> HandshakeProfile:
    """Per-process cached :func:`build_profile` (pure, so caching is safe)."""
    key = (kem, sig, scenario, policy, seed, session)
    profile = _PROFILES.get(key)
    if profile is None:
        profile = _PROFILES[key] = build_profile(
            kem, sig, scenario=scenario, policy=policy, seed=seed,
            session=session)
    return profile
