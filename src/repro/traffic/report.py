"""Tail-latency report for traffic runs: the load-facing Table 2.

The experiment layer reports medians (the paper's headline numbers);
under load the medians barely move while the tail explodes, so this
report leads with p99/p99.9 per phase and TTFB per (KEM, SIG) pair,
plus the queueing summary (offered/completed/dropped, peak in-flight,
server load factor ρ) that explains *why* the tail looks the way it
does.
"""

from __future__ import annotations

from repro.traffic.engine import TrafficConfig, TrafficSummary, metric_key

QUANTILES = ((0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p99.9"))
PHASES = ("part_a", "part_b", "total", "ttfb", "server_wait")


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def render_traffic(metrics, config: TrafficConfig,
                   summary: TrafficSummary) -> str:
    """The run's per-pair latency table plus the queueing summary."""
    lines = [
        f"traffic: {config.arrival} for {config.duration:g}s on "
        f"{config.scenario!r} ({summary.shards} shards, "
        f"--jobs {summary.jobs}, {config.server_cores} server core(s))",
        "",
        f"{'pair':<28} {'phase':<12} {'count':>9} {'mean':>9} "
        + " ".join(f"{label:>9}" for _, label in QUANTILES)
        + f" {'max':>9}   (ms)",
    ]
    fractions = getattr(config, "resume", ()) or (0.0,) * len(config.pairs)
    for (kem, sig), fraction in zip(config.pairs, fractions):
        prefix = f"traffic.{metric_key(kem)}.{metric_key(sig)}."
        # a resumption mix splits the pair into full and resumed blocks,
        # each with its own latency/TTFB distribution
        blocks = [(f"{kem}/{sig}", prefix)]
        if fraction > 0.0:
            blocks.append((f"{kem}/{sig} (resumed)", prefix + "resume."))
        for pair, block_prefix in blocks:
            for phase in PHASES:
                histogram = metrics.histogram(block_prefix + phase)
                if histogram.count == 0:
                    continue
                cells = " ".join(_ms(histogram.quantile(q))
                                 for q, _ in QUANTILES)
                lines.append(
                    f"{pair:<28} {phase:<12} {histogram.count:>9} "
                    f"{_ms(histogram.mean)} {cells} {_ms(histogram.max)}")
                pair = ""  # print the pair label once per block
    drop_text = (f", {summary.dropped} dropped "
                 f"({summary.dropped / summary.offered:.2%})"
                 if summary.offered else "")
    lines += [
        "",
        f"offered {summary.offered}, completed {summary.completed}"
        + drop_text,
        f"peak in-flight {summary.peak_in_flight} "
        f"(admission cap {config.max_in_flight}), "
        f"connection pool peak {summary.pool_peak}",
        f"server load factor rho = {summary.load_factor:.3f} "
        f"({summary.busy_seconds:.1f} CPU-seconds offered over "
        f"{config.duration * config.server_cores:g} available)",
    ]
    return "\n".join(lines)
