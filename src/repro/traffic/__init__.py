"""Load generation: million-handshake traffic runs against a shared server.

The experiment layer (:mod:`repro.core`) measures *isolated* handshakes —
one testbed, back-to-back, per (KA, SA, scenario, policy). The paper's
open question is what happens **under load**: when many handshakes
contend for the same server CPU, tail latency is dominated by queueing,
and the interesting output is per-phase p99/p99.9 plus time-to-first-byte
per algorithm pair, not medians.

This package answers it with a calibrate-then-queue model (DESIGN.md
§12): one full-fidelity simulated handshake per (KA, SA, scenario,
policy) yields a :class:`~repro.traffic.profile.HandshakeProfile` —
baseline phase timings plus the server's two CPU bursts — and the engine
(:mod:`repro.traffic.engine`) replays millions of *arrivals* against a
k-core FCFS server on the discrete event loop, streaming every latency
into the constant-memory :mod:`repro.obs` histograms. Arrival processes
(:mod:`repro.traffic.arrivals`) are Poisson / diurnal / flash-crowd /
closed-loop, all DRBG-driven; the timeline shards into contiguous
time-slices so ``--jobs N`` merges to bit-identical sketch state.
"""

from repro.traffic.arrivals import parse_arrival
from repro.traffic.engine import TrafficConfig, TrafficSummary, run_traffic
from repro.traffic.profile import HandshakeProfile, handshake_profile

__all__ = [
    "HandshakeProfile",
    "TrafficConfig",
    "TrafficSummary",
    "handshake_profile",
    "parse_arrival",
    "run_traffic",
]
