"""``pqtls-traffic``: the load-generation entry point.

Examples::

    # 600k Poisson arrivals against one server core, tail table to stdout
    pqtls-traffic --arrival poisson:1000/s --duration 600 \\
        --kem kyber512 --sig dilithium2

    # flash crowd, sharded over 4 workers, merged metrics to JSON
    pqtls-traffic --arrival flash:500/s,peak=5000/s --duration 120 \\
        -j 4 --metrics out/traffic.json

The merged metrics (and so the ``--metrics`` JSON) are bit-identical at
any ``--jobs``; only wall-clock time changes. ``--flight-record`` adds a
JSONL event stream with periodic ``heartbeat`` events (in-flight count,
RSS, handshakes/s) for watching long runs mid-flight.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.export import write_metrics_json
from repro.obs.metrics import Metrics
from repro.obs.recorder import NULL_RECORDER, FlightRecorder, walltime
from repro.traffic.engine import TrafficConfig, run_traffic
from repro.traffic.report import render_traffic


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pqtls-traffic",
        description="Simulate TLS 1.3 handshake traffic against a shared "
                    "server and report per-phase tail latency + TTFB.")
    parser.add_argument("--arrival", default="poisson:1000/s",
                        help="arrival spec: poisson:R/s | "
                             "diurnal:R/s[,amp=A][,period=S] | "
                             "flash:R/s[,peak=R/s][,at=S][,width=S] | "
                             "closed:N[,think=S] (default %(default)s)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds of arrivals (default %(default)s)")
    parser.add_argument("--kem", action="append", default=None,
                        help="KEM name; repeat for a mix (default kyber512)")
    parser.add_argument("--sig", action="append", default=None,
                        help="signature name; repeat for a mix "
                             "(default dilithium2)")
    parser.add_argument("--scenario", default="none",
                        help="netem scenario for the baseline calibration "
                             "(loss is zeroed; default %(default)s)")
    parser.add_argument("--policy", default="optimized",
                        choices=["optimized", "default"],
                        help="server buffering policy (default %(default)s)")
    parser.add_argument("--resume", default=None, metavar="FRACS",
                        help="PSK-resumption fraction(s) in [0,1]: one "
                             "value for all pairs or a comma list with one "
                             "entry per pair, e.g. '0.6' or '0.6,0.3' "
                             "(default: 0, all-full handshakes)")
    parser.add_argument("--seed", default="paper",
                        help="DRBG seed label (default %(default)s)")
    parser.add_argument("--shard-seconds", type=float, default=60.0,
                        help="arrival-timeline slice per shard "
                             "(default %(default)s)")
    parser.add_argument("--server-cores", type=int, default=1,
                        help="server CPU cores (default %(default)s)")
    parser.add_argument("--max-in-flight", type=int, default=100_000,
                        help="admission cap on concurrent handshakes "
                             "(default %(default)s)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the shard fan-out "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="write the merged metrics snapshot to this "
                             "JSON file")
    parser.add_argument("--flight-record", type=Path, default=None,
                        help="write a flight-recorder JSONL (heartbeats, "
                             "shard progress) to this file")
    return parser


def parse_resume(spec: str | None, n_pairs: int) -> tuple[float, ...]:
    """``--resume`` -> per-pair fractions (a single value fans out)."""
    if spec is None:
        return ()
    try:
        fractions = tuple(float(part) for part in spec.split(","))
    except ValueError:
        raise ValueError(f"--resume: not a number list: {spec!r}") from None
    if len(fractions) == 1 and n_pairs > 1:
        fractions = fractions * n_pairs
    if len(fractions) != n_pairs:
        raise ValueError(
            f"--resume: {len(fractions)} fractions for {n_pairs} pairs "
            "(give one value, or one per pair)")
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"--resume: fractions must be in [0, 1], got {fraction!r}")
    return fractions


def build_config(args: argparse.Namespace) -> TrafficConfig:
    kems = args.kem or ["kyber512"]
    sigs = args.sig or ["dilithium2"]
    pairs = tuple((kem, sig) for kem in kems for sig in sigs)
    return TrafficConfig(
        arrival=args.arrival,
        duration=args.duration,
        pairs=pairs,
        scenario=args.scenario,
        policy=args.policy,
        seed=args.seed,
        shard_seconds=args.shard_seconds,
        server_cores=args.server_cores,
        max_in_flight=args.max_in_flight,
        resume=parse_resume(args.resume, len(pairs)),
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = build_config(args)
    except ValueError as error:
        print(f"pqtls-traffic: {error}", file=sys.stderr)
        return 2
    recorder = (FlightRecorder(args.flight_record)
                if args.flight_record else NULL_RECORDER)
    metrics = Metrics()
    started = walltime()
    try:
        summary = run_traffic(config, jobs=args.jobs, metrics=metrics,
                              recorder=recorder)
    except ValueError as error:
        print(f"pqtls-traffic: {error}", file=sys.stderr)
        return 2
    finally:
        recorder.close()
    host_seconds = walltime() - started
    print(render_traffic(metrics, config, summary))
    rate = summary.completed / host_seconds if host_seconds > 0 else 0.0
    print(f"\n{summary.completed} handshakes in {host_seconds:.1f} host "
          f"seconds ({rate:.0f}/s)", file=sys.stderr)
    if args.metrics is not None:
        path = write_metrics_json(metrics, args.metrics)
        print(f"wrote {path}", file=sys.stderr)
    if recorder.enabled:
        print(f"wrote {recorder.path} ({len(recorder.events)} events)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
