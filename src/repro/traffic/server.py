"""The shared server's CPU: a k-core FCFS run queue in O(1) per burst.

The experiment layer's :class:`repro.netsim.hosts.Host` serializes CPU
bursts on one implicit core per host; under load the server is the
bottleneck and needs k cores with a queue. Because the engine enqueues
bursts in non-decreasing simulated time and a burst never jumps the
queue, "earliest-free core at enqueue time" is exactly FCFS dispatch —
no separate queue structure, just one busy-until scalar per core.
"""

from __future__ import annotations


class ServerCores:
    """k cores, each a busy-until horizon; FCFS assignment per burst."""

    __slots__ = ("_free", "busy_seconds")

    def __init__(self, cores: int):
        if cores < 1:
            raise ValueError(f"server needs >= 1 core, got {cores!r}")
        self._free = [0.0] * cores
        self.busy_seconds = 0.0

    @property
    def cores(self) -> int:
        return len(self._free)

    def acquire(self, now: float, seconds: float) -> tuple[float, float]:
        """Claim ``seconds`` of CPU for a burst arriving at ``now``.

        Returns ``(start, end)``: the burst runs on the earliest-free
        core, no sooner than ``now``. ``start - now`` is the queueing
        wait the caller folds into the handshake's latency.
        """
        free = self._free
        if len(free) == 1:
            start = free[0]
            if start < now:
                start = now
            end = start + seconds
            free[0] = end
        else:
            best = min(range(len(free)), key=free.__getitem__)
            start = free[best]
            if start < now:
                start = now
            end = start + seconds
            free[best] = end
        self.busy_seconds += seconds
        return start, end
