"""Sans-io TLS 1.3 client (1-RTT, pre-computed key share).

As in the paper's setup the client pre-computes a key share for exactly
the group the server will select, so by default the 2-RTT
HelloRetryRequest fallback never happens, and it sends the dummy
ChangeCipherSpec in the same flight (and, on the wire, the same packet)
as its Finished.

Beyond the paper's full handshake the client also speaks the session
lifecycle: it can offer a resumption PSK from a :class:`SessionCache`
ticket (falling back to a full handshake when the server declines),
recover from a HelloRetryRequest when started without a key share,
authenticate itself when the server sends a CertificateRequest, and
store post-handshake NewSessionTickets.
"""

from __future__ import annotations

import hashlib

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_kem, get_sig
from repro.tls import messages as msg
from repro.tls.actions import Action, Compute, CryptoOp, Send
from repro.tls.certs import Certificate, TrustStore
from repro.tls.abort import AbortMixin
from repro.tls.errors import (
    HandshakeFailure,
    IllegalParameter,
    PeerAlert,
    TlsError,
    UnexpectedMessage,
)
from repro.tls.groups import SIGSCHEME_NAMES, group_id, sigscheme_id
from repro.tls.keyschedule import (
    KeySchedule,
    derive_secret,
    hkdf_extract,
    traffic_keys,
)
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    Record,
    RecordProtection,
    content_type_name,
    decode_alert,
    encrypt_handshake_stream,
)
from repro.tls.ticket import SessionCache, SessionTicket
from repro.tls.transcript import TranscriptHash

# what an encrypted record holds, by receive state (tracing context only)
_DECRYPT_DETAIL = {
    "wait_ee": "EE", "wait_cert": "Cert", "wait_cv": "CV", "wait_fin": "Fin",
    "connected": "NST",
}

HASH_LEN = 32


def _binder_key_for(psk: bytes) -> bytes:
    """The binder key for an offered PSK, without touching a schedule."""
    early = hkdf_extract(b"\x00" * HASH_LEN, psk)
    return derive_secret(early, "res binder", hashlib.sha256(b"").digest())


class TlsClient(AbortMixin):
    """One client-side handshake (fresh instance per connection)."""

    def __init__(self, kem_name: str, sig_name: str, trust_store: TrustStore,
                 drbg: Drbg, server_name: str = "server.repro.test", *,
                 ticket: SessionTicket | None = None,
                 session_cache: SessionCache | None = None,
                 credentials: tuple[list[Certificate], bytes] | None = None,
                 offer_share: bool = True):
        self.kem_name = kem_name
        self.sig_name = sig_name
        self._kem = get_kem(kem_name)
        self._trust_store = trust_store
        self._drbg = drbg
        self._server_name = server_name
        self._transcript = TranscriptHash()
        self._schedule = KeySchedule()
        self._recv_buffer = b""
        self._hs_plaintext = b""
        self._kem_secret: bytes | None = None
        self._recv_protection: RecordProtection | None = None
        self._send_protection: RecordProtection | None = None
        self._app_send_protection: RecordProtection | None = None
        self._app_recv_protection: RecordProtection | None = None
        self._server_cert: Certificate | None = None
        self._ticket = ticket
        self._session_cache = session_cache
        self._credentials = credentials
        self._offer_share = offer_share
        self._cert_requested = False
        self._retried = False
        self._first_hello_raw: bytes | None = None
        self.resumed = False
        self._state = "start"
        self.handshake_complete = False
        self.bytes_out = 0
        self.failed = False
        self.failure: TlsError | None = None
        self.alert_sent: int | None = None
        self.alert_received: int | None = None

    def start(self) -> list[Action]:
        """Generate the key share and produce the ClientHello flight."""
        if self._state != "start":
            raise HandshakeFailure("client already started")
        actions: list[Action] = []
        key_shares: list[tuple[int, bytes]] = []
        share_map: dict[str, bytes] = {}
        if self._offer_share:
            actions.append(
                Compute((CryptoOp("kem_keygen", self.kem_name, detail="CH"),)))
            public_key, self._kem_secret = self._kem.keygen(self._drbg)
            key_shares = [(group_id(self.kem_name), public_key)]
            share_map = {self.kem_name: public_key}
        hello = msg.ClientHello(
            random=self._drbg.random_bytes(32),
            session_id=self._drbg.random_bytes(32),
            group_name_to_share=share_map,
            group_ids=[group_id(self.kem_name)],
            key_shares=key_shares,
            sig_scheme_ids=[sigscheme_id(self.sig_name)],
            server_name=self._server_name,
        )
        if self._ticket is not None:
            if (self._ticket.kem, self._ticket.sig) != (self.kem_name, self.sig_name):
                raise HandshakeFailure(
                    "ticket was minted for a different algorithm pair")
            hello.psk_identity = self._ticket.identity
            hello.psk_obfuscated_age = self._ticket.obfuscated_age
            binder_key = _binder_key_for(self._ticket.psk)
            truncated_hash = hashlib.sha256(hello.encode_truncated()).digest()
            hello.psk_binder = KeySchedule.psk_binder(binder_key, truncated_hash)
            actions.append(Compute((CryptoOp("psk_binder", detail="CH"),)))
        encoded = hello.encode()
        self._hello = hello
        self._first_hello_raw = encoded
        self._transcript.update(encoded)
        from repro.tls.records import fragment_handshake

        wire = b"".join(r.encode() for r in fragment_handshake(encoded))
        actions.append(
            Compute((CryptoOp("tls_frame", size=len(encoded), detail="CH"),)))
        actions.append(Send(wire, "ClientHello"))
        self.bytes_out += len(wire)
        self._state = "wait_sh"
        return actions

    # -- receive path (the guarded loop itself lives in AbortMixin) --------------
    def _handle_record(self, record: Record) -> list[Action]:
        if record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
            return []
        if record.content_type == CONTENT_ALERT:
            _level, description = decode_alert(record.payload)
            raise PeerAlert(description)
        if self._state == "wait_sh":
            if record.content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected ServerHello, got "
                    f"{content_type_name(record.content_type)} record")
            return self._consume_handshake_plaintext(record.payload)
        if self._state in ("wait_ee", "wait_cert", "wait_cv", "wait_fin"):
            content_type, plaintext = self._recv_protection.decrypt(record)
            if content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected encrypted handshake record, got inner "
                    f"{content_type_name(content_type)}")
            decrypt_cost = Compute((CryptoOp(
                "record_crypt", size=len(plaintext),
                detail=_DECRYPT_DETAIL.get(self._state, "handshake"),
            ),))
            return [decrypt_cost] + self._consume_handshake_plaintext(plaintext)
        if self._state == "connected":
            # post-handshake messages (NewSessionTicket) on app traffic keys
            send_prot, recv_prot = self.app_protections()
            content_type, plaintext = recv_prot.decrypt(record)
            if content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected post-handshake record, got inner "
                    f"{content_type_name(content_type)}")
            decrypt_cost = Compute((CryptoOp(
                "record_crypt", size=len(plaintext), detail="NST"),))
            return [decrypt_cost] + self._consume_handshake_plaintext(plaintext)
        raise UnexpectedMessage(f"record in state {self._state}")

    def _consume_handshake_plaintext(self, plaintext: bytes) -> list[Action]:
        self._hs_plaintext += plaintext
        msgs, self._hs_plaintext = msg.iter_handshake_messages(self._hs_plaintext)
        actions: list[Action] = []
        for msg_type, body, raw in msgs:
            actions.extend(self._handle_message(msg_type, body, raw))
        return actions

    def _handle_message(self, msg_type: int, body: bytes, raw: bytes) -> list[Action]:
        if self._state == "wait_sh":
            if msg_type != msg.HT_SERVER_HELLO:
                raise UnexpectedMessage("expected ServerHello")
            return self._process_server_hello(body, raw)
        if self._state == "wait_ee":
            if msg_type != msg.HT_ENCRYPTED_EXTENSIONS:
                raise UnexpectedMessage("expected EncryptedExtensions")
            self._transcript.update(raw)
            self._state = "wait_fin" if self.resumed else "wait_cert"
            return [Compute((CryptoOp("tls_frame", size=len(raw), detail="EE"),))]
        if self._state == "wait_cert":
            if msg_type == msg.HT_CERTIFICATE_REQUEST:
                return self._process_certificate_request(body, raw)
            if msg_type != msg.HT_CERTIFICATE:
                raise UnexpectedMessage("expected Certificate")
            return self._process_certificate(body, raw)
        if self._state == "wait_cv":
            if msg_type != msg.HT_CERTIFICATE_VERIFY:
                raise UnexpectedMessage("expected CertificateVerify")
            return self._process_certificate_verify(body, raw)
        if self._state == "wait_fin":
            if msg_type != msg.HT_FINISHED:
                raise UnexpectedMessage("expected Finished")
            return self._process_finished(body, raw)
        if self._state == "connected":
            if msg_type != msg.HT_NEW_SESSION_TICKET:
                raise UnexpectedMessage(
                    f"unexpected post-handshake message type {msg_type}")
            return self._process_session_ticket(body, raw)
        raise UnexpectedMessage(f"message in state {self._state}")

    def _process_server_hello(self, body: bytes, raw: bytes) -> list[Action]:
        hello = msg.ServerHello.decode(body)
        if hello.is_hello_retry_request:
            return self._process_hello_retry(hello, raw)
        if hello.group_id != group_id(self.kem_name):
            raise HandshakeFailure("server selected a group we did not offer")
        if self._kem_secret is None:
            raise HandshakeFailure(
                "server completed without a key share (expected HelloRetryRequest)")
        if hello.psk_selected:
            if self._ticket is None:
                raise IllegalParameter("server selected a PSK we did not offer")
            self.resumed = True
            self._schedule = KeySchedule(psk=self._ticket.psk)
        self._transcript.update(raw)
        actions = [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="SH"),
            CryptoOp("kem_decaps", self.kem_name, detail="SH"),
        ))]
        shared_secret = self._kem.decaps(self._kem_secret, hello.key_share)
        self._schedule.set_shared_secret(shared_secret, self._transcript.digest())
        actions.append(Compute((CryptoOp("key_schedule", detail="SH"),)))
        self._recv_protection = RecordProtection(
            traffic_keys(self._schedule.server_hs_secret)
        )
        self._send_protection = RecordProtection(
            traffic_keys(self._schedule.client_hs_secret)
        )
        self._state = "wait_ee"
        return actions

    def _process_hello_retry(self, hello: msg.ServerHello, raw: bytes) -> list[Action]:
        if self._retried:
            raise UnexpectedMessage("second HelloRetryRequest")
        if hello.group_id != group_id(self.kem_name):
            raise HandshakeFailure("HelloRetryRequest for a group we do not support")
        if self._kem_secret is not None:
            raise IllegalParameter(
                "HelloRetryRequest for a group we already offered a share for")
        self._retried = True
        # transcript becomes message_hash(CH1) || HRR || CH2 (§4.4.1)
        self._transcript.restart(msg.message_hash(self._first_hello_raw))
        self._transcript.update(raw)
        actions: list[Action] = [
            Compute((CryptoOp("tls_frame", size=len(raw), detail="HRR"),)),
            Compute((CryptoOp("kem_keygen", self.kem_name, detail="CH2"),)),
        ]
        public_key, self._kem_secret = self._kem.keygen(self._drbg)
        self._hello.key_shares = [(group_id(self.kem_name), public_key)]
        self._hello.group_name_to_share = {self.kem_name: public_key}
        retry_hello = self._hello.encode()
        self._transcript.update(retry_hello)
        from repro.tls.records import fragment_handshake

        wire = b"".join(r.encode() for r in fragment_handshake(retry_hello))
        actions.append(
            Compute((CryptoOp("tls_frame", size=len(retry_hello), detail="CH2"),)))
        actions.append(Send(wire, "ClientHello2"))
        self.bytes_out += len(wire)
        return actions

    def _process_certificate_request(self, body: bytes, raw: bytes) -> list[Action]:
        if self._cert_requested:
            raise UnexpectedMessage("second CertificateRequest")
        if self.resumed:
            raise UnexpectedMessage("CertificateRequest on a resumed handshake")
        scheme_ids = msg.decode_certificate_request(body)
        if self._credentials is not None and sigscheme_id(self.sig_name) not in scheme_ids:
            raise HandshakeFailure(
                f"server does not accept client signatures with {self.sig_name}")
        self._cert_requested = True
        self._transcript.update(raw)
        return [Compute((CryptoOp("tls_frame", size=len(raw), detail="CR"),))]

    def _process_certificate(self, body: bytes, raw: bytes) -> list[Action]:
        cert_blobs = msg.decode_certificate(body)
        chain = [Certificate.decode(blob) for blob in cert_blobs]
        leaf = self._trust_store.verify_chain(chain, expected_subject=self._server_name)
        if leaf.algorithm != self.sig_name:
            raise HandshakeFailure(
                f"certificate uses {leaf.algorithm}, expected {self.sig_name}")
        self._server_cert = leaf
        self._transcript.update(raw)
        self._state = "wait_cv"
        return [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="Cert"),
            CryptoOp("cert_verify", self.sig_name, detail="Cert"),
        ))]

    def _process_certificate_verify(self, body: bytes, raw: bytes) -> list[Action]:
        scheme_id, signature = msg.decode_certificate_verify(body)
        scheme_name = SIGSCHEME_NAMES.get(scheme_id)
        if scheme_name != self.sig_name:
            raise HandshakeFailure(f"unexpected CertificateVerify scheme {scheme_name}")
        payload = msg.CERTIFICATE_VERIFY_SERVER_CONTEXT + self._transcript.digest()
        scheme = get_sig(self.sig_name)
        if not scheme.verify(self._server_cert.public_key, payload, signature):
            raise HandshakeFailure("CertificateVerify signature invalid")
        self._transcript.update(raw)
        self._state = "wait_fin"
        return [Compute((CryptoOp("sig_verify", self.sig_name, detail="CV"),))]

    def _process_finished(self, body: bytes, raw: bytes) -> list[Action]:
        expected = self._schedule.finished_verify_data(
            self._schedule.server_hs_secret, self._transcript.digest()
        )
        if body != expected:
            raise HandshakeFailure("server Finished verification failed")
        self._transcript.update(raw)
        # application secrets derive from the transcript up to server Finished
        self._schedule.derive_master(self._transcript.digest())
        actions: list[Action] = [Compute((CryptoOp("finished_mac", detail="Fin"),))]
        # client flight: dummy CCS + [Certificate + CertificateVerify +]
        # Finished, one TCP push (one packet when it fits)
        flight = b""
        label = "CCS+Fin"
        if self._cert_requested:
            label = "CCS+Cert+CV+Fin"
            chain = self._credentials[0] if self._credentials else []
            cert_msg = msg.encode_certificate([c.encode() for c in chain])
            self._transcript.update(cert_msg)
            flight += cert_msg
            actions.append(Compute((
                CryptoOp("tls_frame", size=len(cert_msg), detail="CliCert"),)))
            if self._credentials:
                payload = (msg.CERTIFICATE_VERIFY_CLIENT_CONTEXT
                           + self._transcript.digest())
                actions.append(Compute((
                    CryptoOp("sig_sign", self.sig_name, detail="CliCV"),)))
                scheme = get_sig(self.sig_name)
                signature = scheme.sign(self._credentials[1], payload, self._drbg)
                cert_verify = msg.encode_certificate_verify(
                    sigscheme_id(self.sig_name), signature
                )
                self._transcript.update(cert_verify)
                flight += cert_verify
        verify_data = self._schedule.finished_verify_data(
            self._schedule.client_hs_secret, self._transcript.digest()
        )
        finished = msg.encode_finished(verify_data)
        self._transcript.update(finished)
        flight += finished
        flight_records = b"".join(
            r.encode() for r in encrypt_handshake_stream(self._send_protection, flight)
        )
        ccs = Record(CONTENT_CHANGE_CIPHER_SPEC, b"\x01").encode()
        wire = ccs + flight_records
        actions.append(Compute((
            CryptoOp("finished_mac", detail=label),
            CryptoOp("record_crypt", size=len(flight), detail=label),
        )))
        actions.append(Send(wire, label))
        self.bytes_out += len(wire)
        # the resumption master closes over the full transcript (§7.1)
        self._schedule.derive_resumption(self._transcript.digest())
        self.handshake_complete = True
        self._state = "connected"
        return actions

    def _process_session_ticket(self, body: bytes, raw: bytes) -> list[Action]:
        ticket = msg.NewSessionTicket.decode(body)
        psk = KeySchedule.ticket_psk(
            self._schedule.resumption_master_secret, ticket.nonce
        )
        if self._session_cache is not None:
            self._session_cache.put(self._server_name, SessionTicket(
                identity=ticket.ticket,
                psk=psk,
                kem=self.kem_name,
                sig=self.sig_name,
                age_add=ticket.age_add,
                lifetime=ticket.lifetime,
            ))
        return [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="NST"),
            CryptoOp("session_ticket", detail="NST"),
        ))]

    def app_protections(self) -> tuple[RecordProtection, RecordProtection]:
        """(send, receive) protections over the application secrets.

        Shared with post-handshake traffic (NewSessionTicket receipt) so a
        :class:`~repro.tls.session.SecureChannel` adopting them continues
        the same record sequence instead of reusing nonces.
        """
        client_secret, server_secret = self.application_secrets
        if self._app_send_protection is None:
            self._app_send_protection = RecordProtection(traffic_keys(client_secret))
        if self._app_recv_protection is None:
            self._app_recv_protection = RecordProtection(traffic_keys(server_secret))
        return self._app_send_protection, self._app_recv_protection

    @property
    def application_secrets(self) -> tuple[bytes, bytes]:
        if not self.handshake_complete:
            raise HandshakeFailure("handshake not complete")
        return self._schedule.client_app_secret, self._schedule.server_app_secret
