"""Sans-io TLS 1.3 client (1-RTT, pre-computed key share).

As in the paper's setup the client pre-computes a key share for exactly
the group the server will select, so the 2-RTT HelloRetryRequest fallback
never happens, and it sends the dummy ChangeCipherSpec in the same flight
(and, on the wire, the same packet) as its Finished.
"""

from __future__ import annotations

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_kem, get_sig
from repro.tls import messages as msg
from repro.tls.actions import Action, Compute, CryptoOp, Send
from repro.tls.certs import Certificate, TrustStore
from repro.tls.abort import AbortMixin
from repro.tls.errors import HandshakeFailure, PeerAlert, TlsError, UnexpectedMessage
from repro.tls.groups import SIGSCHEME_NAMES, group_id, sigscheme_id
from repro.tls.keyschedule import KeySchedule, traffic_keys
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    Record,
    RecordProtection,
    content_type_name,
    decode_alert,
    encrypt_handshake_stream,
)
from repro.tls.transcript import TranscriptHash

# what an encrypted record holds, by receive state (tracing context only)
_DECRYPT_DETAIL = {
    "wait_ee": "EE", "wait_cert": "Cert", "wait_cv": "CV", "wait_fin": "Fin",
}


class TlsClient(AbortMixin):
    """One client-side handshake (fresh instance per connection)."""

    def __init__(self, kem_name: str, sig_name: str, trust_store: TrustStore,
                 drbg: Drbg, server_name: str = "server.repro.test"):
        self.kem_name = kem_name
        self.sig_name = sig_name
        self._kem = get_kem(kem_name)
        self._trust_store = trust_store
        self._drbg = drbg
        self._server_name = server_name
        self._transcript = TranscriptHash()
        self._schedule = KeySchedule()
        self._recv_buffer = b""
        self._hs_plaintext = b""
        self._kem_secret: bytes | None = None
        self._recv_protection: RecordProtection | None = None
        self._send_protection: RecordProtection | None = None
        self._server_cert: Certificate | None = None
        self._state = "start"
        self.handshake_complete = False
        self.bytes_out = 0
        self.failed = False
        self.failure: TlsError | None = None
        self.alert_sent: int | None = None
        self.alert_received: int | None = None

    def start(self) -> list[Action]:
        """Generate the key share and produce the ClientHello flight."""
        if self._state != "start":
            raise HandshakeFailure("client already started")
        actions: list[Action] = [Compute((CryptoOp("kem_keygen", self.kem_name, detail="CH"),))]
        public_key, self._kem_secret = self._kem.keygen(self._drbg)
        hello = msg.ClientHello(
            random=self._drbg.random_bytes(32),
            session_id=self._drbg.random_bytes(32),
            group_name_to_share={self.kem_name: public_key},
            group_ids=[group_id(self.kem_name)],
            key_shares=[(group_id(self.kem_name), public_key)],
            sig_scheme_ids=[sigscheme_id(self.sig_name)],
            server_name=self._server_name,
        ).encode()
        self._transcript.update(hello)
        from repro.tls.records import fragment_handshake

        wire = b"".join(r.encode() for r in fragment_handshake(hello))
        actions.append(Compute((CryptoOp("tls_frame", size=len(hello), detail="CH"),)))
        actions.append(Send(wire, "ClientHello"))
        self.bytes_out += len(wire)
        self._state = "wait_sh"
        return actions

    # -- receive path (the guarded loop itself lives in AbortMixin) --------------
    def _handle_record(self, record: Record) -> list[Action]:
        if record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
            return []
        if record.content_type == CONTENT_ALERT:
            _level, description = decode_alert(record.payload)
            raise PeerAlert(description)
        if self._state == "wait_sh":
            if record.content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected ServerHello, got "
                    f"{content_type_name(record.content_type)} record")
            return self._consume_handshake_plaintext(record.payload)
        if self._state in ("wait_ee", "wait_cert", "wait_cv", "wait_fin"):
            content_type, plaintext = self._recv_protection.decrypt(record)
            if content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected encrypted handshake record, got inner "
                    f"{content_type_name(content_type)}")
            decrypt_cost = Compute((CryptoOp(
                "record_crypt", size=len(plaintext),
                detail=_DECRYPT_DETAIL.get(self._state, "handshake"),
            ),))
            return [decrypt_cost] + self._consume_handshake_plaintext(plaintext)
        raise UnexpectedMessage(f"record in state {self._state}")

    def _consume_handshake_plaintext(self, plaintext: bytes) -> list[Action]:
        self._hs_plaintext += plaintext
        msgs, self._hs_plaintext = msg.iter_handshake_messages(self._hs_plaintext)
        actions: list[Action] = []
        for msg_type, body, raw in msgs:
            actions.extend(self._handle_message(msg_type, body, raw))
        return actions

    def _handle_message(self, msg_type: int, body: bytes, raw: bytes) -> list[Action]:
        if self._state == "wait_sh":
            if msg_type != msg.HT_SERVER_HELLO:
                raise UnexpectedMessage("expected ServerHello")
            return self._process_server_hello(body, raw)
        if self._state == "wait_ee":
            if msg_type != msg.HT_ENCRYPTED_EXTENSIONS:
                raise UnexpectedMessage("expected EncryptedExtensions")
            self._transcript.update(raw)
            self._state = "wait_cert"
            return [Compute((CryptoOp("tls_frame", size=len(raw), detail="EE"),))]
        if self._state == "wait_cert":
            if msg_type != msg.HT_CERTIFICATE:
                raise UnexpectedMessage("expected Certificate")
            return self._process_certificate(body, raw)
        if self._state == "wait_cv":
            if msg_type != msg.HT_CERTIFICATE_VERIFY:
                raise UnexpectedMessage("expected CertificateVerify")
            return self._process_certificate_verify(body, raw)
        if self._state == "wait_fin":
            if msg_type != msg.HT_FINISHED:
                raise UnexpectedMessage("expected Finished")
            return self._process_finished(body, raw)
        raise UnexpectedMessage(f"message in state {self._state}")

    def _process_server_hello(self, body: bytes, raw: bytes) -> list[Action]:
        hello = msg.ServerHello.decode(body)
        if hello.group_id != group_id(self.kem_name):
            raise HandshakeFailure("server selected a group we did not offer")
        self._transcript.update(raw)
        actions = [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="SH"),
            CryptoOp("kem_decaps", self.kem_name, detail="SH"),
        ))]
        shared_secret = self._kem.decaps(self._kem_secret, hello.key_share)
        self._schedule.set_shared_secret(shared_secret, self._transcript.digest())
        actions.append(Compute((CryptoOp("key_schedule", detail="SH"),)))
        self._recv_protection = RecordProtection(
            traffic_keys(self._schedule.server_hs_secret)
        )
        self._send_protection = RecordProtection(
            traffic_keys(self._schedule.client_hs_secret)
        )
        self._state = "wait_ee"
        return actions

    def _process_certificate(self, body: bytes, raw: bytes) -> list[Action]:
        cert_blobs = msg.decode_certificate(body)
        chain = [Certificate.decode(blob) for blob in cert_blobs]
        leaf = self._trust_store.verify_chain(chain, expected_subject=self._server_name)
        if leaf.algorithm != self.sig_name:
            raise HandshakeFailure(
                f"certificate uses {leaf.algorithm}, expected {self.sig_name}")
        self._server_cert = leaf
        self._transcript.update(raw)
        self._state = "wait_cv"
        return [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="Cert"),
            CryptoOp("cert_verify", self.sig_name, detail="Cert"),
        ))]

    def _process_certificate_verify(self, body: bytes, raw: bytes) -> list[Action]:
        scheme_id, signature = msg.decode_certificate_verify(body)
        scheme_name = SIGSCHEME_NAMES.get(scheme_id)
        if scheme_name != self.sig_name:
            raise HandshakeFailure(f"unexpected CertificateVerify scheme {scheme_name}")
        payload = msg.CERTIFICATE_VERIFY_SERVER_CONTEXT + self._transcript.digest()
        scheme = get_sig(self.sig_name)
        if not scheme.verify(self._server_cert.public_key, payload, signature):
            raise HandshakeFailure("CertificateVerify signature invalid")
        self._transcript.update(raw)
        self._state = "wait_fin"
        return [Compute((CryptoOp("sig_verify", self.sig_name, detail="CV"),))]

    def _process_finished(self, body: bytes, raw: bytes) -> list[Action]:
        expected = self._schedule.finished_verify_data(
            self._schedule.server_hs_secret, self._transcript.digest()
        )
        if body != expected:
            raise HandshakeFailure("server Finished verification failed")
        self._transcript.update(raw)
        # application secrets derive from the transcript up to server Finished
        self._schedule.derive_master(self._transcript.digest())
        actions: list[Action] = [Compute((CryptoOp("finished_mac", detail="Fin"),))]
        # client flight: dummy CCS + Finished, one TCP push (one packet)
        verify_data = self._schedule.finished_verify_data(
            self._schedule.client_hs_secret, self._transcript.digest()
        )
        finished = msg.encode_finished(verify_data)
        self._transcript.update(finished)
        fin_records = b"".join(
            r.encode() for r in encrypt_handshake_stream(self._send_protection, finished)
        )
        ccs = Record(CONTENT_CHANGE_CIPHER_SPEC, b"\x01").encode()
        wire = ccs + fin_records
        actions.append(Compute((
            CryptoOp("finished_mac", detail="CCS+Fin"),
            CryptoOp("record_crypt", size=len(finished), detail="CCS+Fin"),
        )))
        actions.append(Send(wire, "CCS+Fin"))
        self.bytes_out += len(wire)
        self.handshake_complete = True
        self._state = "connected"
        return actions

    @property
    def application_secrets(self) -> tuple[bytes, bytes]:
        if not self.handshake_complete:
            raise HandshakeFailure("handshake not complete")
        return self._schedule.client_app_secret, self._schedule.server_app_secret
