"""TLS record layer: framing, and AES-128-GCM protection for TLS 1.3.

Handshake records up to 2^14 bytes of fragment; larger handshake messages
(SPHINCS+ certificates!) are fragmented across records exactly as RFC 8446
requires — this matters for the byte accounting the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.gcm import AesGcm
from repro.tls.errors import BadRecordMac, DecodeError
from repro.tls.keyschedule import TrafficKeys

CONTENT_CHANGE_CIPHER_SPEC = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23

CONTENT_TYPE_NAMES = {
    CONTENT_CHANGE_CIPHER_SPEC: "ccs",
    CONTENT_ALERT: "alert",
    CONTENT_HANDSHAKE: "handshake",
    CONTENT_APPLICATION_DATA: "appdata",
}


def content_type_name(content_type: int) -> str:
    """Human name for a record content type (tracing / error messages)."""
    return CONTENT_TYPE_NAMES.get(content_type, f"type{content_type}")

LEGACY_VERSION = 0x0303
MAX_FRAGMENT = 2 ** 14
HEADER_LEN = 5


@dataclass(frozen=True)
class Record:
    content_type: int
    payload: bytes

    def encode(self) -> bytes:
        if len(self.payload) > MAX_FRAGMENT + 256:
            raise ValueError("record fragment too large")
        return (
            self.content_type.to_bytes(1, "big")
            + LEGACY_VERSION.to_bytes(2, "big")
            + len(self.payload).to_bytes(2, "big")
            + self.payload
        )


def decode_records(data: bytes) -> tuple[list[Record], bytes]:
    """Parse as many complete records as available; return (records, rest)."""
    records = []
    offset = 0
    while len(data) - offset >= HEADER_LEN:
        content_type = data[offset]
        length = int.from_bytes(data[offset + 3: offset + 5], "big")
        if length > MAX_FRAGMENT + 256:
            raise DecodeError(f"oversized record ({length} bytes)")
        if len(data) - offset - HEADER_LEN < length:
            break
        payload = data[offset + HEADER_LEN: offset + HEADER_LEN + length]
        records.append(Record(content_type, payload))
        offset += HEADER_LEN + length
    return records, data[offset:]


def fragment_handshake(payload: bytes) -> list[Record]:
    """Split a handshake byte stream into <= 2^14-byte records."""
    return [
        Record(CONTENT_HANDSHAKE, payload[i: i + MAX_FRAGMENT])
        for i in range(0, len(payload), MAX_FRAGMENT)
    ]


class RecordProtection:
    """One direction of TLS 1.3 AEAD record protection."""

    def __init__(self, keys: TrafficKeys):
        self._aead = AesGcm(keys.key)
        self._iv = keys.iv
        self._sequence = 0

    def _nonce(self) -> bytes:
        seq = self._sequence.to_bytes(12, "big")
        return bytes(a ^ b for a, b in zip(self._iv, seq))

    def encrypt(self, content_type: int, plaintext: bytes) -> Record:
        inner = plaintext + content_type.to_bytes(1, "big")
        total = len(inner) + AesGcm.TAG_LEN
        aad = (
            CONTENT_APPLICATION_DATA.to_bytes(1, "big")
            + LEGACY_VERSION.to_bytes(2, "big")
            + total.to_bytes(2, "big")
        )
        ciphertext = self._aead.encrypt(self._nonce(), inner, aad)
        self._sequence += 1
        return Record(CONTENT_APPLICATION_DATA, ciphertext)

    def decrypt(self, record: Record) -> tuple[int, bytes]:
        if record.content_type != CONTENT_APPLICATION_DATA:
            raise DecodeError("protected record must have outer type 23")
        aad = (
            CONTENT_APPLICATION_DATA.to_bytes(1, "big")
            + LEGACY_VERSION.to_bytes(2, "big")
            + len(record.payload).to_bytes(2, "big")
        )
        try:
            inner = self._aead.decrypt(self._nonce(), record.payload, aad)
        except ValueError as exc:
            raise BadRecordMac(f"record deprotection failed: {exc}") from exc
        self._sequence += 1
        # strip zero padding, last nonzero byte is the content type
        end = len(inner)
        while end > 0 and inner[end - 1] == 0:
            end -= 1
        if end == 0:
            raise DecodeError("record of only padding")
        return inner[end - 1], inner[: end - 1]


ALERT_LEVEL_FATAL = 2


def encode_alert(description: int) -> Record:
    """A fatal alert record (RFC 8446 §6: all handshake alerts are fatal).

    Sent as a plaintext alert record even after keys are installed — a
    documented simplification (DESIGN.md §9): the byte accounting is off
    by the 17-byte AEAD expansion only on the already-failed path.
    """
    return Record(CONTENT_ALERT, bytes((ALERT_LEVEL_FATAL, description)))


def decode_alert(payload: bytes) -> tuple[int, int]:
    """Parse an alert body into ``(level, description)``."""
    if len(payload) != 2:
        raise DecodeError(f"alert record must be 2 bytes, got {len(payload)}")
    return payload[0], payload[1]


def encrypt_handshake_stream(protection: RecordProtection, payload: bytes) -> list[Record]:
    """Encrypt a handshake byte stream into protected records."""
    records = []
    for i in range(0, len(payload), MAX_FRAGMENT - 256):
        chunk = payload[i: i + MAX_FRAGMENT - 256]
        records.append(protection.encrypt(CONTENT_HANDSHAKE, chunk))
    return records
