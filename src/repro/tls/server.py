"""Sans-io TLS 1.3 server with the paper's two message-buffering policies.

``BufferPolicy.DEFAULT`` models stock OQS-OpenSSL: handshake records
accumulate in a 4096-byte internal buffer that is flushed to TCP only when
a new record would overflow it (write-through for oversized records) or
when the server's flight is complete.

``BufferPolicy.OPTIMIZED`` models the paper's patch: the ServerHello and
the Certificate are pushed to the client the moment they are computed, so
an expensive client-side decapsulation and certificate-chain verification
overlap with the server still computing its handshake signature (§4, §5.2).
"""

from __future__ import annotations

import enum

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_kem, get_sig
from repro.tls import messages as msg
from repro.tls.actions import Action, Compute, CryptoOp, Send
from repro.tls.certs import Certificate
from repro.tls.abort import AbortMixin
from repro.tls.errors import HandshakeFailure, PeerAlert, TlsError, UnexpectedMessage
from repro.tls.groups import GROUP_NAMES, group_id, sigscheme_id
from repro.tls.keyschedule import KeySchedule, traffic_keys
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    Record,
    RecordProtection,
    content_type_name,
    decode_alert,
    encrypt_handshake_stream,
    fragment_handshake,
)
from repro.tls.transcript import TranscriptHash

_BUFFER_LIMIT = 4096


class BufferPolicy(enum.Enum):
    DEFAULT = "default"      # stock OpenSSL 4096 B buffer
    OPTIMIZED = "optimized"  # paper's immediate-push patch


class _FlightBuffer:
    """Models the OpenSSL internal record buffer."""

    def __init__(self, policy: BufferPolicy):
        self._policy = policy
        self._pending: list[bytes] = []
        self._pending_len = 0
        self._labels: list[str] = []

    def add(self, record_bytes: bytes, label: str, *, push_now: bool) -> list[Send]:
        sends: list[Send] = []
        if self._policy is BufferPolicy.DEFAULT:
            if self._pending_len and self._pending_len + len(record_bytes) > _BUFFER_LIMIT:
                sends.append(self._flush())
            self._pending.append(record_bytes)
            self._pending_len += len(record_bytes)
            self._labels.append(label)
            if self._pending_len > _BUFFER_LIMIT:
                sends.append(self._flush())
        else:
            self._pending.append(record_bytes)
            self._pending_len += len(record_bytes)
            self._labels.append(label)
            if push_now:
                sends.append(self._flush())
        return sends

    def _flush(self) -> Send:
        send = Send(b"".join(self._pending), "+".join(self._labels))
        self._pending = []
        self._pending_len = 0
        self._labels = []
        return send

    def finish(self) -> list[Send]:
        if self._pending:
            return [self._flush()]
        return []


class TlsServer(AbortMixin):
    """One server-side handshake (fresh instance per connection)."""

    def __init__(self, kem_name: str, sig_name: str, certificate: Certificate,
                 secret_key: bytes, drbg: Drbg,
                 policy: BufferPolicy = BufferPolicy.OPTIMIZED):
        self.kem_name = kem_name
        self.sig_name = sig_name
        self._kem = get_kem(kem_name)
        self._sig = get_sig(sig_name)
        self._certificate = certificate
        self._secret_key = secret_key
        self._drbg = drbg
        self._policy = policy
        self._transcript = TranscriptHash()
        self._schedule = KeySchedule()
        self._recv_buffer = b""
        self._hs_stream = b""
        self._fin_stream = b""  # reassembles a client Finished split across records
        self._client_fin_protection: RecordProtection | None = None
        self._state = "start"
        self.handshake_complete = False
        self.bytes_out = 0
        self.failed = False
        self.failure: TlsError | None = None
        self.alert_sent: int | None = None
        self.alert_received: int | None = None

    # -- main entry point (the guarded receive loop lives in AbortMixin) -----
    def _handle_record(self, record: Record) -> list[Action]:
        if record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
            return []
        if record.content_type == CONTENT_ALERT:
            _level, description = decode_alert(record.payload)
            raise PeerAlert(description)
        if self._state == "start":
            if record.content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected ClientHello, got "
                    f"{content_type_name(record.content_type)} record")
            self._hs_stream += record.payload
            msgs, self._hs_stream = msg.iter_handshake_messages(self._hs_stream)
            actions: list[Action] = []
            for msg_type, body, raw in msgs:
                if msg_type != msg.HT_CLIENT_HELLO:
                    raise UnexpectedMessage(f"unexpected handshake type {msg_type}")
                actions.extend(self._process_client_hello(body, raw))
            return actions
        if self._state == "wait_finished":
            return self._process_client_finished(record)
        raise UnexpectedMessage(f"record in state {self._state}")

    # -- ClientHello -> full server flight ------------------------------------
    def _process_client_hello(self, body: bytes, raw: bytes) -> list[Action]:
        hello = msg.ClientHello.decode(body)
        my_group = group_id(self.kem_name)
        share = next((s for gid, s in hello.key_shares if gid == my_group), None)
        if share is None:
            offered = [GROUP_NAMES.get(gid, hex(gid)) for gid, _ in hello.key_shares]
            raise HandshakeFailure(
                f"client offered {offered}, server requires {self.kem_name} "
                "(2-RTT HelloRetryRequest is out of the paper's scope)")
        if sigscheme_id(self.sig_name) not in hello.sig_scheme_ids:
            raise HandshakeFailure(f"client does not accept {self.sig_name}")
        self._transcript.update(raw)
        actions: list[Action] = [
            Compute((
                CryptoOp("tls_frame", size=len(raw), detail="CH"),
                CryptoOp("kem_encaps", self.kem_name, detail="CH"),
            )),
        ]
        ciphertext, shared_secret = self._kem.encaps(share, self._drbg)
        buffer = _FlightBuffer(self._policy)

        server_hello = msg.ServerHello(
            random=self._drbg.random_bytes(32),
            session_id=hello.session_id,
            group_id=my_group,
            key_share=ciphertext,
        ).encode()
        self._transcript.update(server_hello)
        sh_records = b"".join(r.encode() for r in fragment_handshake(server_hello))
        ccs = Record(CONTENT_CHANGE_CIPHER_SPEC, b"\x01").encode()
        actions.extend(buffer.add(sh_records + ccs, "SH", push_now=True))

        self._schedule.set_shared_secret(shared_secret, self._transcript.digest())
        actions.append(Compute((
            CryptoOp("key_schedule", detail="SH"),
            CryptoOp("tls_frame", size=len(server_hello), detail="SH"),
        )))
        send_protection = RecordProtection(traffic_keys(self._schedule.server_hs_secret))
        self._client_fin_protection = RecordProtection(
            traffic_keys(self._schedule.client_hs_secret)
        )

        encrypted_ext = msg.encode_encrypted_extensions()
        cert_msg = msg.encode_certificate([self._certificate.encode()])
        self._transcript.update(encrypted_ext)
        self._transcript.update(cert_msg)
        flight = encrypted_ext + cert_msg
        records = b"".join(
            r.encode() for r in encrypt_handshake_stream(send_protection, flight)
        )
        actions.append(Compute((
            CryptoOp("record_crypt", size=len(flight), detail="EE+Cert"),
            CryptoOp("tls_frame", size=len(flight), detail="EE+Cert"),
        )))
        actions.extend(buffer.add(records, "EE+Cert", push_now=True))

        cv_payload = msg.CERTIFICATE_VERIFY_SERVER_CONTEXT + self._transcript.digest()
        actions.append(Compute((CryptoOp("sig_sign", self.sig_name, detail="CV"),)))
        signature = self._sig.sign(self._secret_key, cv_payload, self._drbg)
        cert_verify = msg.encode_certificate_verify(
            sigscheme_id(self.sig_name), signature
        )
        self._transcript.update(cert_verify)
        cv_records = b"".join(
            r.encode() for r in encrypt_handshake_stream(send_protection, cert_verify)
        )
        actions.append(Compute((
            CryptoOp("record_crypt", size=len(cert_verify), detail="CV"),
            CryptoOp("tls_frame", size=len(cert_verify), detail="CV"),
        )))
        actions.extend(buffer.add(cv_records, "CV", push_now=False))

        verify_data = self._schedule.finished_verify_data(
            self._schedule.server_hs_secret, self._transcript.digest()
        )
        finished = msg.encode_finished(verify_data)
        self._transcript.update(finished)
        fin_records = b"".join(
            r.encode() for r in encrypt_handshake_stream(send_protection, finished)
        )
        actions.append(Compute((
            CryptoOp("finished_mac", detail="Fin"),
            CryptoOp("record_crypt", size=len(finished), detail="Fin"),
        )))
        actions.extend(buffer.add(fin_records, "Fin", push_now=False))
        actions.extend(buffer.finish())

        self._schedule.derive_master(self._transcript.digest())
        self._state = "wait_finished"
        for action in actions:
            if isinstance(action, Send):
                self.bytes_out += len(action.data)
        return actions

    # -- client Finished --------------------------------------------------------
    def _process_client_finished(self, record: Record) -> list[Action]:
        content_type, plaintext = self._client_fin_protection.decrypt(record)
        if content_type != CONTENT_HANDSHAKE:
            raise UnexpectedMessage(
                "expected encrypted handshake record, got inner "
                f"{content_type_name(content_type)}")
        # a Finished split across record boundaries (RFC 8446 §5.1 allows any
        # fragmentation) reassembles here; incomplete tails wait for more bytes
        self._fin_stream += plaintext
        msgs, self._fin_stream = msg.iter_handshake_messages(self._fin_stream)
        actions: list[Action] = []
        for msg_type, body, raw in msgs:
            if msg_type != msg.HT_FINISHED:
                raise UnexpectedMessage(f"unexpected handshake type {msg_type}")
            expected = self._schedule.finished_verify_data(
                self._schedule.client_hs_secret, self._transcript.digest()
            )
            if body != expected:
                raise HandshakeFailure("client Finished verification failed")
            self._transcript.update(raw)
            self.handshake_complete = True
            self._state = "connected"
            actions.append(Compute((
                CryptoOp("finished_mac", detail="CliFin"),
                CryptoOp("record_crypt", size=len(raw), detail="CliFin"),
            )))
        return actions

    @property
    def application_secrets(self) -> tuple[bytes, bytes]:
        if not self.handshake_complete:
            raise HandshakeFailure("handshake not complete")
        return self._schedule.client_app_secret, self._schedule.server_app_secret
