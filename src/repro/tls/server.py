"""Sans-io TLS 1.3 server with the paper's two message-buffering policies.

``BufferPolicy.DEFAULT`` models stock OQS-OpenSSL: handshake records
accumulate in a 4096-byte internal buffer that is flushed to TCP only when
a new record would overflow it (write-through for oversized records) or
when the server's flight is complete.

``BufferPolicy.OPTIMIZED`` models the paper's patch: the ServerHello and
the Certificate are pushed to the client the moment they are computed, so
an expensive client-side decapsulation and certificate-chain verification
overlap with the server still computing its handshake signature (§4, §5.2).
"""

from __future__ import annotations

import enum
import hashlib

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_kem, get_sig
from repro.tls import messages as msg
from repro.tls.actions import Action, Compute, CryptoOp, Send
from repro.tls.certs import Certificate, TrustStore
from repro.tls.abort import AbortMixin
from repro.tls.errors import (
    CertificateRequired,
    HandshakeFailure,
    PeerAlert,
    TlsError,
    UnexpectedMessage,
)
from repro.tls.groups import GROUP_NAMES, SIGSCHEME_NAMES, group_id, sigscheme_id
from repro.tls.keyschedule import KeySchedule, traffic_keys
from repro.tls.ticket import ResumptionState, ServerSessionStore
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_CHANGE_CIPHER_SPEC,
    CONTENT_HANDSHAKE,
    Record,
    RecordProtection,
    content_type_name,
    decode_alert,
    encrypt_handshake_stream,
    fragment_handshake,
)
from repro.tls.transcript import TranscriptHash

_BUFFER_LIMIT = 4096


class BufferPolicy(enum.Enum):
    DEFAULT = "default"      # stock OpenSSL 4096 B buffer
    OPTIMIZED = "optimized"  # paper's immediate-push patch


class _FlightBuffer:
    """Models the OpenSSL internal record buffer."""

    def __init__(self, policy: BufferPolicy):
        self._policy = policy
        self._pending: list[bytes] = []
        self._pending_len = 0
        self._labels: list[str] = []

    def add(self, record_bytes: bytes, label: str, *, push_now: bool) -> list[Send]:
        sends: list[Send] = []
        if self._policy is BufferPolicy.DEFAULT:
            if self._pending_len and self._pending_len + len(record_bytes) > _BUFFER_LIMIT:
                sends.append(self._flush())
            self._pending.append(record_bytes)
            self._pending_len += len(record_bytes)
            self._labels.append(label)
            if self._pending_len > _BUFFER_LIMIT:
                sends.append(self._flush())
        else:
            self._pending.append(record_bytes)
            self._pending_len += len(record_bytes)
            self._labels.append(label)
            if push_now:
                sends.append(self._flush())
        return sends

    def _flush(self) -> Send:
        send = Send(b"".join(self._pending), "+".join(self._labels))
        self._pending = []
        self._pending_len = 0
        self._labels = []
        return send

    def finish(self) -> list[Send]:
        if self._pending:
            return [self._flush()]
        return []


class TlsServer(AbortMixin):
    """One server-side handshake (fresh instance per connection)."""

    def __init__(self, kem_name: str, sig_name: str,
                 certificate: Certificate | list[Certificate] | tuple,
                 secret_key: bytes, drbg: Drbg,
                 policy: BufferPolicy = BufferPolicy.OPTIMIZED, *,
                 client_auth: TrustStore | None = None,
                 session_store: ServerSessionStore | None = None,
                 issue_tickets: int = 0):
        self.kem_name = kem_name
        self.sig_name = sig_name
        self._kem = get_kem(kem_name)
        self._sig = get_sig(sig_name)
        if isinstance(certificate, Certificate):
            self._chain = [certificate]
        else:
            self._chain = list(certificate)
        self._certificate = self._chain[0]
        self._secret_key = secret_key
        self._drbg = drbg
        self._policy = policy
        self._client_auth = client_auth
        self._session_store = session_store
        self._issue_tickets = issue_tickets
        if issue_tickets and session_store is None:
            raise HandshakeFailure("ticket issuance requires a session store")
        self._transcript = TranscriptHash()
        self._schedule = KeySchedule()
        self._recv_buffer = b""
        self._hs_stream = b""
        self._fin_stream = b""  # reassembles a client Finished split across records
        self._client_fin_protection: RecordProtection | None = None
        self._app_send_protection: RecordProtection | None = None
        self._app_recv_protection: RecordProtection | None = None
        self._client_cert: Certificate | None = None
        self._retry_sent = False
        self._auth_state = "fin"  # or "cert"/"cv" while client auth is pending
        self.resumed = False
        self._state = "start"
        self.handshake_complete = False
        self.bytes_out = 0
        self.failed = False
        self.failure: TlsError | None = None
        self.alert_sent: int | None = None
        self.alert_received: int | None = None

    # -- main entry point (the guarded receive loop lives in AbortMixin) -----
    def _handle_record(self, record: Record) -> list[Action]:
        if record.content_type == CONTENT_CHANGE_CIPHER_SPEC:
            return []
        if record.content_type == CONTENT_ALERT:
            _level, description = decode_alert(record.payload)
            raise PeerAlert(description)
        if self._state == "start":
            if record.content_type != CONTENT_HANDSHAKE:
                raise UnexpectedMessage(
                    "expected ClientHello, got "
                    f"{content_type_name(record.content_type)} record")
            self._hs_stream += record.payload
            msgs, self._hs_stream = msg.iter_handshake_messages(self._hs_stream)
            actions: list[Action] = []
            for msg_type, body, raw in msgs:
                if msg_type != msg.HT_CLIENT_HELLO:
                    raise UnexpectedMessage(f"unexpected handshake type {msg_type}")
                actions.extend(self._process_client_hello(body, raw))
            return actions
        if self._state == "wait_finished":
            return self._process_client_finished(record)
        raise UnexpectedMessage(f"record in state {self._state}")

    # -- ClientHello -> full server flight ------------------------------------
    def _process_client_hello(self, body: bytes, raw: bytes) -> list[Action]:
        hello = msg.ClientHello.decode(body)
        my_group = group_id(self.kem_name)
        share = next((s for gid, s in hello.key_shares if gid == my_group), None)
        if share is None:
            if my_group in hello.group_ids and not self._retry_sent:
                return self._send_hello_retry(hello, raw)
            offered = [GROUP_NAMES.get(gid, hex(gid)) for gid, _ in hello.key_shares]
            raise HandshakeFailure(
                f"client offered {offered}, server requires {self.kem_name}")
        if sigscheme_id(self.sig_name) not in hello.sig_scheme_ids:
            raise HandshakeFailure(f"client does not accept {self.sig_name}")
        psk = self._redeem_psk(hello, raw)
        if psk is not None:
            self.resumed = True
            self._schedule = KeySchedule(psk=psk)
        self._transcript.update(raw)
        actions: list[Action] = [
            Compute((
                CryptoOp("tls_frame", size=len(raw), detail="CH"),
                CryptoOp("kem_encaps", self.kem_name, detail="CH"),
            )),
        ]
        if psk is not None:
            actions.append(Compute((CryptoOp("psk_binder", detail="CH"),)))
        ciphertext, shared_secret = self._kem.encaps(share, self._drbg)
        buffer = _FlightBuffer(self._policy)

        server_hello = msg.ServerHello(
            random=self._drbg.random_bytes(32),
            session_id=hello.session_id,
            group_id=my_group,
            key_share=ciphertext,
            psk_selected=self.resumed,
        ).encode()
        self._transcript.update(server_hello)
        sh_records = b"".join(r.encode() for r in fragment_handshake(server_hello))
        ccs = Record(CONTENT_CHANGE_CIPHER_SPEC, b"\x01").encode()
        actions.extend(buffer.add(sh_records + ccs, "SH", push_now=True))

        self._schedule.set_shared_secret(shared_secret, self._transcript.digest())
        actions.append(Compute((
            CryptoOp("key_schedule", detail="SH"),
            CryptoOp("tls_frame", size=len(server_hello), detail="SH"),
        )))
        send_protection = RecordProtection(traffic_keys(self._schedule.server_hs_secret))
        self._client_fin_protection = RecordProtection(
            traffic_keys(self._schedule.client_hs_secret)
        )

        encrypted_ext = msg.encode_encrypted_extensions()
        self._transcript.update(encrypted_ext)
        flight = encrypted_ext
        flight_label = "EE"
        if not self.resumed:
            if self._client_auth is not None:
                cert_request = msg.encode_certificate_request(
                    [sigscheme_id(self.sig_name)]
                )
                self._transcript.update(cert_request)
                flight += cert_request
                flight_label += "+CR"
                self._auth_state = "cert"
            cert_msg = msg.encode_certificate(
                [cert.encode() for cert in self._chain]
            )
            self._transcript.update(cert_msg)
            flight += cert_msg
            flight_label += "+Cert"
        records = b"".join(
            r.encode() for r in encrypt_handshake_stream(send_protection, flight)
        )
        actions.append(Compute((
            CryptoOp("record_crypt", size=len(flight), detail=flight_label),
            CryptoOp("tls_frame", size=len(flight), detail=flight_label),
        )))
        actions.extend(buffer.add(records, flight_label, push_now=True))

        if not self.resumed:
            cv_payload = (
                msg.CERTIFICATE_VERIFY_SERVER_CONTEXT + self._transcript.digest()
            )
            actions.append(
                Compute((CryptoOp("sig_sign", self.sig_name, detail="CV"),)))
            signature = self._sig.sign(self._secret_key, cv_payload, self._drbg)
            cert_verify = msg.encode_certificate_verify(
                sigscheme_id(self.sig_name), signature
            )
            self._transcript.update(cert_verify)
            cv_records = b"".join(
                r.encode()
                for r in encrypt_handshake_stream(send_protection, cert_verify)
            )
            actions.append(Compute((
                CryptoOp("record_crypt", size=len(cert_verify), detail="CV"),
                CryptoOp("tls_frame", size=len(cert_verify), detail="CV"),
            )))
            actions.extend(buffer.add(cv_records, "CV", push_now=False))

        verify_data = self._schedule.finished_verify_data(
            self._schedule.server_hs_secret, self._transcript.digest()
        )
        finished = msg.encode_finished(verify_data)
        self._transcript.update(finished)
        fin_records = b"".join(
            r.encode() for r in encrypt_handshake_stream(send_protection, finished)
        )
        actions.append(Compute((
            CryptoOp("finished_mac", detail="Fin"),
            CryptoOp("record_crypt", size=len(finished), detail="Fin"),
        )))
        actions.extend(buffer.add(fin_records, "Fin", push_now=False))
        actions.extend(buffer.finish())

        self._schedule.derive_master(self._transcript.digest())
        self._state = "wait_finished"
        for action in actions:
            if isinstance(action, Send):
                self.bytes_out += len(action.data)
        return actions

    def _send_hello_retry(self, hello: msg.ClientHello, raw: bytes) -> list[Action]:
        """No usable key share but a supported group: ask for a second CH."""
        self._retry_sent = True
        self._transcript.restart(msg.message_hash(raw))
        retry = msg.ServerHello(
            random=msg.HELLO_RETRY_REQUEST_RANDOM,
            session_id=hello.session_id,
            group_id=group_id(self.kem_name),
            key_share=b"",
        ).encode()
        self._transcript.update(retry)
        wire = b"".join(r.encode() for r in fragment_handshake(retry))
        self.bytes_out += len(wire)
        return [
            Compute((
                CryptoOp("tls_frame", size=len(raw), detail="CH1"),
                CryptoOp("tls_frame", size=len(retry), detail="HRR"),
            )),
            Send(wire, "HRR"),
        ]

    def _redeem_psk(self, hello: msg.ClientHello, raw: bytes) -> bytes | None:
        """Validate an offered ticket; None falls back to a full handshake."""
        if hello.psk_identity is None or self._session_store is None:
            return None
        if self._retry_sent:
            # the binder would cover the post-HRR transcript; out of scope
            return None
        state = self._session_store.redeem(hello.psk_identity)
        if state is None:
            return None
        if (state.kem, state.sig) != (self.kem_name, self.sig_name):
            return None
        binder_key = KeySchedule(psk=state.psk).psk_binder_key()
        truncated_hash = hashlib.sha256(raw[:-msg.BINDER_SUFFIX_LEN]).digest()
        expected = KeySchedule.psk_binder(binder_key, truncated_hash)
        if hello.psk_binder != expected:
            raise HandshakeFailure("PSK binder verification failed")
        return state.psk

    # -- client flight: [Certificate + CertificateVerify +] Finished ----------
    def _process_client_finished(self, record: Record) -> list[Action]:
        content_type, plaintext = self._client_fin_protection.decrypt(record)
        if content_type != CONTENT_HANDSHAKE:
            raise UnexpectedMessage(
                "expected encrypted handshake record, got inner "
                f"{content_type_name(content_type)}")
        # a flight split across record boundaries (RFC 8446 §5.1 allows any
        # fragmentation) reassembles here; incomplete tails wait for more bytes
        self._fin_stream += plaintext
        msgs, self._fin_stream = msg.iter_handshake_messages(self._fin_stream)
        actions: list[Action] = []
        for msg_type, body, raw in msgs:
            if self._auth_state == "cert":
                actions.extend(self._process_client_certificate(msg_type, body, raw))
            elif self._auth_state == "cv":
                actions.extend(
                    self._process_client_certificate_verify(msg_type, body, raw))
            else:
                actions.extend(self._process_finished_message(msg_type, body, raw))
        return actions

    def _process_client_certificate(self, msg_type: int, body: bytes,
                                    raw: bytes) -> list[Action]:
        if msg_type != msg.HT_CERTIFICATE:
            raise UnexpectedMessage("expected client Certificate")
        cert_blobs = msg.decode_certificate(body)
        if not cert_blobs:
            raise CertificateRequired("client declined to authenticate")
        chain = [Certificate.decode(blob) for blob in cert_blobs]
        leaf = self._client_auth.verify_chain(chain)
        if leaf.algorithm != self.sig_name:
            raise HandshakeFailure(
                f"client certificate uses {leaf.algorithm}, expected {self.sig_name}")
        self._client_cert = leaf
        self._transcript.update(raw)
        self._auth_state = "cv"
        return [Compute((
            CryptoOp("tls_frame", size=len(raw), detail="CliCert"),
            CryptoOp("cert_verify", self.sig_name, detail="CliCert"),
        ))]

    def _process_client_certificate_verify(self, msg_type: int, body: bytes,
                                           raw: bytes) -> list[Action]:
        if msg_type != msg.HT_CERTIFICATE_VERIFY:
            raise UnexpectedMessage("expected client CertificateVerify")
        scheme_id, signature = msg.decode_certificate_verify(body)
        scheme_name = SIGSCHEME_NAMES.get(scheme_id)
        if scheme_name != self.sig_name:
            raise HandshakeFailure(
                f"unexpected client CertificateVerify scheme {scheme_name}")
        payload = msg.CERTIFICATE_VERIFY_CLIENT_CONTEXT + self._transcript.digest()
        scheme = get_sig(self.sig_name)
        if not scheme.verify(self._client_cert.public_key, payload, signature):
            raise HandshakeFailure("client CertificateVerify signature invalid")
        self._transcript.update(raw)
        self._auth_state = "fin"
        return [Compute((CryptoOp("sig_verify", self.sig_name, detail="CliCV"),))]

    def _process_finished_message(self, msg_type: int, body: bytes,
                                  raw: bytes) -> list[Action]:
        if msg_type != msg.HT_FINISHED:
            raise UnexpectedMessage(f"unexpected handshake type {msg_type}")
        expected = self._schedule.finished_verify_data(
            self._schedule.client_hs_secret, self._transcript.digest()
        )
        if body != expected:
            raise HandshakeFailure("client Finished verification failed")
        self._transcript.update(raw)
        self.handshake_complete = True
        self._state = "connected"
        actions: list[Action] = [Compute((
            CryptoOp("finished_mac", detail="CliFin"),
            CryptoOp("record_crypt", size=len(raw), detail="CliFin"),
        ))]
        self._schedule.derive_resumption(self._transcript.digest())
        if self._issue_tickets:
            actions.extend(self._mint_tickets())
        return actions

    def _mint_tickets(self) -> list[Action]:
        """Issue NewSessionTickets over the application traffic keys."""
        send_protection, _recv = self.app_protections()
        actions: list[Action] = []
        for index in range(self._issue_tickets):
            nonce = index.to_bytes(8, "big")
            psk = KeySchedule.ticket_psk(
                self._schedule.resumption_master_secret, nonce
            )
            identity = self._drbg.random_bytes(32)
            age_add = int.from_bytes(self._drbg.random_bytes(4), "big")
            self._session_store.put(identity, ResumptionState(
                psk=psk, kem=self.kem_name, sig=self.sig_name,
            ))
            ticket = msg.NewSessionTicket(
                lifetime=7200, age_add=age_add, nonce=nonce, ticket=identity
            ).encode()
            records = b"".join(
                r.encode()
                for r in encrypt_handshake_stream(send_protection, ticket)
            )
            actions.append(Compute((
                CryptoOp("session_ticket", detail="NST"),
                CryptoOp("record_crypt", size=len(ticket), detail="NST"),
            )))
            actions.append(Send(records, "NST"))
            self.bytes_out += len(records)
        return actions

    def app_protections(self) -> tuple[RecordProtection, RecordProtection]:
        """(send, receive) protections over the application secrets.

        Shared with post-handshake traffic (NewSessionTicket issuance) so a
        :class:`~repro.tls.session.SecureChannel` adopting them continues
        the same record sequence instead of reusing nonces.
        """
        client_secret, server_secret = self.application_secrets
        if self._app_send_protection is None:
            self._app_send_protection = RecordProtection(traffic_keys(server_secret))
        if self._app_recv_protection is None:
            self._app_recv_protection = RecordProtection(traffic_keys(client_secret))
        return self._app_send_protection, self._app_recv_protection

    @property
    def application_secrets(self) -> tuple[bytes, bytes]:
        if not self.handshake_complete:
            raise HandshakeFailure("handshake not complete")
        return self._schedule.client_app_secret, self._schedule.server_app_secret
