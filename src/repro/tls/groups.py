"""TLS codepoints for the paper's key agreements and signature schemes.

Classical groups use their IANA numbers; PQ and hybrid groups use
OQS-style private-range codepoints (the exact values only need to be
consistent between our client and server, as in the paper's fork).
"""

from __future__ import annotations

from repro.pqc.registry import ALL_KEM_NAMES, ALL_SIG_NAMES, KEMS, SIGS

_IANA_GROUPS = {
    "p256": 0x0017,
    "p384": 0x0018,
    "p521": 0x0019,
    "x25519": 0x001D,
}

_IANA_SIGSCHEMES = {
    "rsa:1024": 0x0804,  # rsa_pss_rsae_sha256 (key size is a cert property)
    "rsa:2048": 0x0805,
    "rsa:3072": 0x0806,
    "rsa:4096": 0x0807,
}

GROUP_IDS: dict[str, int] = {}
GROUP_NAMES: dict[int, str] = {}
SIGSCHEME_IDS: dict[str, int] = {}
SIGSCHEME_NAMES: dict[int, str] = {}


def _register_groups() -> None:
    next_private = 0x2F00  # OQS private-use block
    for name in sorted(KEMS):
        if name in _IANA_GROUPS:
            code = _IANA_GROUPS[name]
        else:
            code = next_private
            next_private += 1
        GROUP_IDS[name] = code
        GROUP_NAMES[code] = name


def _register_sigschemes() -> None:
    next_private = 0xFE00
    for name in sorted(SIGS):
        if name in _IANA_SIGSCHEMES:
            code = _IANA_SIGSCHEMES[name]
        else:
            code = next_private
            next_private += 1
        SIGSCHEME_IDS[name] = code
        SIGSCHEME_NAMES[code] = name


_register_groups()
_register_sigschemes()


def group_id(name: str) -> int:
    try:
        return GROUP_IDS[name]
    except KeyError:
        raise KeyError(f"no TLS group for {name!r}") from None


def sigscheme_id(name: str) -> int:
    try:
        return SIGSCHEME_IDS[name]
    except KeyError:
        raise KeyError(f"no TLS signature scheme for {name!r}") from None


__all__ = [
    "GROUP_IDS",
    "GROUP_NAMES",
    "SIGSCHEME_IDS",
    "SIGSCHEME_NAMES",
    "group_id",
    "sigscheme_id",
    "ALL_KEM_NAMES",
    "ALL_SIG_NAMES",
]
