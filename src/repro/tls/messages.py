"""TLS 1.3 handshake message and extension codecs (RFC 8446 §4)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.tls.errors import DecodeError

HT_CLIENT_HELLO = 1
HT_NEW_SESSION_TICKET = 4
HT_SERVER_HELLO = 2
HT_ENCRYPTED_EXTENSIONS = 8
HT_CERTIFICATE = 11
HT_CERTIFICATE_REQUEST = 13
HT_CERTIFICATE_VERIFY = 15
HT_FINISHED = 20
HT_KEY_UPDATE = 24
HT_MESSAGE_HASH = 254

EXT_SERVER_NAME = 0x0000
EXT_SUPPORTED_GROUPS = 0x000A
EXT_SIGNATURE_ALGORITHMS = 0x000D
EXT_PRE_SHARED_KEY = 0x0029
EXT_SUPPORTED_VERSIONS = 0x002B
EXT_PSK_KEY_EXCHANGE_MODES = 0x002D
EXT_KEY_SHARE = 0x0033
EXT_PADDING = 0x0015

TLS13 = 0x0304
CIPHER_TLS_AES_128_GCM_SHA256 = 0x1301

# psk_key_exchange_modes: we only ever offer/accept psk_dhe_ke (§4.2.9),
# so every resumption still does a fresh (EC)DHE/KEM exchange.
PSK_DHE_KE = 1

# The fixed ServerHello.random value that marks a HelloRetryRequest
# (RFC 8446 §4.1.3: SHA-256 of "HelloRetryRequest").
HELLO_RETRY_REQUEST_RANDOM = bytes.fromhex(
    "cf21ad74e59a6111be1d8c021e65b891c2a211167abb8c5e079e09e2c8a8339c"
)

# Wire bytes a single offered PSK binder adds after the identities list:
# 2 (binders list length) + 1 (binder length) + 32 (SHA-256 binder).
BINDER_SUFFIX_LEN = 2 + 1 + 32


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def bytes(self, count: int) -> bytes:
        if self.remaining() < count:
            raise DecodeError("message truncated")
        out = self._data[self._pos: self._pos + count]
        self._pos += count
        return out

    def uint(self, size: int) -> int:
        return int.from_bytes(self.bytes(size), "big")

    def vector(self, length_bytes: int) -> bytes:
        return self.bytes(self.uint(length_bytes))


def _vec(data: bytes, length_bytes: int) -> bytes:
    return len(data).to_bytes(length_bytes, "big") + data


def wrap_handshake(msg_type: int, body: bytes) -> bytes:
    return msg_type.to_bytes(1, "big") + _vec(body, 3)


def iter_handshake_messages(stream: bytes):
    """Yield (type, body, raw) for complete messages; also return leftovers."""
    messages = []
    offset = 0
    while len(stream) - offset >= 4:
        msg_type = stream[offset]
        length = int.from_bytes(stream[offset + 1: offset + 4], "big")
        if len(stream) - offset - 4 < length:
            break
        body = stream[offset + 4: offset + 4 + length]
        raw = stream[offset: offset + 4 + length]
        messages.append((msg_type, body, raw))
        offset += 4 + length
    return messages, stream[offset:]


def _encode_extensions(extensions: list[tuple[int, bytes]]) -> bytes:
    blob = b"".join(
        ext_type.to_bytes(2, "big") + _vec(ext_data, 2)
        for ext_type, ext_data in extensions
    )
    return _vec(blob, 2)


def _decode_extensions(reader: _Reader) -> dict[int, bytes]:
    out: dict[int, bytes] = {}
    ext_block = _Reader(reader.vector(2))
    while ext_block.remaining():
        ext_type = ext_block.uint(2)
        out[ext_type] = ext_block.vector(2)
    return out


@dataclass
class ClientHello:
    random: bytes
    session_id: bytes
    group_name_to_share: dict[str, bytes]      # ordered: offered key shares
    group_ids: list[int]                        # supported_groups codepoints
    key_shares: list[tuple[int, bytes]]         # (group codepoint, share)
    sig_scheme_ids: list[int]
    server_name: str | None = None
    psk_identity: bytes | None = None           # offered resumption ticket
    psk_obfuscated_age: int = 0
    psk_binder: bytes = b""

    def encode(self) -> bytes:
        extensions: list[tuple[int, bytes]] = []
        if self.server_name:
            host = self.server_name.encode()
            sni = _vec(b"\x00" + _vec(host, 2), 2)
            extensions.append((EXT_SERVER_NAME, sni))
        extensions.append((EXT_SUPPORTED_VERSIONS, b"\x02" + TLS13.to_bytes(2, "big")))
        groups = b"".join(g.to_bytes(2, "big") for g in self.group_ids)
        extensions.append((EXT_SUPPORTED_GROUPS, _vec(groups, 2)))
        schemes = b"".join(s.to_bytes(2, "big") for s in self.sig_scheme_ids)
        extensions.append((EXT_SIGNATURE_ALGORITHMS, _vec(schemes, 2)))
        shares = b"".join(
            gid.to_bytes(2, "big") + _vec(share, 2) for gid, share in self.key_shares
        )
        extensions.append((EXT_KEY_SHARE, _vec(shares, 2)))
        if self.psk_identity is not None:
            extensions.append(
                (EXT_PSK_KEY_EXCHANGE_MODES, _vec(PSK_DHE_KE.to_bytes(1, "big"), 1))
            )
            identity = (
                _vec(self.psk_identity, 2)
                + self.psk_obfuscated_age.to_bytes(4, "big")
            )
            binder = self.psk_binder or b"\x00" * 32
            # pre_shared_key MUST be the last extension (§4.2.11)
            extensions.append(
                (EXT_PRE_SHARED_KEY, _vec(identity, 2) + _vec(_vec(binder, 1), 2))
            )
        body = (
            (0x0303).to_bytes(2, "big")
            + self.random
            + _vec(self.session_id, 1)
            + _vec(CIPHER_TLS_AES_128_GCM_SHA256.to_bytes(2, "big"), 2)
            + _vec(b"\x00", 1)
            + _encode_extensions(extensions)
        )
        return wrap_handshake(HT_CLIENT_HELLO, body)

    def encode_truncated(self) -> bytes:
        """The binder-transcript prefix: everything up to the binders list."""
        if self.psk_identity is None:
            raise DecodeError("no PSK offered; nothing to truncate")
        return self.encode()[:-BINDER_SUFFIX_LEN]

    @classmethod
    def decode(cls, body: bytes) -> "ClientHello":
        reader = _Reader(body)
        if reader.uint(2) != 0x0303:
            raise DecodeError("bad legacy version")
        random = reader.bytes(32)
        session_id = reader.vector(1)
        suites = reader.vector(2)
        if len(suites) % 2 or CIPHER_TLS_AES_128_GCM_SHA256.to_bytes(2, "big") not in [
            suites[i: i + 2] for i in range(0, len(suites), 2)
        ]:
            raise DecodeError("client does not offer TLS_AES_128_GCM_SHA256")
        reader.vector(1)  # compression methods
        extensions = _decode_extensions(reader)
        if EXT_SUPPORTED_VERSIONS not in extensions:
            raise DecodeError("missing supported_versions")
        groups_blob = _Reader(extensions.get(EXT_SUPPORTED_GROUPS, b"")).vector(2)
        group_ids = [
            int.from_bytes(groups_blob[i: i + 2], "big")
            for i in range(0, len(groups_blob), 2)
        ]
        schemes_blob = _Reader(extensions.get(EXT_SIGNATURE_ALGORITHMS, b"")).vector(2)
        scheme_ids = [
            int.from_bytes(schemes_blob[i: i + 2], "big")
            for i in range(0, len(schemes_blob), 2)
        ]
        shares_reader = _Reader(_Reader(extensions.get(EXT_KEY_SHARE, b"")).vector(2))
        key_shares = []
        while shares_reader.remaining():
            gid = shares_reader.uint(2)
            key_shares.append((gid, shares_reader.vector(2)))
        server_name = None
        if EXT_SERVER_NAME in extensions:
            sni_reader = _Reader(extensions[EXT_SERVER_NAME])
            entry = _Reader(sni_reader.vector(2))
            entry.uint(1)
            server_name = entry.vector(2).decode()
        psk_identity = None
        psk_age = 0
        psk_binder = b""
        if EXT_PRE_SHARED_KEY in extensions:
            if EXT_PSK_KEY_EXCHANGE_MODES not in extensions:
                raise DecodeError("pre_shared_key without psk_key_exchange_modes")
            modes = _Reader(extensions[EXT_PSK_KEY_EXCHANGE_MODES]).vector(1)
            if PSK_DHE_KE.to_bytes(1, "big") not in modes:
                raise DecodeError("peer does not offer psk_dhe_ke")
            psk_reader = _Reader(extensions[EXT_PRE_SHARED_KEY])
            identities = _Reader(psk_reader.vector(2))
            psk_identity = identities.vector(2)
            psk_age = identities.uint(4)
            if identities.remaining():
                raise DecodeError("multiple PSK identities not supported")
            binders = _Reader(psk_reader.vector(2))
            psk_binder = binders.vector(1)
            if len(psk_binder) != 32 or binders.remaining():
                raise DecodeError("malformed PSK binders list")
        return cls(
            random=random,
            session_id=session_id,
            group_name_to_share={},
            group_ids=group_ids,
            key_shares=key_shares,
            sig_scheme_ids=scheme_ids,
            server_name=server_name,
            psk_identity=psk_identity,
            psk_obfuscated_age=psk_age,
            psk_binder=psk_binder,
        )


@dataclass
class ServerHello:
    random: bytes
    session_id: bytes
    group_id: int
    key_share: bytes
    psk_selected: bool = False

    @property
    def is_hello_retry_request(self) -> bool:
        return self.random == HELLO_RETRY_REQUEST_RANDOM

    def encode(self) -> bytes:
        if self.is_hello_retry_request:
            # HRR carries only the selected group, no share (§4.2.8)
            key_share_ext = self.group_id.to_bytes(2, "big")
        else:
            key_share_ext = self.group_id.to_bytes(2, "big") + _vec(self.key_share, 2)
        extensions = [
            (EXT_SUPPORTED_VERSIONS, TLS13.to_bytes(2, "big")),
            (EXT_KEY_SHARE, key_share_ext),
        ]
        if self.psk_selected:
            # selected_identity: always the single identity we allow (§4.2.11)
            extensions.append((EXT_PRE_SHARED_KEY, (0).to_bytes(2, "big")))
        body = (
            (0x0303).to_bytes(2, "big")
            + self.random
            + _vec(self.session_id, 1)
            + CIPHER_TLS_AES_128_GCM_SHA256.to_bytes(2, "big")
            + b"\x00"
            + _encode_extensions(extensions)
        )
        return wrap_handshake(HT_SERVER_HELLO, body)

    @classmethod
    def decode(cls, body: bytes) -> "ServerHello":
        reader = _Reader(body)
        reader.uint(2)
        random = reader.bytes(32)
        session_id = reader.vector(1)
        suite = reader.uint(2)
        if suite != CIPHER_TLS_AES_128_GCM_SHA256:
            raise DecodeError("server picked an unexpected cipher suite")
        reader.uint(1)  # compression
        extensions = _decode_extensions(reader)
        if extensions.get(EXT_SUPPORTED_VERSIONS) != TLS13.to_bytes(2, "big"):
            raise DecodeError("server did not select TLS 1.3")
        share_reader = _Reader(extensions[EXT_KEY_SHARE])
        gid = share_reader.uint(2)
        if random == HELLO_RETRY_REQUEST_RANDOM:
            if share_reader.remaining():
                raise DecodeError("HelloRetryRequest must not carry a key share")
            share = b""
        else:
            share = share_reader.vector(2)
        psk_selected = False
        if EXT_PRE_SHARED_KEY in extensions:
            if _Reader(extensions[EXT_PRE_SHARED_KEY]).uint(2) != 0:
                raise DecodeError("server selected an unknown PSK identity")
            psk_selected = True
        return cls(
            random=random,
            session_id=session_id,
            group_id=gid,
            key_share=share,
            psk_selected=psk_selected,
        )


def encode_encrypted_extensions() -> bytes:
    return wrap_handshake(HT_ENCRYPTED_EXTENSIONS, _vec(b"", 2))


def encode_certificate(cert_chain: list[bytes]) -> bytes:
    entries = b"".join(_vec(cert, 3) + _vec(b"", 2) for cert in cert_chain)
    body = _vec(b"", 1) + _vec(entries, 3)
    return wrap_handshake(HT_CERTIFICATE, body)


def decode_certificate(body: bytes) -> list[bytes]:
    reader = _Reader(body)
    reader.vector(1)  # certificate_request_context
    entries = _Reader(reader.vector(3))
    certs = []
    while entries.remaining():
        certs.append(entries.vector(3))
        entries.vector(2)  # per-entry extensions
    return certs


def encode_certificate_verify(scheme_id: int, signature: bytes) -> bytes:
    body = scheme_id.to_bytes(2, "big") + _vec(signature, 2)
    return wrap_handshake(HT_CERTIFICATE_VERIFY, body)


def decode_certificate_verify(body: bytes) -> tuple[int, bytes]:
    reader = _Reader(body)
    scheme = reader.uint(2)
    return scheme, reader.vector(2)


def encode_finished(verify_data: bytes) -> bytes:
    return wrap_handshake(HT_FINISHED, verify_data)


@dataclass(frozen=True)
class NewSessionTicket:
    """A NewSessionTicket message (RFC 8446 §4.6.1), sans early-data."""

    lifetime: int
    age_add: int
    nonce: bytes
    ticket: bytes

    def encode(self) -> bytes:
        body = (
            self.lifetime.to_bytes(4, "big")
            + self.age_add.to_bytes(4, "big")
            + _vec(self.nonce, 1)
            + _vec(self.ticket, 2)
            + _vec(b"", 2)
        )
        return wrap_handshake(HT_NEW_SESSION_TICKET, body)

    @classmethod
    def decode(cls, body: bytes) -> "NewSessionTicket":
        reader = _Reader(body)
        lifetime = reader.uint(4)
        age_add = reader.uint(4)
        nonce = reader.vector(1)
        ticket = reader.vector(2)
        if not ticket:
            raise DecodeError("empty session ticket")
        reader.vector(2)  # extensions (early_data unsupported, ignored)
        return cls(lifetime=lifetime, age_add=age_add, nonce=nonce, ticket=ticket)


def encode_certificate_request(sig_scheme_ids: list[int]) -> bytes:
    schemes = b"".join(s.to_bytes(2, "big") for s in sig_scheme_ids)
    extensions = _encode_extensions([(EXT_SIGNATURE_ALGORITHMS, _vec(schemes, 2))])
    body = _vec(b"", 1) + extensions  # empty certificate_request_context
    return wrap_handshake(HT_CERTIFICATE_REQUEST, body)


def decode_certificate_request(body: bytes) -> list[int]:
    reader = _Reader(body)
    if reader.vector(1):
        raise DecodeError("non-empty certificate_request_context")
    extensions = _decode_extensions(reader)
    if EXT_SIGNATURE_ALGORITHMS not in extensions:
        raise DecodeError("CertificateRequest missing signature_algorithms")
    blob = _Reader(extensions[EXT_SIGNATURE_ALGORITHMS]).vector(2)
    return [int.from_bytes(blob[i: i + 2], "big") for i in range(0, len(blob), 2)]


KEY_UPDATE_NOT_REQUESTED = 0
KEY_UPDATE_REQUESTED = 1


def encode_key_update(request_update: bool) -> bytes:
    value = KEY_UPDATE_REQUESTED if request_update else KEY_UPDATE_NOT_REQUESTED
    return wrap_handshake(HT_KEY_UPDATE, value.to_bytes(1, "big"))


def decode_key_update(body: bytes) -> bool:
    """True when the sender requests a KeyUpdate in return."""
    if len(body) != 1 or body[0] not in (
        KEY_UPDATE_NOT_REQUESTED,
        KEY_UPDATE_REQUESTED,
    ):
        raise DecodeError("malformed KeyUpdate")
    return body[0] == KEY_UPDATE_REQUESTED


def message_hash(client_hello_raw: bytes) -> bytes:
    """The synthetic message replacing CH1 in an HRR transcript (§4.4.1)."""
    return wrap_handshake(
        HT_MESSAGE_HASH, hashlib.sha256(client_hello_raw).digest()
    )


CERTIFICATE_VERIFY_SERVER_CONTEXT = (
    b"\x20" * 64 + b"TLS 1.3, server CertificateVerify" + b"\x00"
)

CERTIFICATE_VERIFY_CLIENT_CONTEXT = (
    b"\x20" * 64 + b"TLS 1.3, client CertificateVerify" + b"\x00"
)
