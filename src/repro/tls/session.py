"""Post-handshake secure channel: application data over the session keys.

The paper only measures the handshake, but its testbed (openssl
s_client/s_server) exchanges application data over the established
channel; this module provides that surface so the library is usable as an
actual TLS session, not just a handshake benchmark.

Both peers derive the same application traffic secrets from the handshake
(RFC 8446 §7.2); a :class:`SecureChannel` frames application bytes into
protected records in one direction and opens them in the other.
"""

from __future__ import annotations

from repro.tls.errors import DecodeError, TlsError
from repro.tls.keyschedule import traffic_keys
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    RecordProtection,
    decode_records,
)

_MAX_CHUNK = 2 ** 14 - 256


class SecureChannel:
    """One endpoint's view of the established application-data channel."""

    def __init__(self, send_secret: bytes, receive_secret: bytes):
        self._send = RecordProtection(traffic_keys(send_secret))
        self._receive = RecordProtection(traffic_keys(receive_secret))
        self._buffer = b""
        self.closed = False

    # -- constructors ------------------------------------------------------
    @classmethod
    def for_client(cls, tls_client) -> "SecureChannel":
        client_secret, server_secret = tls_client.application_secrets
        return cls(send_secret=client_secret, receive_secret=server_secret)

    @classmethod
    def for_server(cls, tls_server) -> "SecureChannel":
        client_secret, server_secret = tls_server.application_secrets
        return cls(send_secret=server_secret, receive_secret=client_secret)

    # -- sending -----------------------------------------------------------
    def send(self, data: bytes) -> bytes:
        """Protect application bytes; returns wire bytes for the transport."""
        if self.closed:
            raise TlsError("channel is closed")
        out = bytearray()
        for i in range(0, len(data), _MAX_CHUNK):
            record = self._send.encrypt(
                CONTENT_APPLICATION_DATA, data[i: i + _MAX_CHUNK])
            out.extend(record.encode())
        return bytes(out)

    def send_close(self) -> bytes:
        """A close_notify alert (1 byte level, 1 byte description 0)."""
        record = self._send.encrypt(CONTENT_ALERT, b"\x01\x00")
        self.closed = True
        return record.encode()

    # -- receiving -----------------------------------------------------------
    def receive(self, wire: bytes) -> bytes:
        """Open incoming records; returns the plaintext application bytes.

        Raises DecodeError on tampering, TlsError after close_notify.
        """
        self._buffer += wire
        records, self._buffer = decode_records(self._buffer)
        plaintext = bytearray()
        for record in records:
            content_type, data = self._receive.decrypt(record)
            if content_type == CONTENT_ALERT:
                if data[:2] == b"\x01\x00":
                    self.closed = True
                    continue
                raise TlsError(f"peer alert: {data.hex()}")
            if content_type != CONTENT_APPLICATION_DATA:
                raise DecodeError(
                    f"unexpected content type {content_type} on the app channel")
            if self.closed:
                raise TlsError("data received after close_notify")
            plaintext.extend(data)
        return bytes(plaintext)


def establish_channels(tls_client, tls_server) -> tuple[SecureChannel, SecureChannel]:
    """Channels for both ends of a completed handshake (testing helper)."""
    return SecureChannel.for_client(tls_client), SecureChannel.for_server(tls_server)
