"""Post-handshake secure channel: application data over the session keys.

The paper only measures the handshake, but its testbed (openssl
s_client/s_server) exchanges application data over the established
channel; this module provides that surface so the library is usable as an
actual TLS session, not just a handshake benchmark.

Both peers derive the same application traffic secrets from the handshake
(RFC 8446 §7.2); a :class:`SecureChannel` frames application bytes into
protected records in one direction and opens them in the other. The
channel also speaks the two post-handshake messages that ride on the
application keys: KeyUpdate (§4.6.3) rotates its traffic secrets in
either direction, and NewSessionTicket messages are handed to the
owning client's session cache.
"""

from __future__ import annotations

from repro.tls import messages as msg
from repro.tls.errors import ALERT_CLOSE_NOTIFY, DecodeError, PeerAlert, TlsError
from repro.tls.keyschedule import KeySchedule, traffic_keys
from repro.tls.records import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    RecordProtection,
    decode_alert,
    decode_records,
)

_MAX_CHUNK = 2 ** 14 - 256


class SecureChannel:
    """One endpoint's view of the established application-data channel."""

    def __init__(self, send_secret: bytes, receive_secret: bytes, *,
                 send_protection: RecordProtection | None = None,
                 receive_protection: RecordProtection | None = None,
                 ticket_sink=None):
        self._send_secret = send_secret
        self._receive_secret = receive_secret
        self._send = send_protection or RecordProtection(traffic_keys(send_secret))
        self._receive = (receive_protection
                         or RecordProtection(traffic_keys(receive_secret)))
        self._ticket_sink = ticket_sink
        self._buffer = b""
        self._hs_stream = b""
        self.pending_out = b""       # auto-responses (KeyUpdate replies)
        self.send_generation = 0     # KeyUpdate epochs on each direction
        self.receive_generation = 0
        self.closed = False

    # -- constructors ------------------------------------------------------
    #
    # When the endpoint already exchanged post-handshake messages
    # (NewSessionTicket) its application-key record protections exist with
    # advanced sequence numbers; the channel must adopt them rather than
    # restart at zero (nonce reuse). Otherwise fresh protections are built.
    @classmethod
    def for_client(cls, tls_client) -> "SecureChannel":
        client_secret, server_secret = tls_client.application_secrets
        return cls(
            send_secret=client_secret,
            receive_secret=server_secret,
            send_protection=tls_client._app_send_protection,
            receive_protection=tls_client._app_recv_protection,
            ticket_sink=tls_client._process_session_ticket,
        )

    @classmethod
    def for_server(cls, tls_server) -> "SecureChannel":
        client_secret, server_secret = tls_server.application_secrets
        return cls(
            send_secret=server_secret,
            receive_secret=client_secret,
            send_protection=tls_server._app_send_protection,
            receive_protection=tls_server._app_recv_protection,
        )

    # -- sending -----------------------------------------------------------
    def send(self, data: bytes) -> bytes:
        """Protect application bytes; returns wire bytes for the transport."""
        if self.closed:
            raise TlsError("channel is closed")
        out = bytearray()
        for i in range(0, len(data), _MAX_CHUNK):
            record = self._send.encrypt(
                CONTENT_APPLICATION_DATA, data[i: i + _MAX_CHUNK])
            out.extend(record.encode())
        return bytes(out)

    def send_close(self) -> bytes:
        """A close_notify alert (1 byte level, 1 byte description 0)."""
        record = self._send.encrypt(CONTENT_ALERT, b"\x01\x00")
        self.closed = True
        return record.encode()

    def initiate_key_update(self, request_update: bool = False) -> bytes:
        """Rotate our send keys; returns the KeyUpdate wire bytes.

        With ``request_update`` the peer is asked to rotate its own send
        direction too; its reply lands in our ``pending_out`` handling on
        receive.
        """
        if self.closed:
            raise TlsError("channel is closed")
        record = self._send.encrypt(
            CONTENT_HANDSHAKE, msg.encode_key_update(request_update))
        wire = record.encode()
        self._send_secret = KeySchedule.next_traffic_secret(self._send_secret)
        self._send = RecordProtection(traffic_keys(self._send_secret))
        self.send_generation += 1
        return wire

    # -- receiving -----------------------------------------------------------
    def receive(self, wire: bytes) -> bytes:
        """Open incoming records; returns the plaintext application bytes.

        Raises DecodeError on tampering or malformed alerts, TlsError on
        any record following a close_notify. KeyUpdate requests queue an
        automatic reply in :attr:`pending_out`; the caller flushes it to
        the transport.
        """
        self._buffer += wire
        records, self._buffer = decode_records(self._buffer)
        plaintext = bytearray()
        for record in records:
            content_type, data = self._receive.decrypt(record)
            if content_type == CONTENT_ALERT:
                # decode_alert raises DecodeError on short/oversized payloads
                # instead of misreading garbage as a peer alert
                _level, description = decode_alert(data)
                if description == ALERT_CLOSE_NOTIFY:
                    self.closed = True
                    continue
                raise PeerAlert(description)
            if self.closed:
                raise TlsError("data received after close_notify")
            if content_type == CONTENT_HANDSHAKE:
                self._handle_post_handshake(data)
                continue
            if content_type != CONTENT_APPLICATION_DATA:
                raise DecodeError(
                    f"unexpected content type {content_type} on the app channel")
            plaintext.extend(data)
        return bytes(plaintext)

    def _handle_post_handshake(self, data: bytes) -> None:
        self._hs_stream += data
        msgs, self._hs_stream = msg.iter_handshake_messages(self._hs_stream)
        for msg_type, body, _raw in msgs:
            if msg_type == msg.HT_KEY_UPDATE:
                requested = msg.decode_key_update(body)
                self._receive_secret = KeySchedule.next_traffic_secret(
                    self._receive_secret)
                self._receive = RecordProtection(traffic_keys(self._receive_secret))
                self.receive_generation += 1
                if requested:
                    self.pending_out += self.initiate_key_update(False)
            elif msg_type == msg.HT_NEW_SESSION_TICKET and self._ticket_sink:
                self._ticket_sink(body, _raw)
            elif msg_type == msg.HT_NEW_SESSION_TICKET:
                # a client with no session cache ignores tickets (§4.6.1)
                continue
            else:
                raise DecodeError(
                    f"unexpected post-handshake message type {msg_type}")

    def take_pending(self) -> bytes:
        """Drain queued auto-responses (KeyUpdate replies) for the wire."""
        out, self.pending_out = self.pending_out, b""
        return out


def establish_channels(tls_client, tls_server) -> tuple[SecureChannel, SecureChannel]:
    """Channels for both ends of a completed handshake (testing helper)."""
    return SecureChannel.for_client(tls_client), SecureChannel.for_server(tls_server)
