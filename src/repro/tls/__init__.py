"""A from-scratch sans-io TLS 1.3 stack with pluggable (PQ) KEMs and SAs.

Mirrors the paper's OQS-OpenSSL: 1-RTT handshakes, KEM-style key shares
(classical, post-quantum, and hybrid), PQ certificate chains, and — key to
the paper's §5.2 — both OpenSSL message-buffering behaviours (the default
4096-byte buffer and the patched immediate-push variant) as a switchable
server flush policy.
"""

from repro.tls.client import TlsClient
from repro.tls.server import BufferPolicy, TlsServer

__all__ = ["TlsClient", "TlsServer", "BufferPolicy"]
