"""TLS error types."""


class TlsError(Exception):
    """Base class for handshake and record failures."""


class DecodeError(TlsError):
    """A peer message could not be parsed."""


class HandshakeFailure(TlsError):
    """Negotiation or verification failed."""


class UnexpectedMessage(TlsError):
    """A message arrived in the wrong state."""
