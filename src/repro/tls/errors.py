"""TLS error types and the RFC 8446 §6 alert descriptions they map to.

Each error class carries the alert description its originating endpoint
puts on the wire when aborting (RFC 8446 §6.2: every handshake failure is
fatal). The reverse mapping (:func:`alert_name`) labels received alerts in
outcomes and metrics.
"""

# RFC 8446 §6 AlertDescription values (the subset this stack can emit).
ALERT_CLOSE_NOTIFY = 0
ALERT_UNEXPECTED_MESSAGE = 10
ALERT_BAD_RECORD_MAC = 20
ALERT_HANDSHAKE_FAILURE = 40
ALERT_DECODE_ERROR = 50
ALERT_ILLEGAL_PARAMETER = 47
ALERT_INTERNAL_ERROR = 80
ALERT_CERTIFICATE_REQUIRED = 116

_ALERT_NAMES = {
    ALERT_CLOSE_NOTIFY: "close_notify",
    ALERT_UNEXPECTED_MESSAGE: "unexpected_message",
    ALERT_BAD_RECORD_MAC: "bad_record_mac",
    ALERT_HANDSHAKE_FAILURE: "handshake_failure",
    ALERT_ILLEGAL_PARAMETER: "illegal_parameter",
    ALERT_DECODE_ERROR: "decode_error",
    ALERT_INTERNAL_ERROR: "internal_error",
    ALERT_CERTIFICATE_REQUIRED: "certificate_required",
}


def alert_name(code: int) -> str:
    """Human-readable RFC name for an alert description code."""
    return _ALERT_NAMES.get(code, f"alert_{code}")


class TlsError(Exception):
    """Base class for handshake and record failures."""

    alert = ALERT_INTERNAL_ERROR  # description the aborting side sends


class DecodeError(TlsError):
    """A peer message could not be parsed."""

    alert = ALERT_DECODE_ERROR


class BadRecordMac(TlsError):
    """AEAD deprotection failed (tampered or corrupted ciphertext)."""

    alert = ALERT_BAD_RECORD_MAC


class HandshakeFailure(TlsError):
    """Negotiation or verification failed."""

    alert = ALERT_HANDSHAKE_FAILURE


class UnexpectedMessage(TlsError):
    """A message arrived in the wrong state."""

    alert = ALERT_UNEXPECTED_MESSAGE


class IllegalParameter(TlsError):
    """A field was legal to parse but violates the negotiation rules."""

    alert = ALERT_ILLEGAL_PARAMETER


class CertificateRequired(TlsError):
    """The server required client authentication and none was offered."""

    alert = ALERT_CERTIFICATE_REQUIRED


class PeerAlert(TlsError):
    """The remote endpoint aborted the handshake with a fatal alert."""

    def __init__(self, code: int):
        super().__init__(f"peer sent fatal alert: {alert_name(code)} ({code})")
        self.code = code
