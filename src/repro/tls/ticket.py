"""Session tickets and the stores that redeem them (RFC 8446 §4.6.1).

The server mints an opaque ticket identity per NewSessionTicket and
remembers the associated resumption PSK in a :class:`ServerSessionStore`
(the "session cache" flavour of ticket handling: deterministic, no
self-encryption, and the lookup failure path — an unknown identity —
falls back to a full handshake exactly like a cache miss would).

The client keeps redeemable tickets in a :class:`SessionCache` keyed by
server name, pops one to offer resumption, and re-fills it from
post-handshake NewSessionTicket messages.

Both sides derive the per-ticket PSK themselves from their resumption
master secret and the ticket nonce (``KeySchedule.ticket_psk``), so no
secret ever rides the wire.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SessionTicket:
    """A redeemable ticket as held by the client."""

    identity: bytes          # opaque ticket bytes offered in pre_shared_key
    psk: bytes               # HKDF-Expand-Label(res_master, "resumption", nonce)
    kem: str                 # negotiated group of the original session
    sig: str                 # server signature algorithm of the original session
    age_add: int
    lifetime: int

    @property
    def obfuscated_age(self) -> int:
        # The simulated clock starts every connection at zero, so the
        # ticket age is always 0 and the obfuscated value is just age_add.
        return self.age_add & 0xFFFFFFFF


@dataclass(frozen=True)
class ResumptionState:
    """What the server remembers about a minted ticket."""

    psk: bytes
    kem: str
    sig: str


class ServerSessionStore:
    """Server-side ticket registry: identity -> resumption state."""

    def __init__(self):
        self._tickets: dict[bytes, ResumptionState] = {}

    def __len__(self) -> int:
        return len(self._tickets)

    def put(self, identity: bytes, state: ResumptionState) -> None:
        self._tickets[identity] = state

    def redeem(self, identity: bytes) -> ResumptionState | None:
        """Single-use lookup: tickets must not be replayable."""
        return self._tickets.pop(identity, None)


class SessionCache:
    """Client-side ticket cache keyed by server name."""

    def __init__(self):
        self._by_server: dict[str, list[SessionTicket]] = {}

    def __len__(self) -> int:
        return sum(len(tickets) for tickets in self._by_server.values())

    def put(self, server_name: str, ticket: SessionTicket) -> None:
        self._by_server.setdefault(server_name, []).append(ticket)

    def peek(self, server_name: str) -> SessionTicket | None:
        tickets = self._by_server.get(server_name)
        return tickets[0] if tickets else None

    def take(self, server_name: str) -> SessionTicket | None:
        """Pop the oldest ticket for this server (tickets are single-use)."""
        tickets = self._by_server.get(server_name)
        if not tickets:
            return None
        ticket = tickets.pop(0)
        if not tickets:
            del self._by_server[server_name]
        return ticket
