"""Session-lifecycle scenarios: full, resume, mtls, hrr.

The paper measures one handshake shape — a full ECDHE handshake with
server-only authentication. Real deployments run a *mix* of session
shapes, and the post-quantum cost of each differs sharply: PSK
resumption removes the certificate chain (the dominant PQ bytes) from
the wire, mutual TLS doubles the signature traffic, and a
HelloRetryRequest adds a round trip before any cryptography helps.
This registry names those shapes once so the recording layer
(:mod:`repro.netsim.scripted`), the experiment configs, and the traffic
engine all agree on what ``--scenario resume`` means.

The module also declares the scenarios' *expected wire deltas* — how
many bytes each shape adds to the ClientHello/ServerHello relative to
``full`` — computed from the message encoders and pinned as constants.
``pqtls-lint``'s WIRE005 audit recomputes the deltas and flags drift, so
a change to the PSK extension layout cannot silently skew the
per-scenario byte accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.tls import messages as msg
from repro.tls.actions import Send
from repro.tls.errors import HandshakeFailure
from repro.tls.server import BufferPolicy, TlsServer
from repro.tls.client import TlsClient
from repro.tls.ticket import ServerSessionStore, SessionCache

DEFAULT_SESSION = "full"

# record framing added per encrypted record: 5B header + 1B inner
# content type + 16B AEAD tag (records.py)
ENCRYPTED_RECORD_OVERHEAD = 22

# Declared wire deltas vs the full handshake, audited by WIRE005:
# the resumed ClientHello grows by the psk_key_exchange_modes extension
# plus a pre_shared_key extension carrying one 32-byte identity and one
# 32-byte binder; the resumed ServerHello grows by the empty-bodied
# pre_shared_key selection extension.
CLIENT_HELLO_RESUME_DELTA = 85
SERVER_HELLO_RESUME_DELTA = 6


@dataclass(frozen=True)
class SessionScenario:
    """One named handshake shape."""

    name: str
    resumption: bool = False    # redeem a NewSessionTicket PSK (ECDHE+PSK)
    client_auth: bool = False   # CertificateRequest + client chain
    hello_retry: bool = False   # first CH omits the key share
    description: str = ""


SESSION_SCENARIOS: dict[str, SessionScenario] = {
    "full": SessionScenario(
        name="full",
        description="full ECDHE handshake, server-only authentication "
                    "(the paper's testbed)"),
    "resume": SessionScenario(
        name="resume",
        resumption=True,
        description="PSK resumption (psk_dhe_ke): a prior session's "
                    "NewSessionTicket replaces the certificate chain"),
    "mtls": SessionScenario(
        name="mtls",
        client_auth=True,
        description="mutual TLS: CertificateRequest plus a client "
                    "certificate chain and CertificateVerify"),
    "hrr": SessionScenario(
        name="hrr",
        hello_retry=True,
        description="HelloRetryRequest: the first ClientHello offers no "
                    "key share, adding a round trip"),
}


def session_scenario(name: str) -> SessionScenario:
    try:
        return SESSION_SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown session scenario {name!r}; "
                       f"known: {sorted(SESSION_SCENARIOS)}") from None


def _collect(actions) -> bytes:
    return b"".join(a.data for a in actions if isinstance(a, Send))


def _pump(client: TlsClient, server: TlsServer, rounds: int = 8) -> None:
    """Lockstep both endpoints on a perfect link until quiescent."""
    to_server = _collect(client.start())
    to_client = b""
    for _ in range(rounds):
        if to_server:
            to_client = _collect(server.receive(to_server))
            to_server = b""
        if to_client:
            to_server = _collect(client.receive(to_client))
            to_client = b""
        if not to_server and not to_client:
            break
    for endpoint in (client, server):
        if endpoint.failed:
            raise HandshakeFailure(
                f"session-scenario pump aborted: {endpoint.failure}"
            ) from endpoint.failure
    if not (client.handshake_complete and server.handshake_complete):
        raise HandshakeFailure("session-scenario pump did not complete")


def build_session_endpoints(
    session: str, kem_name: str, sig_name: str, certificate, server_secret,
    trust_store, drbg: Drbg, *,
    policy: BufferPolicy = BufferPolicy.OPTIMIZED,
    client_credentials=None,
    server_name: str = "server.repro.test",
) -> tuple[TlsClient, TlsServer]:
    """Fresh endpoints ready to run one handshake of the given shape.

    The final endpoints always fork the DRBG as ``client``/``server`` —
    the exact labels the pre-scenario recorder used — so ``full``
    endpoints are byte-identical to the seed's. The ``resume`` shape
    runs a *mint* handshake first (on ``mint:*`` forks) to obtain a
    ticket, then returns the redeeming pair; the mint server issues
    exactly one ticket and the redeeming server issues none, so the
    recorded wire delta vs ``full`` is purely the certificate flight.
    """
    scenario = session_scenario(session)
    client_kwargs: dict = {}
    server_kwargs: dict = {"policy": policy}
    if scenario.resumption:
        cache = SessionCache()
        store = ServerSessionStore()
        mint_client = TlsClient(kem_name, sig_name, trust_store,
                                drbg.fork("mint:client"),
                                server_name=server_name, session_cache=cache)
        mint_server = TlsServer(kem_name, sig_name, certificate, server_secret,
                                drbg.fork("mint:server"), policy=policy,
                                session_store=store, issue_tickets=1)
        _pump(mint_client, mint_server)  # pqtls: allow[LEAK004] — the failure message carries alert names, not the secret key (object-granularity taint over the endpoint)
        ticket = cache.take(server_name)
        if ticket is None:
            raise HandshakeFailure("mint handshake issued no ticket")
        client_kwargs["ticket"] = ticket
        server_kwargs["session_store"] = store
    if scenario.client_auth:
        if client_credentials is None:
            raise ValueError("session 'mtls' needs client_credentials "
                             "(chain, secret key, trust store)")
        chain, client_sk, client_trust = client_credentials
        client_kwargs["credentials"] = (chain, client_sk)
        server_kwargs["client_auth"] = client_trust
    if scenario.hello_retry:
        client_kwargs["offer_share"] = False
    client = TlsClient(kem_name, sig_name, trust_store, drbg.fork("client"),
                       server_name=server_name, **client_kwargs)
    server = TlsServer(kem_name, sig_name, certificate, server_secret,
                       drbg.fork("server"), **server_kwargs)
    return client, server


# -- wire-delta audit (WIRE005) -------------------------------------------

def _hello_pair(psk: bool) -> tuple[int, int]:
    """Encoded CH/SH lengths for a synthetic handshake, with/without PSK."""
    hello = msg.ClientHello(
        random=bytes(32), session_id=bytes(32),
        group_name_to_share={"synthetic": bytes(32)},
        group_ids=[0x0100], key_shares=[(0x0100, bytes(32))],
        sig_scheme_ids=[0x0807],
        psk_identity=bytes(32) if psk else None,
        psk_obfuscated_age=0,
        psk_binder=bytes(32) if psk else b"",
    )
    server_hello = msg.ServerHello(
        random=bytes(32), session_id=bytes(32), group_id=0x0100,
        key_share=bytes(32), psk_selected=psk,
    )
    return len(hello.encode()), len(server_hello.encode())


def computed_wire_deltas() -> dict[str, int]:
    """Recompute the declared deltas from the live message encoders."""
    ch_full, sh_full = _hello_pair(psk=False)
    ch_resume, sh_resume = _hello_pair(psk=True)
    return {
        "client_hello_resume_delta": ch_resume - ch_full,
        "server_hello_resume_delta": sh_resume - sh_full,
    }


def declared_wire_deltas() -> dict[str, int]:
    return {
        "client_hello_resume_delta": CLIENT_HELLO_RESUME_DELTA,
        "server_hello_resume_delta": SERVER_HELLO_RESUME_DELTA,
    }
