"""x509-lite certificates with real signatures and a minimal PKI.

A compact TLV encoding stands in for DER (the paper's sizes are dominated
by keys and signatures, not ASN.1 overhead; we add a fixed metadata block
comparable to a typical certificate's name/validity/extension footprint).
The default trust model matches the paper's testbed: the server presents
one leaf certificate signed by a CA whose certificate the client holds
out-of-band, so only the leaf travels on the wire.

Real deployments rarely look like that, so :data:`CHAIN_PROFILES` also
models leaf+intermediate chains and intermediate-CA suppression (the
client pre-caches the intermediate, as in CDN/"abridged certificates"
deployments), with :data:`CHAIN_DISTRIBUTIONS` giving weights over the
profiles in the spirit of the post-quantum TTFB study (PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_sig
from repro.pqc.sig import SignatureScheme
from repro.tls.errors import DecodeError, HandshakeFailure

# Typical X.509 envelope overhead (names, validity, SANs, key usage, OIDs)
_METADATA_PAD = 120


def _vec(data: bytes, length_bytes: int = 2) -> bytes:
    return len(data).to_bytes(length_bytes, "big") + data


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def bytes(self, count: int) -> bytes:
        if len(self._data) - self._pos < count:
            raise DecodeError("certificate truncated")
        out = self._data[self._pos: self._pos + count]
        self._pos += count
        return out

    def vector(self, length_bytes: int = 2) -> bytes:
        return self.bytes(int.from_bytes(self.bytes(length_bytes), "big"))

    def remaining(self) -> int:
        return len(self._data) - self._pos


@dataclass(frozen=True)
class Certificate:
    subject: str
    issuer: str
    algorithm: str        # signature algorithm of the *subject's* key
    public_key: bytes
    issuer_algorithm: str  # algorithm of the CA signature below
    signature: bytes

    def tbs(self) -> bytes:
        """The to-be-signed portion."""
        return (
            _vec(self.subject.encode())
            + _vec(self.issuer.encode())
            + _vec(self.algorithm.encode(), 1)
            + _vec(self.public_key, 3)
            + _vec(self.issuer_algorithm.encode(), 1)
            + bytes(_METADATA_PAD)
        )

    def encode(self) -> bytes:
        return self.tbs() + _vec(self.signature, 3)

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        reader = _Reader(data)
        subject = reader.vector().decode()
        issuer = reader.vector().decode()
        algorithm = reader.vector(1).decode()
        public_key = reader.vector(3)
        issuer_algorithm = reader.vector(1).decode()
        reader.bytes(_METADATA_PAD)
        signature = reader.vector(3)
        if reader.remaining():
            raise DecodeError("trailing bytes after certificate")
        return cls(
            subject=subject,
            issuer=issuer,
            algorithm=algorithm,
            public_key=public_key,
            issuer_algorithm=issuer_algorithm,
            signature=signature,
        )


@dataclass
class CertificateAuthority:
    """A root CA issuing leaf certificates with a chosen algorithm."""

    name: str
    algorithm: str
    public_key: bytes
    secret_key: bytes

    @classmethod
    def create(cls, algorithm: str, drbg: Drbg, name: str = "repro-root-ca") -> "CertificateAuthority":
        scheme = get_sig(algorithm)
        public_key, secret_key = scheme.keygen(drbg)
        return cls(name=name, algorithm=algorithm, public_key=public_key,
                   secret_key=secret_key)

    def issue(self, subject: str, subject_algorithm: str, subject_public_key: bytes,
              drbg: Drbg) -> Certificate:
        scheme = get_sig(self.algorithm)
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            algorithm=subject_algorithm,
            public_key=subject_public_key,
            issuer_algorithm=self.algorithm,
            signature=b"",
        )
        signature = scheme.sign(self.secret_key, cert.tbs(), drbg)
        return Certificate(
            subject=cert.subject,
            issuer=cert.issuer,
            algorithm=cert.algorithm,
            public_key=cert.public_key,
            issuer_algorithm=cert.issuer_algorithm,
            signature=signature,
        )


@dataclass(frozen=True)
class TrustStore:
    """Client-side roots (and pre-cached intermediates) by issuer name.

    ``roots`` maps issuer name -> (algorithm, public key). ``cached``
    holds intermediate CAs the client already knows (intermediate-CA
    suppression): a chain may terminate at one of them without the
    intermediate certificate ever travelling on the wire.
    """

    roots: dict
    cached: dict = field(default_factory=dict)

    def verify_chain(self, chain: list[Certificate], expected_subject: str | None = None) -> Certificate:
        """Verify a (leaf-only or leaf..intermediate) chain; return the leaf."""
        if not chain:
            raise HandshakeFailure("empty certificate chain")
        leaf = chain[0]
        if expected_subject is not None and leaf.subject != expected_subject:
            raise HandshakeFailure(
                f"certificate subject {leaf.subject!r} != expected {expected_subject!r}")
        current = leaf
        for issuer_cert in chain[1:]:
            scheme = get_sig(current.issuer_algorithm)
            if not scheme.verify(issuer_cert.public_key, current.tbs(), current.signature):
                raise HandshakeFailure(f"bad signature on {current.subject!r}")
            current = issuer_cert
        anchor = self.roots.get(current.issuer)
        if anchor is None:
            # suppressed intermediate: validated out-of-band when cached
            anchor = self.cached.get(current.issuer)
        if anchor is None:
            raise HandshakeFailure(f"unknown issuer {current.issuer!r}")
        anchor_algorithm, anchor_key = anchor
        if anchor_algorithm != current.issuer_algorithm:
            raise HandshakeFailure("issuer algorithm mismatch")
        scheme = get_sig(current.issuer_algorithm)
        if not scheme.verify(anchor_key, current.tbs(), current.signature):
            raise HandshakeFailure(f"bad issuer signature on {current.subject!r}")
        return leaf


def make_server_credentials(algorithm: str, drbg: Drbg, subject: str = "server.repro.test"):
    """CA + leaf for one signature algorithm.

    Returns (certificate, server secret key, trust store) — the shape every
    experiment needs.
    """
    scheme: SignatureScheme = get_sig(algorithm)
    ca = CertificateAuthority.create(algorithm, drbg)
    server_pk, server_sk = scheme.keygen(drbg)
    cert = ca.issue(subject, algorithm, server_pk, drbg)
    store = TrustStore(roots={ca.name: (ca.algorithm, ca.public_key)})
    return cert, server_sk, store


@dataclass(frozen=True)
class ChainProfile:
    """How a server's certificate chain is built and presented."""

    name: str
    intermediates: int       # CAs between root and leaf
    suppressed: bool = False  # leaf's issuer pre-cached client-side, off-wire


# The deployment shapes studied by the post-quantum TTFB paper: direct
# root-signed leaves (the source paper's testbed), one or two
# intermediates (the common WebPKI shapes), and suppression.
CHAIN_PROFILES = {
    "direct": ChainProfile(name="direct", intermediates=0),
    "intermediate": ChainProfile(name="intermediate", intermediates=1),
    "long": ChainProfile(name="long", intermediates=2),
    "suppressed": ChainProfile(name="suppressed", intermediates=1, suppressed=True),
}

# Weights over chain profiles, roughly: most WebPKI chains carry one
# intermediate, a tail carries two, suppression is an emerging deployment.
CHAIN_DISTRIBUTIONS = {
    "paper": (("direct", 1.0),),
    "web": (("intermediate", 0.60), ("long", 0.20),
            ("direct", 0.15), ("suppressed", 0.05)),
}


def pick_chain_profile(unit_draw: float, distribution: str = "web") -> str:
    """Map a unit-interval draw to a chain profile name (deterministic)."""
    weights = CHAIN_DISTRIBUTIONS[distribution]
    acc = 0.0
    for name, weight in weights:
        acc += weight
        if unit_draw < acc:
            return name
    return weights[-1][0]


def make_chain_credentials(algorithm: str, drbg: Drbg, chain: str = "direct",
                           subject: str = "server.repro.test"):
    """A full PKI for one chain profile.

    Returns ``(wire_chain, server secret key, trust store)`` where
    ``wire_chain`` is the leaf-first certificate list the server puts in
    its Certificate message. For the ``suppressed`` profile the
    intermediate is absent from the wire chain but present in the trust
    store's cache.
    """
    profile = CHAIN_PROFILES[chain]
    scheme: SignatureScheme = get_sig(algorithm)
    root = CertificateAuthority.create(algorithm, drbg)
    issuer = root
    intermediate_certs: list[Certificate] = []
    for depth in range(profile.intermediates):
        ica_pk, ica_sk = scheme.keygen(drbg)
        name = f"repro-ica-{depth + 1}"
        intermediate_certs.append(issuer.issue(name, algorithm, ica_pk, drbg))
        issuer = CertificateAuthority(
            name=name, algorithm=algorithm, public_key=ica_pk, secret_key=ica_sk
        )
    server_pk, server_sk = scheme.keygen(drbg)
    leaf = issuer.issue(subject, algorithm, server_pk, drbg)
    wire_chain = [leaf] + list(reversed(intermediate_certs))
    cached = {}
    if profile.suppressed:
        wire_chain = [leaf]
        cached[issuer.name] = (issuer.algorithm, issuer.public_key)
    store = TrustStore(roots={root.name: (root.algorithm, root.public_key)},
                       cached=cached)
    return wire_chain, server_sk, store


def make_client_credentials(algorithm: str, drbg: Drbg,
                            subject: str = "client.repro.test"):
    """Leaf + key for mutual TLS, and the store the *server* verifies with."""
    scheme: SignatureScheme = get_sig(algorithm)
    ca = CertificateAuthority.create(algorithm, drbg, name="repro-client-ca")
    client_pk, client_sk = scheme.keygen(drbg)
    cert = ca.issue(subject, algorithm, client_pk, drbg)
    store = TrustStore(roots={ca.name: (ca.algorithm, ca.public_key)})
    return [cert], client_sk, store
