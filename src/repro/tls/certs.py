"""x509-lite certificates with real signatures and a minimal PKI.

A compact TLV encoding stands in for DER (the paper's sizes are dominated
by keys and signatures, not ASN.1 overhead; we add a fixed metadata block
comparable to a typical certificate's name/validity/extension footprint).
The trust model matches the paper's testbed: the server presents one leaf
certificate signed by a CA whose certificate the client holds out-of-band,
so only the leaf travels on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.pqc.registry import get_sig
from repro.pqc.sig import SignatureScheme
from repro.tls.errors import DecodeError, HandshakeFailure

# Typical X.509 envelope overhead (names, validity, SANs, key usage, OIDs)
_METADATA_PAD = 120


def _vec(data: bytes, length_bytes: int = 2) -> bytes:
    return len(data).to_bytes(length_bytes, "big") + data


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def bytes(self, count: int) -> bytes:
        if len(self._data) - self._pos < count:
            raise DecodeError("certificate truncated")
        out = self._data[self._pos: self._pos + count]
        self._pos += count
        return out

    def vector(self, length_bytes: int = 2) -> bytes:
        return self.bytes(int.from_bytes(self.bytes(length_bytes), "big"))

    def remaining(self) -> int:
        return len(self._data) - self._pos


@dataclass(frozen=True)
class Certificate:
    subject: str
    issuer: str
    algorithm: str        # signature algorithm of the *subject's* key
    public_key: bytes
    issuer_algorithm: str  # algorithm of the CA signature below
    signature: bytes

    def tbs(self) -> bytes:
        """The to-be-signed portion."""
        return (
            _vec(self.subject.encode())
            + _vec(self.issuer.encode())
            + _vec(self.algorithm.encode(), 1)
            + _vec(self.public_key, 3)
            + _vec(self.issuer_algorithm.encode(), 1)
            + bytes(_METADATA_PAD)
        )

    def encode(self) -> bytes:
        return self.tbs() + _vec(self.signature, 3)

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        reader = _Reader(data)
        subject = reader.vector().decode()
        issuer = reader.vector().decode()
        algorithm = reader.vector(1).decode()
        public_key = reader.vector(3)
        issuer_algorithm = reader.vector(1).decode()
        reader.bytes(_METADATA_PAD)
        signature = reader.vector(3)
        if reader.remaining():
            raise DecodeError("trailing bytes after certificate")
        return cls(
            subject=subject,
            issuer=issuer,
            algorithm=algorithm,
            public_key=public_key,
            issuer_algorithm=issuer_algorithm,
            signature=signature,
        )


@dataclass
class CertificateAuthority:
    """A root CA issuing leaf certificates with a chosen algorithm."""

    name: str
    algorithm: str
    public_key: bytes
    secret_key: bytes

    @classmethod
    def create(cls, algorithm: str, drbg: Drbg, name: str = "repro-root-ca") -> "CertificateAuthority":
        scheme = get_sig(algorithm)
        public_key, secret_key = scheme.keygen(drbg)
        return cls(name=name, algorithm=algorithm, public_key=public_key,
                   secret_key=secret_key)

    def issue(self, subject: str, subject_algorithm: str, subject_public_key: bytes,
              drbg: Drbg) -> Certificate:
        scheme = get_sig(self.algorithm)
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            algorithm=subject_algorithm,
            public_key=subject_public_key,
            issuer_algorithm=self.algorithm,
            signature=b"",
        )
        signature = scheme.sign(self.secret_key, cert.tbs(), drbg)
        return Certificate(
            subject=cert.subject,
            issuer=cert.issuer,
            algorithm=cert.algorithm,
            public_key=cert.public_key,
            issuer_algorithm=cert.issuer_algorithm,
            signature=signature,
        )


@dataclass(frozen=True)
class TrustStore:
    """Client-side roots: issuer name -> (algorithm, public key)."""

    roots: dict

    def verify_chain(self, chain: list[Certificate], expected_subject: str | None = None) -> Certificate:
        """Verify a (leaf-only or leaf..intermediate) chain; return the leaf."""
        if not chain:
            raise HandshakeFailure("empty certificate chain")
        leaf = chain[0]
        if expected_subject is not None and leaf.subject != expected_subject:
            raise HandshakeFailure(
                f"certificate subject {leaf.subject!r} != expected {expected_subject!r}")
        current = leaf
        for issuer_cert in chain[1:]:
            scheme = get_sig(current.issuer_algorithm)
            if not scheme.verify(issuer_cert.public_key, current.tbs(), current.signature):
                raise HandshakeFailure(f"bad signature on {current.subject!r}")
            current = issuer_cert
        root = self.roots.get(current.issuer)
        if root is None:
            raise HandshakeFailure(f"unknown issuer {current.issuer!r}")
        root_algorithm, root_key = root
        if root_algorithm != current.issuer_algorithm:
            raise HandshakeFailure("issuer algorithm mismatch")
        scheme = get_sig(current.issuer_algorithm)
        if not scheme.verify(root_key, current.tbs(), current.signature):
            raise HandshakeFailure(f"bad root signature on {current.subject!r}")
        return leaf


def make_server_credentials(algorithm: str, drbg: Drbg, subject: str = "server.repro.test"):
    """CA + leaf for one signature algorithm.

    Returns (certificate, server secret key, trust store) — the shape every
    experiment needs.
    """
    scheme: SignatureScheme = get_sig(algorithm)
    ca = CertificateAuthority.create(algorithm, drbg)
    server_pk, server_sk = scheme.keygen(drbg)
    cert = ca.issue(subject, algorithm, server_pk, drbg)
    store = TrustStore(roots={ca.name: (ca.algorithm, ca.public_key)})
    return cert, server_sk, store
