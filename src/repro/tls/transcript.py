"""Running transcript hash over handshake messages (SHA-256 suite)."""

from __future__ import annotations

import hashlib


class TranscriptHash:
    def __init__(self):
        self._hash = hashlib.sha256()
        self.bytes_hashed = 0

    def update(self, handshake_bytes: bytes) -> None:
        self._hash.update(handshake_bytes)
        self.bytes_hashed += len(handshake_bytes)

    def digest(self) -> bytes:
        return self._hash.copy().digest()
