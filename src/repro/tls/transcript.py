"""Running transcript hash over handshake messages (SHA-256 suite)."""

from __future__ import annotations

import hashlib


class TranscriptHash:
    def __init__(self):
        self._hash = hashlib.sha256()
        self.bytes_hashed = 0

    def update(self, handshake_bytes: bytes) -> None:
        self._hash.update(handshake_bytes)
        self.bytes_hashed += len(handshake_bytes)

    def restart(self, synthetic_message: bytes) -> None:
        """Replace the transcript so far with a synthetic message.

        HelloRetryRequest rewrites the transcript to
        ``message_hash(CH1) || HRR || ...`` (RFC 8446 §4.4.1); the caller
        passes the already-framed message_hash message.
        """
        self._hash = hashlib.sha256()
        self.bytes_hashed = 0
        self.update(synthetic_message)

    def digest(self) -> bytes:
        return self._hash.copy().digest()
