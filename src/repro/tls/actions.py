"""Actions emitted by the sans-io state machines.

The simulator consumes these in order: ``Compute`` advances the host's
simulated CPU by the cost model's price for the listed operations, ``Send``
hands bytes to the transport as one TCP push. Pure-library users can
ignore ``Compute`` and concatenate ``Send`` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoOp:
    """One unit of work the white-box profiler can attribute.

    op: e.g. ``kem_encaps``, ``sig_sign``, ``record_crypt``, ``tls_frame``.
    algorithm: algorithm name for keyed ops, "" for generic work.
    size: byte count for size-proportional ops (records, framing).
    detail: TLS-message context for tracing ("SH", "Cert", ...); never
        priced by the cost model, so it cannot perturb simulated time.
    """

    op: str
    algorithm: str = ""
    size: int = 0
    detail: str = ""


@dataclass(frozen=True)
class Compute:
    ops: tuple[CryptoOp, ...]


@dataclass(frozen=True)
class Send:
    data: bytes
    label: str  # e.g. "ClientHello", "SH", "EE+Cert", "CV+Fin", "CCS+Fin"


Action = Compute | Send


def compute(*ops: CryptoOp) -> Compute:
    return Compute(tuple(ops))
