"""Connection-abort machinery shared by the sans-io client and server.

RFC 8446 §6.2: every handshake-time error is fatal. An endpoint that hits
one sends a single alert record, enters a terminal FAILED state, and
ignores everything the peer says afterwards; an endpoint that *receives*
a fatal alert closes without echoing one back. Failures are recorded on
the endpoint (``failed`` / ``failure`` / ``alert_sent`` /
``alert_received``) instead of unwinding through the event loop, so the
testbed can turn them into typed :class:`repro.faults.HandshakeOutcome`
values.
"""

from __future__ import annotations

from repro.tls.actions import Action, Send
from repro.tls.errors import DecodeError, PeerAlert, TlsError, alert_name
from repro.tls.records import decode_records, encode_alert

# Malformed peer bytes can slip past explicit length checks and blow up in
# struct-level parsing; at the record boundary they all mean decode_error.
_PARSE_ERRORS = (ValueError, KeyError, IndexError, OverflowError)


class AbortMixin:
    """Failure bookkeeping + the guarded receive loop.

    Hosts must provide ``_recv_buffer``, ``bytes_out``, ``_state`` and
    ``_handle_record(record) -> list[Action]``.
    """

    failed = False
    failure: TlsError | None = None
    alert_sent: int | None = None
    alert_received: int | None = None

    def receive(self, data: bytes) -> list[Action]:
        """Feed TCP bytes from the peer; returns ordered actions.

        Never raises on peer-triggered errors: a failure aborts the
        connection (alert on the wire, terminal state) and any bytes
        arriving afterwards are silently ignored.
        """
        if self.failed:
            return []
        self._recv_buffer += data
        actions: list[Action] = []
        try:
            records, self._recv_buffer = decode_records(self._recv_buffer)
            for record in records:
                if self.failed:
                    break
                actions.extend(self._handle_record(record))
        except TlsError as error:
            actions.extend(self._abort(error))
        except _PARSE_ERRORS as error:
            actions.extend(self._abort(DecodeError(f"malformed peer data: {error!r}")))
        return actions

    def _abort(self, error: TlsError) -> list[Action]:
        """Enter the terminal FAILED state; emit our alert if we failed first."""
        self.failed = True
        self.failure = error
        self._state = "failed"
        if isinstance(error, PeerAlert):
            # the peer aborted first: record its alert, never echo one back
            self.alert_received = error.code
            return []
        self.alert_sent = error.alert
        wire = encode_alert(error.alert).encode()
        self.bytes_out += len(wire)
        return [Send(wire, f"Alert({alert_name(error.alert)})")]
