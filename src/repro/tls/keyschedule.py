"""The TLS 1.3 key schedule (RFC 8446 §7.1), SHA-256 / AES-128-GCM suite."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.hashes import hkdf_expand, hkdf_extract, hmac_digest
from repro.tls.errors import HandshakeFailure

HASH_LEN = 32
KEY_LEN = 16
IV_LEN = 12


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    full_label = b"tls13 " + label.encode()
    info = (
        length.to_bytes(2, "big")
        + len(full_label).to_bytes(1, "big")
        + full_label
        + len(context).to_bytes(1, "big")
        + context
    )
    return hkdf_expand(secret, info, length)


def derive_secret(secret: bytes, label: str, transcript_hash: bytes) -> bytes:
    return hkdf_expand_label(secret, label, transcript_hash, HASH_LEN)


@dataclass
class TrafficKeys:
    key: bytes
    iv: bytes


def traffic_keys(secret: bytes) -> TrafficKeys:
    return TrafficKeys(
        key=hkdf_expand_label(secret, "key", b"", KEY_LEN),
        iv=hkdf_expand_label(secret, "iv", b"", IV_LEN),
    )


class KeySchedule:
    """Incremental TLS 1.3 key schedule driven by the transcript hash.

    With no ``psk`` the early secret is ``HKDF-Extract(0, 0)`` (full
    handshake); with a resumption PSK it is ``HKDF-Extract(0, psk)``
    (RFC 8446 §7.1, left column), which also roots the binder key.
    """

    def __init__(self, psk: bytes | None = None):
        zeros = b"\x00" * HASH_LEN
        self._early_secret = hkdf_extract(zeros, psk if psk is not None else zeros)
        self.handshake_secret: bytes | None = None
        self.master_secret: bytes | None = None
        self.client_hs_secret: bytes | None = None
        self.server_hs_secret: bytes | None = None
        self.client_app_secret: bytes | None = None
        self.server_app_secret: bytes | None = None
        self.exporter_master_secret: bytes | None = None
        self.resumption_master_secret: bytes | None = None

    @staticmethod
    def _empty_hash() -> bytes:
        return hashlib.sha256(b"").digest()

    def psk_binder_key(self) -> bytes:
        """The binder key for an offered resumption PSK (§4.2.11.2)."""
        return derive_secret(self._early_secret, "res binder", self._empty_hash())

    @staticmethod
    def psk_binder(binder_key: bytes, truncated_transcript_hash: bytes) -> bytes:
        """The binder value: an HMAC over the truncated ClientHello."""
        finished_key = hkdf_expand_label(binder_key, "finished", b"", HASH_LEN)
        return hmac_digest(finished_key, truncated_transcript_hash)

    def set_shared_secret(self, shared_secret: bytes, transcript_hash: bytes) -> None:
        """Feed the (EC)DHE/KEM shared secret once CH..SH is known."""
        derived = derive_secret(self._early_secret, "derived", self._empty_hash())
        self.handshake_secret = hkdf_extract(derived, shared_secret)
        self.client_hs_secret = derive_secret(
            self.handshake_secret, "c hs traffic", transcript_hash
        )
        self.server_hs_secret = derive_secret(
            self.handshake_secret, "s hs traffic", transcript_hash
        )

    def derive_master(self, transcript_hash: bytes) -> None:
        """Derive application secrets once the server Finished is hashed."""
        if self.handshake_secret is None:
            raise HandshakeFailure("handshake secret not established")
        derived = derive_secret(self.handshake_secret, "derived", self._empty_hash())
        self.master_secret = hkdf_extract(derived, b"\x00" * HASH_LEN)
        self.client_app_secret = derive_secret(
            self.master_secret, "c ap traffic", transcript_hash
        )
        self.server_app_secret = derive_secret(
            self.master_secret, "s ap traffic", transcript_hash
        )
        self.exporter_master_secret = derive_secret(
            self.master_secret, "exp master", transcript_hash
        )

    def derive_resumption(self, transcript_hash: bytes) -> None:
        """Derive ``res master`` once the client Finished is hashed (§7.1)."""
        if self.master_secret is None:
            raise HandshakeFailure("master secret not established")
        self.resumption_master_secret = derive_secret(
            self.master_secret, "res master", transcript_hash
        )

    @staticmethod
    def ticket_psk(resumption_master_secret: bytes, ticket_nonce: bytes) -> bytes:
        """The per-ticket PSK both peers derive from ``res master`` (§4.6.1)."""
        return hkdf_expand_label(
            resumption_master_secret, "resumption", ticket_nonce, HASH_LEN
        )

    @staticmethod
    def next_traffic_secret(traffic_secret: bytes) -> bytes:
        """The post-KeyUpdate generation of a traffic secret (§7.2)."""
        return hkdf_expand_label(traffic_secret, "traffic upd", b"", HASH_LEN)

    @staticmethod
    def finished_verify_data(traffic_secret: bytes, transcript_hash: bytes) -> bytes:
        finished_key = hkdf_expand_label(traffic_secret, "finished", b"", HASH_LEN)
        return hmac_digest(finished_key, transcript_hash)
