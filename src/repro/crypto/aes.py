"""AES-128/192/256 from scratch (FIPS 197), plus CTR mode.

The S-box is derived programmatically from the GF(2^8) inverse + affine
transform rather than pasted as constants, and encryption uses the classic
32-bit T-table formulation, the fastest portable pure-Python shape.

Only the forward cipher is implemented: every mode this repository needs
(CTR for Kyber-90s/Dilithium-AES XOFs, GCM for TLS records, Haraka's AES
rounds) runs the block cipher forward.
"""

from __future__ import annotations


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exponentiation by generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for byte in range(256):
        inverse = 0 if byte == 0 else exp[(255 - log[byte]) % 255]
        result = 0
        for bit in range(8):
            result |= (
                ((inverse >> bit)
                 ^ (inverse >> ((bit + 4) % 8))
                 ^ (inverse >> ((bit + 5) % 8))
                 ^ (inverse >> ((bit + 6) % 8))
                 ^ (inverse >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[byte] = result
    inv_sbox = [0] * 256
    for byte, substituted in enumerate(sbox):
        inv_sbox[substituted] = byte
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# T-tables: TE0[b] = MixColumn of column (S[b], S[b], S[b], S[b]) pattern.
_TE0 = []
for _b in range(256):
    _s = SBOX[_b]
    _s2 = _xtime(_s)
    _s3 = _s2 ^ _s
    _TE0.append((_s2 << 24) | (_s << 16) | (_s << 8) | _s3)
_TE1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _TE0]
_TE2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _TE0]
_TE3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _TE0]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


class AES:
    """The raw AES block cipher for 128/192/256-bit keys."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [int.from_bytes(key[4 * i: 4 * i + 4], "big") for i in range(nk)]
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        k = 4
        for _ in range(self.rounds - 1):
            t0 = (te0[(s0 >> 24) & 0xFF] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
            t1 = (te0[(s1 >> 24) & 0xFF] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
            t2 = (te0[(s2 >> 24) & 0xFF] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
            t3 = (te0[(s3 >> 24) & 0xFF] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        sbox = SBOX
        out0 = ((sbox[(s0 >> 24) & 0xFF] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
        out1 = ((sbox[(s1 >> 24) & 0xFF] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
        out2 = ((sbox[(s2 >> 24) & 0xFF] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
        out3 = ((sbox[(s3 >> 24) & 0xFF] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
        return (out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
                + out2.to_bytes(4, "big") + out3.to_bytes(4, "big"))


def aes_round(state: bytes, round_key: bytes) -> bytes:
    """One unkeyed AES round (SubBytes, ShiftRows, MixColumns) + key XOR.

    This is the `AESENC` instruction semantics Haraka v2 is defined over.
    """
    if len(state) != 16 or len(round_key) != 16:
        raise ValueError("state and round key must be 16 bytes")
    cols = []
    for c in range(4):
        # Column c after ShiftRows pulls byte r from column (c + r) % 4.
        t = (_TE0[state[4 * c]]
             ^ _TE1[state[4 * ((c + 1) % 4) + 1]]
             ^ _TE2[state[4 * ((c + 2) % 4) + 2]]
             ^ _TE3[state[4 * ((c + 3) % 4) + 3]])
        cols.append(t ^ int.from_bytes(round_key[4 * c: 4 * c + 4], "big"))
    return b"".join(col.to_bytes(4, "big") for col in cols)


def aes_ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """AES-CTR keystream with a 12-byte nonce and 32-bit big-endian counter."""
    if len(nonce) != 12:
        raise ValueError("CTR nonce must be 12 bytes")
    cipher = AES(key)
    blocks = []
    counter = 0
    while 16 * len(blocks) < length:
        blocks.append(cipher.encrypt_block(nonce + counter.to_bytes(4, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def aes_ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt *data* under AES-CTR (the operation is an involution)."""
    stream = aes_ctr_keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))
