"""AES-128/192/256 from scratch (FIPS 197), plus CTR mode.

The S-box and T-tables are derived programmatically in
``repro.crypto._aestables``. The reference ``encrypt_block`` here walks
the FIPS 197 state array transform by transform (SubBytes, ShiftRows,
MixColumns, AddRoundKey) so it reads like the spec; the fast twin in
``repro.crypto.kernels.aes`` is the 32-bit T-table formulation. Both are
byte-for-byte equivalent; ``PQTLS_KERNELS`` picks the active one.

Only the forward cipher is implemented: every mode this repository needs
(CTR for Kyber-90s/Dilithium-AES XOFs, GCM for TLS records, Haraka's AES
rounds) runs the block cipher forward.
"""

from __future__ import annotations

import functools
import sys

from repro.crypto._aestables import INV_SBOX, RCON as _RCON
from repro.crypto._aestables import SBOX, TE0 as _TE0, TE1 as _TE1, TE2 as _TE2, TE3 as _TE3

__all__ = ["AES", "INV_SBOX", "SBOX", "CtrBlockSource", "aes_round",
           "aes_ctr_keystream", "aes_ctr_xor", "cached_cipher"]


class AES:
    """The raw AES block cipher for 128/192/256-bit keys."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [int.from_bytes(key[4 * i: 4 * i + 4], "big") for i in range(nk)]
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _encrypt_block_ref(self, block: bytes) -> bytes:
        """FIPS 197 reference cipher: explicit per-transform state walk.

        The state is 16 bytes in column-major order (``state[4c + r]`` is
        row *r* of column *c*), exactly the spec's layout. This is the
        correctness oracle for the T-table kernel.
        """
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys

        def add_round_key(state: list[int], round_index: int) -> list[int]:
            out = []
            for c in range(4):
                word = rk[4 * round_index + c]
                out += [state[4 * c] ^ (word >> 24) & 0xFF,
                        state[4 * c + 1] ^ (word >> 16) & 0xFF,
                        state[4 * c + 2] ^ (word >> 8) & 0xFF,
                        state[4 * c + 3] ^ word & 0xFF]
            return out

        def shift_rows(state: list[int]) -> list[int]:
            # Row r rotates left by r: new column c takes row r's byte
            # from column (c + r) mod 4.
            return [state[4 * ((c + r) % 4) + r] for c in range(4) for r in range(4)]

        def mix_columns(state: list[int]) -> list[int]:
            out = []
            for c in range(4):
                a0, a1, a2, a3 = state[4 * c: 4 * c + 4]
                out += [_xtime(a0) ^ _xtime(a1) ^ a1 ^ a2 ^ a3,
                        a0 ^ _xtime(a1) ^ _xtime(a2) ^ a2 ^ a3,
                        a0 ^ a1 ^ _xtime(a2) ^ _xtime(a3) ^ a3,
                        _xtime(a0) ^ a0 ^ a1 ^ a2 ^ _xtime(a3)]
            return out

        state = add_round_key(list(block), 0)
        for round_index in range(1, self.rounds):
            state = [SBOX[b] for b in state]
            state = shift_rows(state)
            state = mix_columns(state)
            state = add_round_key(state, round_index)
        state = [SBOX[b] for b in state]
        state = shift_rows(state)
        state = add_round_key(state, self.rounds)
        return bytes(state)


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def aes_round(state: bytes, round_key: bytes) -> bytes:
    """One unkeyed AES round (SubBytes, ShiftRows, MixColumns) + key XOR.

    This is the `AESENC` instruction semantics Haraka v2 is defined over.
    """
    if len(state) != 16 or len(round_key) != 16:
        raise ValueError("state and round key must be 16 bytes")
    cols = []
    for c in range(4):
        # Column c after ShiftRows pulls byte r from column (c + r) % 4.
        t = (_TE0[state[4 * c]]
             ^ _TE1[state[4 * ((c + 1) % 4) + 1]]
             ^ _TE2[state[4 * ((c + 2) % 4) + 2]]
             ^ _TE3[state[4 * ((c + 3) % 4) + 3]])
        cols.append(t ^ int.from_bytes(round_key[4 * c: 4 * c + 4], "big"))
    return b"".join(col.to_bytes(4, "big") for col in cols)


@functools.lru_cache(maxsize=256)
def cached_cipher(key: bytes) -> AES:
    """A memoized AES instance: skips re-running the key schedule.

    AES objects are immutable after construction, so sharing one per key
    is safe; the Kyber-90s XOF/PRF and GCM record layer hit the same few
    keys thousands of times per handshake.
    """
    return AES(key)


def aes_ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """AES-CTR keystream with a 12-byte nonce and 32-bit big-endian counter."""
    if len(nonce) != 12:
        raise ValueError("CTR nonce must be 12 bytes")
    cipher = AES(key)
    blocks = []
    counter = 0
    while 16 * len(blocks) < length:
        blocks.append(cipher.encrypt_block(nonce + counter.to_bytes(4, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def _aes_ctr_keystream_fast(key: bytes, nonce: bytes, length: int) -> bytes:
    if len(nonce) != 12:
        raise ValueError("CTR nonce must be 12 bytes")
    encrypt = cached_cipher(key).encrypt_block
    return b"".join(
        encrypt(nonce + counter.to_bytes(4, "big"))
        for counter in range((length + 15) // 16))[:length]


class CtrBlockSource:
    """Incremental AES-CTR XOF: ``source(ctr)`` is chunk *ctr* of the stream.

    Byte-identical to ``aes_ctr_keystream(key, nonce, chunk * (ctr + 1))
    [chunk * ctr:]`` — the shape the Kyber-90s XOF needs — but each call
    encrypts only the blocks overlapping its chunk instead of restarting
    the keystream from counter zero.
    """

    def __init__(self, key: bytes, nonce: bytes, chunk: int = 168):
        if len(nonce) != 12:
            raise ValueError("CTR nonce must be 12 bytes")
        self._encrypt = cached_cipher(key).encrypt_block
        self._nonce = nonce
        self._chunk = chunk

    def __call__(self, ctr: int) -> bytes:
        start = self._chunk * ctr
        first = start // 16
        last = -(-(start + self._chunk) // 16)
        nonce = self._nonce
        stream = b"".join(self._encrypt(nonce + i.to_bytes(4, "big"))
                          for i in range(first, last))
        offset = start - 16 * first
        return stream[offset:offset + self._chunk]


def aes_ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt *data* under AES-CTR (the operation is an involution)."""
    stream = aes_ctr_keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import aes as _fast  # noqa: E402

_kernels.bind(AES, "encrypt_block",
              ref=AES._encrypt_block_ref, fast=_fast.encrypt_block)
_kernels.bind(sys.modules[__name__], "aes_ctr_keystream",
              ref=aes_ctr_keystream, fast=_aes_ctr_keystream_fast)
