"""Modular arithmetic helpers and probabilistic prime generation."""

from __future__ import annotations

import functools
import math

from repro.crypto.drbg import Drbg

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]

# Bound for the primorial-gcd pre-screen below. One gcd against a chunked
# product of all primes < 2**16 replaces ~6500 trial divisions and, at
# ~1 in 11 odd survivors (vs ~1 in 5 for division to 229), roughly halves
# the number of composites that reach a full Miller–Rabin exponentiation —
# the dominant cost of RSA key generation.
_TRIAL_LIMIT = 1 << 16


@functools.lru_cache(maxsize=1)
def _primorial_chunks() -> tuple[int, ...]:
    """Products of all primes < _TRIAL_LIMIT, chunked to ~4096-bit ints."""
    sieve = bytearray([1]) * _TRIAL_LIMIT
    sieve[0] = sieve[1] = 0
    for i in range(2, int(_TRIAL_LIMIT ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i::i] = bytes(len(sieve[i * i::i]))
    chunks: list[int] = []
    product = 1
    for p in range(3, _TRIAL_LIMIT):
        if not sieve[p]:
            continue
        product *= p
        if product.bit_length() >= 4096:
            chunks.append(product)
            product = 1
    if product > 1:
        chunks.append(product)
    return tuple(chunks)


def invmod(a: int, m: int) -> int:
    """Modular inverse via the extended Euclidean algorithm."""
    if m <= 0:
        raise ValueError("modulus must be positive")
    r0, r1 = a % m, m
    s0, s1 = 1, 0
    while r1:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        s0, s1 = s1, s0 - q * s1
    if r0 != 1:
        raise ValueError("value is not invertible")
    return s0 % m


def is_probable_prime(n: int, drbg: Drbg | None = None, rounds: int = 20) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    if n >> 32:
        # n > 2**32 sharing a factor with the primorial has a prime factor
        # below _TRIAL_LIMIT < sqrt(n), so it is certainly composite.
        for chunk in _primorial_chunks():
            if math.gcd(n, chunk) != 1:
                return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = drbg if drbg is not None else Drbg(b"miller-rabin" + n.to_bytes(64, "big", signed=False)[-64:])
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _mr_rounds(bits: int) -> int:
    """Miller–Rabin round count for *random* candidates of a given size.

    FIPS 186-4 Table C.2: for candidates drawn uniformly (not
    adversarially chosen) that already survived trial division, the
    average-case error is far below the worst-case 4^-k, so 2^-100
    assurance needs only a handful of rounds at RSA sizes. Below the
    table's range we keep the conservative generic default.
    """
    if bits >= 1024:
        return 4
    if bits >= 512:
        return 7
    return 20


def generate_prime(bits: int, drbg: Drbg) -> int:
    """Generate a random prime with exactly *bits* bits (top two bits set).

    Setting the top two bits guarantees that the product of two such primes
    has exactly ``2*bits`` bits, the usual RSA convention.
    """
    if bits < 16:
        raise ValueError("refusing to generate tiny primes")
    rounds = _mr_rounds(bits)
    while True:
        candidate = int.from_bytes(drbg.random_bytes((bits + 7) // 8), "big")
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        candidate &= (1 << bits) - 1
        if is_probable_prime(candidate, drbg, rounds=rounds):
            return candidate


def legendre(a: int, p: int) -> int:
    return pow(a, (p - 1) // 2, p)


def sqrt_mod(a: int, p: int) -> int:
    """Tonelli–Shanks square root modulo an odd prime."""
    a %= p
    if a == 0:
        return 0
    if legendre(a, p) != 1:
        raise ValueError("not a quadratic residue")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre(z, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        i, temp = 0, t
        while temp != 1:
            temp = temp * temp % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r
