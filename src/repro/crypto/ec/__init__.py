"""Elliptic-curve substrate: NIST P-curves, X25519, ECDSA, ECDH."""

from repro.crypto.ec.curves import P256, P384, P521, Curve, Point
from repro.crypto.ec.x25519 import x25519, x25519_base

__all__ = ["Curve", "Point", "P256", "P384", "P521", "x25519", "x25519_base"]
