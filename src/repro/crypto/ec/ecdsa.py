"""ECDSA over the NIST P-curves with deterministic nonces (RFC 6979).

Used for the classical halves of the paper's composite signature hybrids
(``p256_dilithium2`` etc.) and for pure-ECDSA certificates in tests.
"""

from __future__ import annotations

import hashlib

from repro.crypto.drbg import Drbg
from repro.crypto.ec.curves import Curve
from repro.crypto.hashes import hmac_digest
from repro.crypto.modmath import invmod

_HASH_FOR_CURVE = {"P-256": "sha256", "P-384": "sha384", "P-521": "sha512"}


def _bits2int(data: bytes, n: int) -> int:
    value = int.from_bytes(data, "big")
    excess = 8 * len(data) - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _hash(curve: Curve, message: bytes) -> bytes:
    name = _HASH_FOR_CURVE[curve.name]
    return getattr(hashlib, name)(message).digest()


def _rfc6979_nonce(curve: Curve, private_key: int, digest: bytes) -> int:
    """Deterministic per-message nonce (RFC 6979 §3.2)."""
    hash_name = _HASH_FOR_CURVE[curve.name]
    hlen = len(digest)
    n = curve.n
    qlen_bytes = (n.bit_length() + 7) // 8
    h1 = (_bits2int(digest, n) % n).to_bytes(qlen_bytes, "big")
    x = private_key.to_bytes(qlen_bytes, "big")
    v = b"\x01" * hlen
    k = b"\x00" * hlen
    k = hmac_digest(k, v + b"\x00" + x + h1, hash_name)
    v = hmac_digest(k, v, hash_name)
    k = hmac_digest(k, v + b"\x01" + x + h1, hash_name)
    v = hmac_digest(k, v, hash_name)
    while True:
        t = b""
        while len(t) < qlen_bytes:
            v = hmac_digest(k, v, hash_name)
            t += v
        candidate = _bits2int(t, n)
        if 1 <= candidate < n:
            return candidate
        k = hmac_digest(k, v + b"\x00", hash_name)
        v = hmac_digest(k, v, hash_name)


def generate_keypair(curve: Curve, drbg: Drbg) -> tuple[int, bytes]:
    """Return (private scalar, SEC1-encoded public key)."""
    private = drbg.randint(1, curve.n - 1)
    public = curve.scalar_mult(private)
    return private, curve.encode_point(public)


def sign(curve: Curve, private_key: int, message: bytes) -> bytes:
    """ECDSA signature as fixed-width r || s."""
    digest = _hash(curve, message)
    z = _bits2int(digest, curve.n) % curve.n
    n = curve.n
    size = (n.bit_length() + 7) // 8
    k = _rfc6979_nonce(curve, private_key, digest)
    while True:
        point = curve.scalar_mult(k)
        r = point.x % n
        if r == 0:
            k = (k + 1) % n or 1
            continue
        s = invmod(k, n) * (z + r * private_key) % n
        if s == 0:
            k = (k + 1) % n or 1
            continue
        return r.to_bytes(size, "big") + s.to_bytes(size, "big")


def verify(curve: Curve, public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Verify a fixed-width r || s signature; returns False on any failure."""
    n = curve.n
    size = (n.bit_length() + 7) // 8
    if len(signature) != 2 * size:
        return False
    r = int.from_bytes(signature[:size], "big")
    s = int.from_bytes(signature[size:], "big")
    if not (1 <= r < n and 1 <= s < n):
        return False
    try:
        q = curve.decode_point(public_key)
    except ValueError:
        return False
    digest = _hash(curve, message)
    z = _bits2int(digest, n) % n
    w = invmod(s, n)
    u1 = z * w % n
    u2 = r * w % n
    point = curve.add(curve.scalar_mult(u1), curve.scalar_mult(u2, q))
    if point.is_infinity:
        return False
    return point.x % n == r
