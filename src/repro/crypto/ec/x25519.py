"""X25519 Diffie–Hellman (RFC 7748) via the Montgomery ladder.

X25519 is the paper's classical state-of-the-art key agreement and the
baseline every SA measurement is combined with (Table 2b).
"""

from __future__ import annotations

P = 2 ** 255 - 19
A24 = 121665
KEY_LEN = 32


def _decode_scalar(k: bytes) -> int:
    if len(k) != KEY_LEN:
        raise ValueError("X25519 scalar must be 32 bytes")
    clamped = bytearray(k)
    clamped[0] &= 248
    clamped[31] &= 127
    clamped[31] |= 64
    return int.from_bytes(clamped, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != KEY_LEN:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    masked = bytearray(u)
    masked[31] &= 127
    return int.from_bytes(masked, "little") % P


def _ladder(k: int, u: int) -> int:
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        # arithmetic cswap: mask is 0 or -1, so the XOR-select runs the
        # same operations whether or not the limbs actually swap
        mask = -(swap ^ k_t)
        dx = mask & (x2 ^ x3)
        dz = mask & (z2 ^ z3)
        x2, x3 = x2 ^ dx, x3 ^ dx
        z2, z3 = z2 ^ dz, z3 ^ dz
        swap = k_t
        a = (x2 + z2) % P
        aa = a * a % P
        b = (x2 - z2) % P
        bb = b * b % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = d * a % P
        cb = c * b % P
        x3 = (da + cb) % P
        x3 = x3 * x3 % P
        z3 = (da - cb) % P
        z3 = x1 * z3 * z3 % P
        x2 = aa * bb % P
        z2 = e * (aa + A24 * e) % P
    mask = -swap
    dx = mask & (x2 ^ x3)
    dz = mask & (z2 ^ z3)
    x2, z2 = x2 ^ dx, z2 ^ dz
    return x2 * pow(z2, P - 2, P) % P


def x25519(scalar: bytes, u: bytes) -> bytes:
    """The X25519 function: scalar * point(u), little-endian encodings."""
    result = _ladder(_decode_scalar(scalar), _decode_u(u))
    return result.to_bytes(KEY_LEN, "little")


def x25519_base(scalar: bytes) -> bytes:
    """Scalar multiplication with the base point u=9 (public key derivation)."""
    return x25519(scalar, (9).to_bytes(KEY_LEN, "little"))
