"""Short-Weierstrass curves P-256 / P-384 / P-521 with Jacobian arithmetic.

These back three roles in the paper's algorithm matrix: the classical ECDH
key agreements (p256/p384/p521 TLS groups), the classical halves of every
hybrid (``p256_kyber512`` ...), and ECDSA handshake signatures.

``PQTLS_KERNELS=fast`` (default) swaps ``Curve.scalar_mult`` for the
windowed kernel in ``repro.crypto.kernels.ec`` (fixed-base comb for the
generator, wNAF for arbitrary points); the bit-by-bit double-and-add
below stays as the reference twin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modmath import invmod, sqrt_mod


@dataclass(frozen=True)
class Point:
    """Affine point; ``None`` coordinates encode the point at infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None


INFINITY = Point(None, None)


class Curve:
    """y^2 = x^3 + a x + b over GF(p), prime order n, generator G."""

    def __init__(self, name: str, p: int, a: int, b: int, gx: int, gy: int, n: int):
        self.name = name
        self.p = p
        self.a = a
        self.b = b
        self.g = Point(gx, gy)
        self.n = n
        self.coord_bytes = (p.bit_length() + 7) // 8

    # -- affine group law (reference; used by tests) --------------------
    def add(self, p1: Point, p2: Point) -> Point:
        if p1.is_infinity:
            return p2
        if p2.is_infinity:
            return p1
        p = self.p
        if p1.x == p2.x:
            if (p1.y + p2.y) % p == 0:
                return INFINITY
            slope = (3 * p1.x * p1.x + self.a) * invmod(2 * p1.y, p) % p
        else:
            slope = (p2.y - p1.y) * invmod(p2.x - p1.x, p) % p
        x3 = (slope * slope - p1.x - p2.x) % p
        y3 = (slope * (p1.x - x3) - p1.y) % p
        return Point(x3, y3)

    # -- Jacobian arithmetic (fast path) ---------------------------------
    def _jac_double(self, x, y, z):
        p = self.p
        if not y:
            return 0, 1, 0
        ysq = y * y % p
        s = 4 * x * ysq % p
        m = (3 * x * x + self.a * pow(z, 4, p)) % p
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return nx, ny, nz

    def _jac_add(self, x1, y1, z1, x2, y2, z2):
        p = self.p
        if not z1:
            return x2, y2, z2
        if not z2:
            return x1, y1, z1
        z1sq = z1 * z1 % p
        z2sq = z2 * z2 % p
        u1 = x1 * z2sq % p
        u2 = x2 * z1sq % p
        s1 = y1 * z2sq * z2 % p
        s2 = y2 * z1sq * z1 % p
        if u1 == u2:
            if s1 != s2:
                return 0, 1, 0
            return self._jac_double(x1, y1, z1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        hsq = h * h % p
        hcu = hsq * h % p
        nx = (r * r - hcu - 2 * u1 * hsq) % p
        ny = (r * (u1 * hsq - nx) - s1 * hcu) % p
        nz = h * z1 * z2 % p
        return nx, ny, nz

    def _scalar_mult_ref(self, k: int, point: Point | None = None) -> Point:
        """Compute ``k * point`` (default: the generator)."""
        if point is None:
            point = self.g
        k %= self.n
        if k == 0 or point.is_infinity:
            return INFINITY
        x, y, z = 0, 1, 0
        px, py, pz = point.x, point.y, 1
        for bit in bin(k)[2:]:
            x, y, z = self._jac_double(x, y, z)
            if bit == "1":
                x, y, z = self._jac_add(x, y, z, px, py, pz)
        if not z:
            return INFINITY
        p = self.p
        zinv = invmod(z, p)
        zinv2 = zinv * zinv % p
        return Point(x * zinv2 % p, y * zinv2 * zinv % p)

    # -- validation and encoding ----------------------------------------
    def is_on_curve(self, point: Point) -> bool:
        if point.is_infinity:
            return True
        p = self.p
        return (point.y * point.y - (point.x ** 3 + self.a * point.x + self.b)) % p == 0

    def encode_point(self, point: Point) -> bytes:
        """SEC1 uncompressed encoding (0x04 || X || Y), as TLS uses."""
        if point.is_infinity:
            raise ValueError("cannot encode the point at infinity")
        size = self.coord_bytes
        return b"\x04" + point.x.to_bytes(size, "big") + point.y.to_bytes(size, "big")

    def decode_point(self, data: bytes) -> Point:
        size = self.coord_bytes
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise ValueError("invalid SEC1 uncompressed point")
        point = Point(
            int.from_bytes(data[1: 1 + size], "big"),
            int.from_bytes(data[1 + size:], "big"),
        )
        if not self.is_on_curve(point) or point.is_infinity:
            raise ValueError("point is not on the curve")
        return point

    def lift_x(self, x: int, parity: int = 0) -> Point:
        """Find a curve point with the given x (used by tests)."""
        rhs = (x ** 3 + self.a * x + self.b) % self.p
        y = sqrt_mod(rhs, self.p)
        if y % 2 != parity:
            y = self.p - y
        return Point(x, y)


P256 = Curve(
    "P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

P384 = Curve(
    "P-384",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFF0000000000000000FFFFFFFF,
    a=-3,
    b=0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875AC656398D8A2ED19D2A85C8EDD3EC2AEF,
    gx=0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A385502F25DBF55296C3A545E3872760AB7,
    gy=0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C00A60B1CE1D7E819D7A431D7C90EA0E5F,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF581A0DB248B0A77AECEC196ACCC52973,
)

P521 = Curve(
    "P-521",
    p=(1 << 521) - 1,
    a=-3,
    b=0x0051953EB9618E1C9A1F929A21A0B68540EEA2DA725B99B315F3B8B489918EF109E156193951EC7E937B1652C0BD3BB1BF073573DF883D2C34F1EF451FD46B503F00,
    gx=0x00C6858E06B70404E9CD9E3ECB662395B4429C648139053FB521F828AF606B4D3DBAA14B5E77EFE75928FE1DC127A2FFA8DE3348B3C1856A429BF97E7E31C2E5BD66,
    gy=0x011839296A789A3BC0045C8A5FB42C7D1BD998F54449579B446817AFBD17273E662C97EE72995EF42640C550B9013FAD0761353C7086A272C24088BE94769FD16650,
    n=0x1FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFA51868783BF2F966B7FCC0148F709A5D03BB5C9B8899C47AEBB6FB71E91386409,
)

CURVES = {"p256": P256, "p384": P384, "p521": P521}


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import ec as _fast  # noqa: E402

_kernels.bind(Curve, "scalar_mult",
              ref=Curve._scalar_mult_ref, fast=_fast.scalar_mult)
