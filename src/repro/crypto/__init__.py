"""Classical cryptographic substrate.

Everything the TLS stack and the PQC layer need from "pre-quantum" crypto,
implemented from scratch (AES, GCM, EC, RSA, Haraka) or thinly wrapped from
:mod:`hashlib` (SHA-2/SHA-3/SHAKE — these are hash primitives the paper's
OpenSSL also takes from its own libcrypto).
"""

from repro.crypto.drbg import Drbg
from repro.crypto.hashes import hkdf_expand, hkdf_extract, hmac_digest, shake128, shake256

__all__ = [
    "Drbg",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_digest",
    "shake128",
    "shake256",
]
