"""RSA: key generation, PKCS#1 v1.5 signatures, and RSA-PSS.

The paper measures rsa:1024 / rsa:2048 / rsa:3072 / rsa:4096 server
certificates; TLS 1.3 CertificateVerify mandates RSASSA-PSS for RSA keys,
so PSS is the scheme our TLS stack uses, with v1.5 kept for certificates
(as the WebPKI does) and for tests.

``PQTLS_KERNELS=fast`` (default) swaps the private-key operation for the
CRT kernel in ``repro.crypto.kernels.rsa``; the textbook
``pow(c, d, n)`` below is the reference twin (both compute the same
integer, so signatures are byte-identical). Key generation is never
kernelised — it consumes the deterministic DRBG and must keep its exact
candidate/witness schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import Drbg
from repro.crypto.hashes import mgf1, sha256
from repro.crypto.modmath import generate_prime, invmod

_SHA256_DER_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")
_F4 = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encode(self) -> bytes:
        """Compact wire encoding: 2-byte modulus length, modulus, exponent."""
        n_bytes = self.n.to_bytes(self.size_bytes, "big")
        e_bytes = self.e.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    @classmethod
    def decode(cls, data: bytes) -> "RsaPublicKey":
        if len(data) < 6:
            raise ValueError("truncated RSA public key")
        n_len = int.from_bytes(data[:2], "big")
        if len(data) != 2 + n_len + 4:
            raise ValueError("malformed RSA public key")
        n = int.from_bytes(data[2: 2 + n_len], "big")
        e = int.from_bytes(data[2 + n_len:], "big")
        return cls(n, e)


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def _decrypt_ref(self, c: int) -> int:
        """Private-key operation, textbook form."""
        return pow(c, self.d, self.n)


def generate_keypair(bits: int, drbg: Drbg) -> RsaPrivateKey:
    """Generate an RSA key with modulus size *bits* and e = 65537."""
    if bits % 2:
        raise ValueError("modulus size must be even")
    while True:
        p = generate_prime(bits // 2, drbg)
        q = generate_prime(bits // 2, drbg)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = invmod(_F4, phi)
        except ValueError:
            continue
        return RsaPrivateKey(n=n, e=_F4, d=d, p=p, q=q)


# -- PKCS#1 v1.5 ---------------------------------------------------------

def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    t = _SHA256_DER_PREFIX + sha256(message)
    if em_len < len(t) + 11:
        raise ValueError("modulus too small for PKCS#1 v1.5 with SHA-256")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign_pkcs1(key: RsaPrivateKey, message: bytes) -> bytes:
    em = _emsa_pkcs1_v15(message, key.public.size_bytes)
    s = key._decrypt(int.from_bytes(em, "big"))
    return s.to_bytes(key.public.size_bytes, "big")


def verify_pkcs1(key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    if len(signature) != key.size_bytes:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    em = pow(s, key.e, key.n).to_bytes(key.size_bytes, "big")
    try:
        return em == _emsa_pkcs1_v15(message, key.size_bytes)
    except ValueError:
        return False


# -- RSASSA-PSS (RFC 8017), SHA-256, salt length = hash length -----------

_SALT_LEN = 32


def _pss_encode(message: bytes, em_bits: int, salt: bytes) -> bytes:
    em_len = (em_bits + 7) // 8
    m_hash = sha256(message)
    if em_len < len(m_hash) + len(salt) + 2:
        raise ValueError("modulus too small for PSS")
    m_prime = b"\x00" * 8 + m_hash + salt
    h = sha256(m_prime)
    ps = b"\x00" * (em_len - len(salt) - len(m_hash) - 2)
    db = ps + b"\x01" + salt
    mask = mgf1(h, em_len - len(m_hash) - 1)
    masked_db = bytes(a ^ b for a, b in zip(db, mask))
    # clear the leftmost bits so EM < 2^em_bits
    clear = 8 * em_len - em_bits
    masked_db = bytes([masked_db[0] & (0xFF >> clear)]) + masked_db[1:]
    return masked_db + h + b"\xbc"


def sign_pss(key: RsaPrivateKey, message: bytes, drbg: Drbg | None = None) -> bytes:
    salt = drbg.random_bytes(_SALT_LEN) if drbg is not None else sha256(b"pss-salt" + message)
    em = _pss_encode(message, key.n.bit_length() - 1, salt)
    s = key._decrypt(int.from_bytes(em, "big"))
    return s.to_bytes(key.public.size_bytes, "big")


def verify_pss(key: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    if len(signature) != key.size_bytes:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    em_bits = key.n.bit_length() - 1
    em_len = (em_bits + 7) // 8
    em = pow(s, key.e, key.n).to_bytes(key.size_bytes, "big")[-em_len:]
    if em[-1] != 0xBC:
        return False
    m_hash = sha256(message)
    hlen = len(m_hash)
    masked_db, h = em[: em_len - hlen - 1], em[em_len - hlen - 1: -1]
    clear = 8 * em_len - em_bits
    if masked_db[0] >> (8 - clear) if clear else 0:
        return False
    mask = mgf1(h, len(masked_db))
    db = bytes(a ^ b for a, b in zip(masked_db, mask))
    db = bytes([db[0] & (0xFF >> clear)]) + db[1:]
    sep = db.find(b"\x01")
    if sep == -1 or any(db[:sep]):
        return False
    salt = db[sep + 1:]
    if len(salt) != _SALT_LEN:
        return False
    m_prime = b"\x00" * 8 + m_hash + salt
    return sha256(m_prime) == h


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import rsa as _fast  # noqa: E402

_kernels.bind(RsaPrivateKey, "_decrypt",
              ref=RsaPrivateKey._decrypt_ref, fast=_fast.private_op)
