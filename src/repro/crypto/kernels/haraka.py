"""Codegen-unrolled Haraka v2 permutations.

SPHINCS+-Haraka is the repository's hash storm: one 128f signature runs
~100k Haraka-512 permutations, and the reference implementation pays for
list indexing, a Python-level MIX shuffle, round-constant table walks,
and a function call per AES round. This kernel instead *generates
straight-line Python source* for the whole 5-round permutation, once per
round-constant set, and ``exec``-compiles it:

- the 16 (or 8) state words live in local variables, not a list;
- the MIX word shuffle is performed at codegen time by renaming which
  local feeds which expression — it costs zero instructions at runtime;
- round constants are embedded as integer literals;
- input/output go through one ``struct`` unpack/pack each.

The AES columns keep the four 256-entry T-tables of the reference. A
previous revision fused them into two 65536-entry double-byte tables to
halve the lookup count; that was measurably *slower*: 160 columns of
random indexing into ~1 MiB of boxed ints miss the cache on nearly every
lookup, while the four small tables stay L1-resident. Fewer instructions
lost to worse locality.

The generated function is byte-for-byte equivalent to the reference
permutation (property-tested) and ~1.5x faster. Compilation costs ~2 ms
and is memoized per round-constant stream, so the default instance and
each keyed (per-``pub_seed``) instance compile exactly once.
"""

from __future__ import annotations

import functools
import struct

from repro.crypto._aestables import TE0, TE1, TE2, TE3

_MIX256_ORDER = [0, 4, 1, 5, 2, 6, 3, 7]
_MIX512_ORDER = [3, 11, 7, 15, 8, 0, 12, 4, 9, 1, 13, 5, 2, 10, 6, 14]

_UNPACK8 = struct.Struct(">8I").unpack
_PACK8 = struct.Struct(">8I").pack
_UNPACK16 = struct.Struct(">16I").unpack
_PACK16 = struct.Struct(">16I").pack


def _perm_source(name: str, nwords: int, mix_order: list[int],
                 rc_words: list[int]) -> str:
    """Straight-line source for a 5-round Haraka permutation.

    Mirrors the reference loop exactly: per round, each 4-word AES block
    gets two AES rounds (consuming round-constant words block-major, as
    the reference does), then the MIX word shuffle — applied here by
    permuting the *names* of the locals that carry the state.
    """
    # nwords is the codegen-time state shape (8 or 16), never message data
    unpack = "_unpack8" if nwords == 8 else "_unpack16"  # pqtls: allow[CT001]
    pack = "_pack8" if nwords == 8 else "_pack16"  # pqtls: allow[CT001]
    names = [f"w{i}" for i in range(nwords)]
    # Tables and struct codecs ride in as default arguments so every
    # lookup in the generated body is a LOAD_FAST, not a global lookup.
    lines = [f"def {name}(data, T0=T0, T1=T1, T2=T2, T3=T3, "
             f"{unpack}={unpack}, {pack}={pack}):",
             f"    {', '.join(names)} = {unpack}(data)"]
    temp = 0
    rc_index = 0
    for _round in range(5):
        for block in range(nwords // 4):  # pqtls: allow[CT002]
            for _aes in range(2):
                s0, s1, s2, s3 = names[4 * block: 4 * block + 4]  # pqtls: allow[CT003]
                new = [f"t{temp + i}" for i in range(4)]
                temp += 4
                k = rc_words[rc_index: rc_index + 4]
                rc_index += 4
                # AESENC columns; >> 24 needs no mask (words are 32-bit)
                lines += [
                    f"    {new[0]} = T0[{s0} >> 24] ^ T1[{s1} >> 16 & 255]"
                    f" ^ T2[{s2} >> 8 & 255] ^ T3[{s3} & 255] ^ {k[0]}",
                    f"    {new[1]} = T0[{s1} >> 24] ^ T1[{s2} >> 16 & 255]"
                    f" ^ T2[{s3} >> 8 & 255] ^ T3[{s0} & 255] ^ {k[1]}",
                    f"    {new[2]} = T0[{s2} >> 24] ^ T1[{s3} >> 16 & 255]"
                    f" ^ T2[{s0} >> 8 & 255] ^ T3[{s1} & 255] ^ {k[2]}",
                    f"    {new[3]} = T0[{s3} >> 24] ^ T1[{s0} >> 16 & 255]"
                    f" ^ T2[{s1} >> 8 & 255] ^ T3[{s2} & 255] ^ {k[3]}",
                ]
                names[4 * block: 4 * block + 4] = new  # pqtls: allow[CT003]
        # pqtls: allow[CT003] — mix_order is the codegen-time MIX word
        # shuffle (a public permutation constant), never message data
        names = [names[i] for i in mix_order]
    lines.append(f"    return {pack}({', '.join(names)})")
    return "\n".join(lines)


@functools.lru_cache(maxsize=64)
def compiled_perms(rc_stream: bytes):
    """(perm256, perm512) compiled for a 640-byte round-constant stream."""
    if len(rc_stream) != 640:
        raise ValueError("Haraka needs 40 x 16 bytes of round constants")
    rc_words = [int.from_bytes(rc_stream[4 * i: 4 * i + 4], "big")
                for i in range(160)]
    namespace = {
        "T0": TE0, "T1": TE1, "T2": TE2, "T3": TE3,
        "_unpack8": _UNPACK8, "_pack8": _PACK8,
        "_unpack16": _UNPACK16, "_pack16": _PACK16,
    }
    # Haraka-256 strides the same constant stream 16 words per round,
    # Haraka-512 strides it 32 words per round — both from offset 0.
    exec(_perm_source("perm256", 8, _MIX256_ORDER, rc_words[:80]), namespace)
    exec(_perm_source("perm512", 16, _MIX512_ORDER, rc_words), namespace)
    return namespace["perm256"], namespace["perm512"]


def perms_for(haraka) -> tuple:
    """The compiled (perm256, perm512) pair for a ``Haraka`` instance."""
    cached = haraka.__dict__.get("_kernel_perms")
    if cached is None:  # pqtls: allow[CT001] — per-instance compile-cache probe
        cached = compiled_perms(b"".join(haraka._rc[:40]))
        haraka._kernel_perms = cached
    return cached
