"""Fast HQC decode pipeline: cyclic products, RM(1,7) and RS decoding.

Fast twins for the pure-Python hot paths of ``repro.pqc.hqc`` (profile
of an hqc128 roundtrip: ``_sparse_mul``'s per-index ``np.roll`` is ~50%
of wall time, the per-symbol Walsh–Hadamard loop in ``rm_decode``
another ~15%, RS syndrome/Chien evaluation most of the rest):

- :func:`sparse_mul` — the sparse·dense product in GF(2)[x]/(x^n - 1)
  as one Python bigint: pack the dense vector into an int, then each
  support index is a rotate-XOR (``(x << s | x >> (n - s)) & mask``)
  on machine words instead of an n-element ``np.roll`` round trip.
- :func:`rm_decode` — all n1 soft vectors pushed through one batched
  fast Walsh–Hadamard transform on an (n1, 128) int32 matrix; argmax
  per row replaces the per-symbol Python loop. |soft| ≤ multiplicity,
  so transform values stay within ±640 — no overflow in int32.
- :func:`rs_syndromes` / :func:`rs_chien` / :func:`rs_encode` — GF(256)
  polynomial evaluation as exp/log table gathers against cached
  exponent matrices (shared sentinel tables from
  ``repro.crypto.kernels.gf256``: log 0 maps past the populated exp
  range, so zero coefficients gather 0 with no masking).

All arithmetic is exact (XOR/GF(256)); outputs are byte-identical to
the reference twins in ``repro.pqc.hqc.{kem,reedmuller,reedsolomon}``.
This module must not import those modules — they import it to register
bindings.

Like the reference twins, these operate on secret-derived values
(supports, noisy codewords); data-dependent bigint limb counts and
table gathers are flagged with ``pqtls: allow`` pragmas because host
timing is outside the simulation's measurement path.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.kernels import gf256 as _gf256

_RM_BITS = 128

# cached exponent matrices, keyed by the (public) code parameters
_SYND_MATS: dict[tuple[int, int], np.ndarray] = {}
_CHIEN_MATS: dict[tuple[int, int], np.ndarray] = {}
_GENMUL: dict[bytes, np.ndarray] = {}


def warm() -> None:
    """Pre-build the shared GF(256) gather tables (per-worker warmup)."""
    _gf256.np_tables()


# -- sparse·dense cyclic product ------------------------------------------------

def sparse_mul(support: list[int], dense: np.ndarray) -> np.ndarray:
    """(sum_i x^support[i]) * dense in GF(2)[x]/(x^n - 1).

    The dense bit vector becomes one little-endian bigint; each support
    index contributes a rotate-left by that amount, XOR-accumulated.
    """
    n = dense.shape[0]
    x = int.from_bytes(np.packbits(dense, bitorder="little").tobytes(), "little")
    mask = (1 << n) - 1
    acc = 0
    for shift in support:
        # the rotate amount is the secret support index; bigint shifts
        # are not constant-time on the host, but this is the same
        # exposure class as the reference np.roll(dense, shift)
        acc ^= ((x << shift) | (x >> (n - shift))) & mask
    out = np.frombuffer(acc.to_bytes((n + 7) // 8, "little"), dtype=np.uint8)
    # pqtls: allow[CT003] — slice bound is the public ring dimension n
    return np.unpackbits(out, bitorder="little")[:n].astype(dense.dtype)


# -- Reed–Muller ML decode ------------------------------------------------------

def rm_decode(bits: np.ndarray, n1: int, multiplicity: int) -> bytes:
    """ML-decode n1 duplicated RM(1,7) codewords back to n1 bytes."""
    expected = n1 * _RM_BITS * multiplicity
    if bits.shape[0] != expected:  # pqtls: allow[CT001] — public shape check
        raise ValueError(f"expected {expected} bits, got {bits.shape[0]}")
    blocks = bits.reshape(n1, multiplicity, _RM_BITS)
    # soft values: +1 for bit 0, -1 for bit 1, summed over copies
    v = (multiplicity - 2 * blocks.sum(axis=1)).astype(np.int32)
    h = 1
    while h < _RM_BITS:
        w = v.reshape(n1, -1, 2, h)
        left = w[:, :, 0, :]
        right = w[:, :, 1, :]
        v = np.stack((left + right, left - right), axis=2).reshape(n1, _RM_BITS)
        h *= 2
    # np.argmax takes the first maximum, matching the reference row loop
    index = np.argmax(np.abs(v), axis=1)
    # pqtls: allow[CT003] — argmax gather over the soft codeword, same
    # data-dependent access as the reference per-row argmax
    value = v[np.arange(n1), index]
    return bytes((index | np.where(value < 0, 0x80, 0)).astype(np.uint8).tolist())


# -- Reed–Solomon component kernels ---------------------------------------------

def _synd_matrix(delta: int, n: int) -> np.ndarray:
    mat = _SYND_MATS.get((delta, n))
    # pqtls: allow[CT001] — memoized matrix keyed by public code params
    if mat is None:
        i = np.arange(1, 2 * delta + 1, dtype=np.int32)
        j = np.arange(n, dtype=np.int32)
        mat = (i[:, None] * j[None, :]) % 255
        _SYND_MATS[(delta, n)] = mat  # pqtls: allow[CT003] — public key
    return mat


def rs_syndromes(word: list[int], delta: int) -> list[int]:
    """[poly_eval(word, alpha^i) for i in 1..2*delta] as one gather."""
    exp_np, log_np = _gf256.np_tables()
    logs = log_np[np.asarray(word, dtype=np.int32)]  # pqtls: allow[CT003]
    mat = _synd_matrix(delta, len(word))  # pqtls: allow[CT110] — public code params
    terms = exp_np[logs[None, :] + mat]  # pqtls: allow[CT003]
    return np.bitwise_xor.reduce(terms, axis=1).tolist()


def _chien_matrix(n: int, slen: int) -> np.ndarray:
    mat = _CHIEN_MATS.get((n, slen))
    # pqtls: allow[CT001] — memoized matrix keyed by public code params
    if mat is None:
        pos = np.arange(n, dtype=np.int32)
        j = np.arange(slen, dtype=np.int32)
        mat = (((255 - pos) % 255)[:, None] * j[None, :]) % 255
        _CHIEN_MATS[(n, slen)] = mat  # pqtls: allow[CT003] — public key
    return mat


def rs_chien(sigma: list[int], n: int) -> list[int]:
    """Positions p in 0..n-1 with sigma(alpha^-p) == 0, ascending."""
    exp_np, log_np = _gf256.np_tables()
    logs = log_np[np.asarray(sigma, dtype=np.int32)]  # pqtls: allow[CT003]
    mat = _chien_matrix(n, len(sigma))  # pqtls: allow[CT110] — public code params
    vals = np.bitwise_xor.reduce(exp_np[logs[None, :] + mat], axis=1)  # pqtls: allow[CT003]
    return np.nonzero(vals == 0)[0].tolist()


def _gen_table(gen: list[int]) -> np.ndarray:
    key = bytes(gen)
    tab = _GENMUL.get(key)
    # pqtls: allow[CT001] — memoized table for the public generator poly
    if tab is None:
        exp_np, log_np = _gf256.np_tables()
        logs = log_np[np.asarray(gen, dtype=np.int32)]  # pqtls: allow[CT003] — public generator
        tab = exp_np[log_np[np.arange(256)][:, None] + logs[None, :]]  # pqtls: allow[CT003] — public generator
        _GENMUL[key] = tab  # pqtls: allow[CT003] — public generator
    return tab


def rs_encode(message: bytes, gen: list[int], n: int, k: int) -> bytes:
    """Systematic RS encoding: codeword = parity || message (degree order)."""
    parity_len = n - k
    remainder = np.zeros(n, dtype=np.int32)
    remainder[parity_len:] = np.frombuffer(bytes(message), dtype=np.uint8)  # pqtls: allow[CT003] — public code shape
    table = _gen_table(gen)  # pqtls: allow[CT110] — public generator poly
    top = len(gen) - 1
    for i in range(n - 1, parity_len - 1, -1):  # pqtls: allow[CT002] — public code length
        coeff = int(remainder[i])  # pqtls: allow[CT003]
        # pqtls: allow[CT001] — sparsity skip, same shape as the reference
        if coeff:
            remainder[i - top: i + 1] ^= table[coeff]  # pqtls: allow[CT003]
    return remainder[:parity_len].astype(np.uint8).tobytes() + bytes(message)  # pqtls: allow[CT003] — public code shape
