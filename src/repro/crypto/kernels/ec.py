"""Windowed EC scalar multiplication kernels.

Fast twin of ``Curve.scalar_mult``. Two strategies, both returning the
same affine point as the reference double-and-add (affine coordinates
are unique, so the result is byte-identical however it was computed):

- **generator**: a lazily built 4-bit fixed-base comb — every 4-bit
  window of the scalar indexes a precomputed affine table of
  ``d * 16^w * G``, so the whole multiplication is ~64 mixed additions
  and *zero* doublings (the reference pays 256 doublings + ~128 adds);
- **arbitrary point**: width-5 wNAF over precomputed odd multiples
  ``P, 3P, ..., 15P`` (negations are free: flip y), cutting the
  additions from ~128 to ~43 while keeping the 256 doublings.

The comb table is built once per curve (a few thousand Jacobian ops and
one batched inversion) and cached on the curve instance, which the
handful of module-level ``P256``/``P384``/``P521`` singletons amortise
across every handshake.

This module must not import ``repro.crypto.ec.curves`` (which imports
it to register the binding): the curve's Jacobian helpers are reached
through ``self`` and result points are rebuilt via ``type(point)``.

Scalars are secret; like the reference's ``bin(k)`` walk, the window
decompositions below branch and index on scalar bits — flagged lines
carry ``pqtls: allow`` pragmas because host timing is outside the
simulation's measurement path (see DESIGN.md).
"""

from __future__ import annotations

_COMB_BITS = 4
_COMB_MASK = 15
_WNAF_WIDTH = 5


def _batch_to_affine(points: list[tuple[int, int, int]], p: int) -> list[tuple[int, int]]:
    """Jacobian -> affine for a table, with one shared field inversion."""
    prefix = [1]
    for _, _, z in points:
        prefix.append(prefix[-1] * z % p)
    inv = pow(prefix[-1], p - 2, p)  # Fermat inverse, p prime
    out: list[tuple[int, int]] = [(0, 0)] * len(points)
    for i in range(len(points) - 1, -1, -1):
        x, y, z = points[i]
        zinv = inv * prefix[i] % p
        inv = inv * z % p
        z2 = zinv * zinv % p
        out[i] = (x * z2 % p, y * z2 % p * zinv % p)
    return out


def _comb_table(curve) -> list[tuple[int, int]]:
    """Affine ``d * 16^w * G`` for d in 1..15, w in 0..windows-1.

    Flat layout: entry ``15 * w + (d - 1)``. None of the entries can be
    the point at infinity because n is prime and far exceeds 15.
    """
    table = curve.__dict__.get("_kernel_comb")
    # pqtls: allow[CT001] — one-time table build over the public generator
    if table is None:
        windows = (curve.n.bit_length() + _COMB_BITS - 1) // _COMB_BITS
        jac: list[tuple[int, int, int]] = []
        bx, by, bz = curve.g.x, curve.g.y, 1
        for _ in range(windows):  # pqtls: allow[CT002] — public group-order size
            entries = [(bx, by, bz)]
            for _ in range(14):
                ex, ey, ez = entries[-1]
                entries.append(curve._jac_add(ex, ey, ez, bx, by, bz))  # pqtls: allow[CT101] — one-time table build over the public generator
            jac.extend(entries)
            # next window base: 16^{w+1} G = double(8 * 16^w G)
            ex, ey, ez = entries[7]
            bx, by, bz = curve._jac_double(ex, ey, ez)  # pqtls: allow[CT101] — public generator table build
        table = _batch_to_affine(jac, curve.p)
        curve._kernel_comb = table
    return table


def _comb_mult(curve, k: int) -> tuple[int, int, int]:
    table = _comb_table(curve)  # pqtls: allow[CT110] — table build is allowed at the sink (public generator)
    x, y, z = 0, 1, 0
    base = -15
    while k:  # pqtls: allow[CT001] — scalar-bit walk, as in the reference
        base += 15
        d = k & _COMB_MASK
        k >>= _COMB_BITS
        # pqtls: allow[CT001]
        if d:
            ax, ay = table[base + d - 1]  # pqtls: allow[CT003]
            x, y, z = curve._jac_add(x, y, z, ax, ay, 1)  # pqtls: allow[CT101] — Jacobian identity checks in curves, as the reference
    return x, y, z


def _wnaf_digits(k: int, width: int) -> list[int]:
    """Non-adjacent form with odd digits in ``(-2^(w-1), 2^(w-1))``."""
    power = 1 << width
    half = power >> 1
    digits: list[int] = []
    while k:  # pqtls: allow[CT001] — scalar recoding, branches on k bits
        # pqtls: allow[CT001]
        if k & 1:
            d = k & (power - 1)
            # pqtls: allow[CT001]
            if d >= half:
                d -= power
            k -= d
            digits.append(d)
        else:
            digits.append(0)
        k >>= 1
    return digits


def _wnaf_mult(curve, k: int, point) -> tuple[int, int, int]:
    p = curve.p
    # odd multiples P, 3P, ..., 15P in Jacobian coordinates
    dx, dy, dz = curve._jac_double(point.x, point.y, 1)  # pqtls: allow[CT101] — Jacobian identity checks in curves, as the reference
    odd = [(point.x, point.y, 1)]
    for _ in range(7):
        ex, ey, ez = odd[-1]
        odd.append(curve._jac_add(ex, ey, ez, dx, dy, dz))  # pqtls: allow[CT101] — Jacobian identity checks in curves, as the reference
    x, y, z = 0, 1, 0
    for d in reversed(_wnaf_digits(k, _WNAF_WIDTH)):  # pqtls: allow[CT110] — scalar recoding is allowed at the sink, as the reference
        x, y, z = curve._jac_double(x, y, z)  # pqtls: allow[CT101] — Jacobian identity checks in curves, as the reference
        # pqtls: allow[CT001] — digit-dependent add, as the reference's
        # per-bit conditional add
        if d:
            ax, ay, az = odd[abs(d) >> 1]  # pqtls: allow[CT003]
            # pqtls: allow[CT001]
            if d < 0:
                ay = p - ay
            x, y, z = curve._jac_add(x, y, z, ax, ay, az)  # pqtls: allow[CT101] — Jacobian identity checks in curves, as the reference
    return x, y, z


def scalar_mult(self, k: int, point=None):
    """Drop-in fast twin of ``Curve.scalar_mult`` (same affine result)."""
    fixed_base = point is None or point is self.g
    if point is None:  # pqtls: allow[CT001] — default-argument plumbing
        point = self.g
    k %= self.n
    # pqtls: allow[CT001] — spec edge cases, mirrored from the reference
    if k == 0 or point.is_infinity:
        return type(point)(None, None)
    # pqtls: allow[CT001] — dispatch on point *identity*, not coordinates
    if fixed_base:
        x, y, z = _comb_mult(self, k)  # pqtls: allow[CT110] — comb walk is allowed at the sink, as the reference
    else:
        x, y, z = _wnaf_mult(self, k, point)  # pqtls: allow[CT110] — wNAF walk is allowed at the sink, as the reference
    if not z:  # pqtls: allow[CT001] — infinity check, as the reference
        return type(point)(None, None)
    p = self.p
    # Fermat inverse: p is prime and z != 0, and pow() avoids the
    # secret-dependent iteration count of the extended-Euclid invmod
    zinv = pow(z, p - 2, p)
    zinv2 = zinv * zinv % p
    return type(point)(x * zinv2 % p, y * zinv2 % p * zinv % p)
