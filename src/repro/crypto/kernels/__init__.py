"""repro.crypto.kernels — fast drop-in kernels behind the reference crypto.

The reference implementations under ``repro.crypto`` / ``repro.pqc`` are
written to read like the specs; this package holds their performance
twins: lane-packed bigint polynomial arithmetic for Kyber/Dilithium,
codegen-unrolled Haraka permutations, table-driven GHASH and GF(256),
windowed EC scalar multiplication, and CRT RSA. Every kernel is
byte-for-byte equivalent to its reference twin (property-tested in
``tests/crypto/test_kernels.py``), so which side runs never changes
wire artefacts, cache keys, or recorded handshakes — only wall clock.

Selection
---------
``PQTLS_KERNELS=fast|ref`` (default ``fast``) picks the active side at
import time. The reference side stays runnable forever as the
correctness oracle; CI exercises it on every push.

Mechanics
---------
Each reference module registers its switchable entry points at the
bottom of the file::

    from repro.crypto import kernels
    kernels.bind(sys.modules[__name__], "ntt", ref=ntt, fast=_fast.ntt)

``bind`` installs the active side via ``setattr`` on the owning module
or class and records the pair, so :func:`set_mode` / :func:`override`
can rebind everything at runtime — which is how the equivalence tests
drive both sides in one process. Call sites must therefore resolve the
attribute at call time (``poly.ntt(...)``, ``self.encrypt_block(...)``),
never hold a direct reference from an early ``from x import y``.

Kernel modules in this package never import the reference module they
accelerate (the reference module imports *them* for binding); shared
constants live in leaf modules like ``repro.crypto._aestables``.
"""

from __future__ import annotations

import contextlib
import os

ENV_VAR = "PQTLS_KERNELS"
MODES = ("fast", "ref")


def configured_mode() -> str:
    """The mode requested by the environment (validated, default fast)."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return "fast"
    value = raw.strip().lower()
    if value not in MODES:
        raise ValueError(
            f"{ENV_VAR} must be one of {'/'.join(MODES)}, got {raw!r}")
    return value


_mode = configured_mode()

# Every registered switch point: (owner object, attribute, ref, fast).
_BINDINGS: list[tuple[object, str, object, object]] = []


def mode() -> str:
    """The currently active mode (``"fast"`` or ``"ref"``)."""
    return _mode


def fast_enabled() -> bool:
    return _mode == "fast"


def bind(owner: object, name: str, *, ref: object, fast: object) -> None:
    """Register a ref/fast pair and install the active side on *owner*.

    *owner* is a module or a class; plain functions become methods when
    bound on a class (pass ``staticmethod(...)`` wrappers for static
    entry points). Binding is idempotent per (owner, name): re-binding
    replaces the previous registration.
    """
    global _BINDINGS
    _BINDINGS = [b for b in _BINDINGS if not (b[0] is owner and b[1] == name)]
    _BINDINGS.append((owner, name, ref, fast))
    setattr(owner, name, fast if _mode == "fast" else ref)


def set_mode(value: str) -> None:
    """Switch every registered binding to *value* (``fast`` or ``ref``)."""
    global _mode
    if value not in MODES:  # pqtls: allow[CT001] — mode name, not secret data
        raise ValueError(f"mode must be one of {'/'.join(MODES)}, got {value!r}")
    _mode = value
    for owner, name, ref, fast in _BINDINGS:
        setattr(owner, name, fast if value == "fast" else ref)  # pqtls: allow[CT001]


@contextlib.contextmanager
def override(value: str):
    """Temporarily run under *value* mode (used by the equivalence tests)."""
    previous = _mode
    set_mode(value)  # pqtls: allow[CT110] — mode label, not secret data
    try:
        yield
    finally:
        set_mode(previous)


def bindings() -> list[tuple[object, str]]:
    """The registered switch points, as (owner, attribute) pairs."""
    return [(owner, name) for owner, name, _, _ in _BINDINGS]


_KERNEL_MODULES = ("aes", "dilithium", "ec", "gcm", "gf256", "haraka",
                   "hqc", "kyber", "rsa")


def warm() -> list[str]:
    """Build every kernel's lazy tables now; returns the modules touched.

    Imports all kernel submodules (paying their import-time constant
    derivation) and invokes each module-level ``warm()`` hook where one
    exists, so first-use costs — e.g. the 64 KiB GF(256) product table
    or the numpy gather tables — are paid once at executor worker
    startup instead of in the middle of the first recorded experiment.
    """
    import importlib

    warmed = []
    for name in _KERNEL_MODULES:
        module = importlib.import_module(f"{__name__}.{name}")
        hook = getattr(module, "warm", None)
        if hook is not None:
            hook()
        warmed.append(name)
    return warmed
