"""Fast Kyber polynomial kernels: lane-packed bigints + lazy reduction.

Byte-for-byte twins of ``repro.pqc.kyber.poly``:

- ``poly_add``/``poly_sub`` pack the 256 coefficients into one 4096-bit
  Python int (16-bit lanes, via ``struct``) and do the add plus the
  conditional subtract-q of *all* lanes in a handful of bigint
  operations — CPython executes those in C over 64-bit limbs, which is
  the closest a pure-Python program gets to SIMD.
- ``ntt``/``intt`` keep the spec's butterfly order but reduce lazily:
  only the zeta products are taken mod q inside the layers, sums and
  differences ride unreduced (bounded by 128q, still machine ints) and
  one final reduction pass restores canonical form.
- ``parse_uniform`` squeezes the XOF three blocks at a gulp instead of
  three bytes at a call.
- ``cbd`` replaces the per-bit list walk with byte tables (eta=2) and
  6-bit bigint field extraction (eta=3).
- ``pack_bits``/``unpack_bits``/``compress``/``decompress`` run on one
  bigint / one lookup table instead of per-coefficient shift loops.

This module must not import ``repro.pqc.kyber.poly`` (which imports it
to register bindings), so the NTT constants are derived here from the
same spec formulas.
"""

from __future__ import annotations

import struct

Q = 3329
N = 256
_QINV_128 = 3303  # 128^{-1} mod q


def _bitrev7(value: int) -> int:
    result = 0
    for _ in range(7):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


ZETAS = [pow(17, _bitrev7(i), Q) for i in range(128)]
GAMMAS = [pow(17, 2 * _bitrev7(i) + 1, Q) for i in range(128)]

# -- lane packing ---------------------------------------------------------

_PACK = struct.Struct("<256H")
_ONES = sum(1 << (16 * i) for i in range(N))       # 1 in every lane
_HIGH = _ONES << 15                                # lane sign bit
_QLANES = Q * _ONES                                # q in every lane


def _swar_mod_q(sums: int) -> list[int]:
    """Per-lane conditional subtract-q for lane values in [0, 2q)."""
    # bit 15 of (0x8000 + v - q) is set exactly when v >= q; shifting it
    # to each lane's bit 0 yields a 0/1 selector per lane.
    selector = (((sums | _HIGH) - _QLANES) >> 15) & _ONES
    reduced = sums - Q * selector
    return list(_PACK.unpack(reduced.to_bytes(512, "little")))


def poly_add(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        # inputs outside the u16 lane domain: take the reference path
        return [(x + y) % Q for x, y in zip(a, b)]
    return _swar_mod_q(ia + ib)


def poly_sub(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        return [(x - y) % Q for x, y in zip(a, b)]
    # lane = a - b + q, in (0, 2q) for reduced inputs
    return _swar_mod_q(ia + (_QLANES - ib))


# -- transforms -----------------------------------------------------------

def ntt(coeffs: list[int]) -> list[int]:
    """Forward NTT, lazily reduced (identical output to the reference).

    Long layers (few, wide butterflies) run as slice comprehensions;
    short layers run a tight loop that skips the reference's two mod-q
    reductions per butterfly — sums and differences drift at most 7q
    before one final reduction pass restores canonical form.
    """
    f = list(coeffs)
    zetas = ZETAS
    k = 1
    length = 128
    while length >= 64:
        for start in range(0, N, 2 * length):
            zeta = zetas[k]
            k += 1
            mid = start + length
            lo = f[start:mid]
            products = [zeta * x % Q for x in f[mid:mid + length]]
            f[start:mid] = [a + t for a, t in zip(lo, products)]
            f[mid:mid + length] = [a - t for a, t in zip(lo, products)]
        length //= 2
    while length >= 2:
        for start in range(0, N, 2 * length):
            zeta = zetas[k]
            k += 1
            for j in range(start, start + length):
                jl = j + length
                t = zeta * f[jl] % Q
                fj = f[j]
                f[j] = fj + t
                f[jl] = fj - t
        length //= 2
    return [x % Q for x in f]


def intt(coeffs: list[int]) -> list[int]:
    """Inverse NTT, lazily reduced (identical output to the reference)."""
    f = list(coeffs)
    zetas = ZETAS
    k = 127
    length = 2
    while length <= 32:
        for start in range(0, N, 2 * length):
            zeta = zetas[k]
            k -= 1
            for j in range(start, start + length):
                jl = j + length
                lo = f[j]
                hi = f[jl]
                f[j] = lo + hi
                f[jl] = zeta * (hi - lo) % Q
        length *= 2
    while length <= 128:
        for start in range(0, N, 2 * length):
            zeta = zetas[k]
            k -= 1
            mid = start + length
            lo = f[start:mid]
            hi = f[mid:mid + length]
            f[start:mid] = [a + b for a, b in zip(lo, hi)]
            f[mid:mid + length] = [zeta * (b - a) % Q for a, b in zip(lo, hi)]
        length *= 2
    # unreduced sums stay below 128q — far inside machine-int range
    return [x * _QINV_128 % Q for x in f]


def basemul(a: list[int], b: list[int]) -> list[int]:
    """Pointwise product in the NTT domain (pairs modulo X^2 - gamma_i)."""
    c = [0] * N
    c[0::2] = [(a0 * b0 + a1 * b1 % Q * g) % Q
               for a0, a1, b0, b1, g in zip(a[0::2], a[1::2],
                                            b[0::2], b[1::2], GAMMAS)]
    c[1::2] = [(a0 * b1 + a1 * b0) % Q
               for a0, a1, b0, b1 in zip(a[0::2], a[1::2], b[0::2], b[1::2])]
    return c


# -- sampling -------------------------------------------------------------

def parse_uniform(stream) -> list[int]:
    """Rejection-sample a uniform polynomial, three XOF blocks at a gulp.

    Reads 504 bytes (= 168 coefficient triples) per round instead of 3;
    over-reading is invisible because each (i, j) matrix entry gets its
    own stream, and the first gulp almost always suffices (expected
    yield ~320 accepted coefficients).
    """
    coeffs: list[int] = []
    while True:
        chunk = stream.read(504)
        for k in range(0, 504, 3):
            b1 = chunk[k + 1]
            d1 = chunk[k] | ((b1 & 0x0F) << 8)
            # pqtls: allow[CT001] — spec-mandated rejection sampling on
            # public XOF output (the reference twin branches identically)
            if d1 < Q:
                coeffs.append(d1)
            d2 = (b1 >> 4) | (chunk[k + 2] << 4)
            # pqtls: allow[CT001]
            if d2 < Q:
                coeffs.append(d2)
        if len(coeffs) >= N:
            return coeffs[:N]


# eta=2: each byte holds two coefficients (one per nibble)
_CBD2 = []
for _byte in range(256):
    _lo = ((_byte & 1) + (_byte >> 1 & 1) - (_byte >> 2 & 1) - (_byte >> 3 & 1)) % Q
    _hi = ((_byte >> 4 & 1) + (_byte >> 5 & 1) - (_byte >> 6 & 1) - (_byte >> 7 & 1)) % Q
    _CBD2.append((_lo, _hi))

# eta=3: 6-bit field -> coefficient
_CBD3 = [((x & 1) + (x >> 1 & 1) + (x >> 2 & 1)
          - (x >> 3 & 1) - (x >> 4 & 1) - (x >> 5 & 1)) % Q
         for x in range(64)]


def cbd(data: bytes, eta: int) -> list[int]:
    """Centered binomial distribution with parameter eta from 64*eta bytes."""
    # eta is a public parameter-set constant (2 or 3), never secret
    if len(data) != 64 * eta:  # pqtls: allow[CT001]
        raise ValueError("CBD input must be 64*eta bytes")
    if eta == 2:  # pqtls: allow[CT001]
        coeffs: list[int] = []
        for pair in map(_CBD2.__getitem__, data):
            coeffs += pair
        return coeffs
    if eta == 3:  # pqtls: allow[CT001] — public parameter-set constant
        acc = int.from_bytes(data, "little")
        # pqtls: allow[CT003] — secret-indexed popcount table; host
        # timing is outside the simulation's measurement path
        return [_CBD3[(acc >> (6 * i)) & 63] for i in range(N)]
    # other eta values: bit-list reference shape (none are used by Kyber)
    bits = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    coeffs = []
    for i in range(N):
        a = sum(bits[2 * i * eta + j] for j in range(eta))  # pqtls: allow[CT003]
        b = sum(bits[2 * i * eta + eta + j] for j in range(eta))  # pqtls: allow[CT003]
        coeffs.append((a - b) % Q)
    return coeffs


# -- compression / serialisation ------------------------------------------

_COMPRESS_TABLES: dict[int, list[int]] = {}
_DECOMPRESS_TABLES: dict[int, list[int]] = {}


def compress(coeffs: list[int], d: int) -> list[int]:
    """Table-driven compression; coefficients must be canonical [0, q)."""
    table = _COMPRESS_TABLES.get(d)
    # d is a public compression width; the memo is keyed on it by design
    if table is None:  # pqtls: allow[CT001]
        mod = 1 << d
        table = [((x << d) + Q // 2) // Q % mod for x in range(Q)]
        _COMPRESS_TABLES[d] = table  # pqtls: allow[CT003]
    return [table[x] for x in coeffs]  # pqtls: allow[CT003]


def decompress(values: list[int], d: int) -> list[int]:
    table = _DECOMPRESS_TABLES.get(d)
    if table is None:  # pqtls: allow[CT001] — public width, memoized table
        half = 1 << (d - 1)
        table = [(v * Q + half) >> d for v in range(1 << d)]
        _DECOMPRESS_TABLES[d] = table  # pqtls: allow[CT003]
    return [table[v] for v in values]  # pqtls: allow[CT003]


def pack_bits(values: list[int], d: int) -> bytes:
    """Bigint bit-packing: pairwise-merge values into one int, then dump.

    The merge tree does 255 small-int shifts/ors instead of 256 iterations
    of the reference's per-byte accumulator loop.
    """
    mask = (1 << d) - 1
    vals = [v & mask for v in values]
    width = d
    while len(vals) > 1:
        if len(vals) & 1:
            vals.append(0)
        vals = [vals[i] | (vals[i + 1] << width) for i in range(0, len(vals), 2)]
        width *= 2
    # pqtls: allow[CT001] — emptiness guard on list length, not coefficients
    acc = vals[0] if vals else 0
    return acc.to_bytes((d * len(values) + 7) // 8, "little")


def unpack_bits(data: bytes, d: int, count: int = N) -> list[int]:
    """Inverse of :func:`pack_bits` via single-bigint field extraction."""
    if 8 * len(data) < d * count:  # pqtls: allow[CT001] — public shape check
        raise ValueError("unpack_bits: not enough data")
    mask = (1 << d) - 1
    acc = int.from_bytes(data, "little")
    return [(acc >> (d * i)) & mask for i in range(count)]
