"""CRT RSA private-key kernel.

Fast twin of ``RsaPrivateKey._decrypt``: split the private
exponentiation across the prime factors (two half-size ``pow`` calls
cost ~1/4 of one full-size one) and recombine with Garner's formula.
The per-key exponents ``d mod (p-1)`` / ``d mod (q-1)`` and the CRT
coefficient ``q^-1 mod p`` are memoized, so repeated signatures under
one certificate key pay only the two modexps.

The result is exactly ``pow(c, d, n)`` — the reference twin — for any
valid key, so signatures are byte-identical across modes.

Key generation is deliberately *not* kernelised: it consumes the
deterministic DRBG, and any change to its candidate/witness schedule
would change every derived key and wire artefact.
"""

from __future__ import annotations

import functools


@functools.lru_cache(maxsize=256)
def _crt_params(p: int, q: int, d: int) -> tuple[int, int, int]:
    # Fermat inverse: p is prime and q is coprime to it, and pow() avoids
    # running extended Euclid over the secret factors
    return d % (p - 1), d % (q - 1), pow(q, p - 2, p)


def private_op(self, c: int) -> int:
    """CRT private-key operation; drop-in for ``RsaPrivateKey._decrypt``."""
    dp, dq, qinv = _crt_params(self.p, self.q, self.d)
    mp = pow(c % self.p, dp, self.p)
    mq = pow(c % self.q, dq, self.q)
    h = (mp - mq) * qinv % self.p
    return mq + self.q * h
