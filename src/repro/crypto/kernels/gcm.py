"""Fast GHASH: per-key byte-position tables (Shoup's 8-bit method).

The reference ``_Ghash`` multiplies by H with a 128-iteration bit-serial
loop per block. This kernel precomputes, once per hash key H, sixteen
256-entry tables ``M[j][b] = (b << (8 * (15 - j))) * H`` in GF(2^128),
so one block multiply becomes 16 table lookups XORed together — about
an order of magnitude fewer Python operations. Tables are memoized per
key (GCM re-derives the same H for every record of a connection).

Table indices are ciphertext/AAD bytes, not long-term secrets, but the
lookup pattern still leaks through host timing; that is an accepted
trade everywhere in the kernels package — simulated latencies come from
the calibrated cost model, not wall clock.
"""

from __future__ import annotations

import functools

# GHASH reduction constant: x^128 + x^7 + x^2 + x + 1, bit-reflected.
_R = 0xE1000000000000000000000000000000


@functools.lru_cache(maxsize=64)
def _tables(h_bytes: bytes) -> tuple[tuple[int, ...], ...]:
    """Sixteen 256-entry multiply tables for hash key ``h_bytes``.

    ``P[k] = (1 << k) * H`` for all 128 bit positions comes from a single
    halving walk (the reference gf_mul's state sequence); each table row
    then fills composite bytes as ``row[b] = row[b & (b-1)] ^ row[b & -b]``
    (XOR of the two sub-masks), touching every entry exactly once.
    """
    value = int.from_bytes(h_bytes, "big")
    powers = [0] * 128
    for i in range(127, -1, -1):
        powers[i] = value
        # pqtls: allow[CT001] — H-dependent reduce in the one-time-per-key
        # Shoup table build; per-record processing is pure table lookups
        value = (value >> 1) ^ _R if value & 1 else value >> 1
    tables = []
    for byte_index in range(16):
        base_bit = 8 * (15 - byte_index)
        row = [0] * 256
        for bit in range(8):
            row[1 << bit] = powers[base_bit + bit]
        for b in range(1, 256):
            low = b & -b
            rest = b ^ low
            if rest:
                row[b] = row[rest] ^ row[low]
        tables.append(tuple(row))
    return tuple(tables)


class Ghash:
    """Table-driven GHASH; drop-in for the reference ``_Ghash``."""

    def __init__(self, h: bytes):
        self._tables = _tables(h)  # pqtls: allow[CT110] — table build is allowed at the sink (see gcm.py:39)
        self._acc = 0

    def update_block(self, block: bytes) -> None:
        x = self._acc ^ int.from_bytes(block, "big")
        t = self._tables
        # pqtls: allow[CT003] — data-indexed multiply tables by design
        self._acc = (t[0][x >> 120 & 0xFF] ^ t[1][x >> 112 & 0xFF]
                     ^ t[2][x >> 104 & 0xFF] ^ t[3][x >> 96 & 0xFF]
                     ^ t[4][x >> 88 & 0xFF] ^ t[5][x >> 80 & 0xFF]
                     ^ t[6][x >> 72 & 0xFF] ^ t[7][x >> 64 & 0xFF]
                     ^ t[8][x >> 56 & 0xFF] ^ t[9][x >> 48 & 0xFF]
                     ^ t[10][x >> 40 & 0xFF] ^ t[11][x >> 32 & 0xFF]
                     ^ t[12][x >> 24 & 0xFF] ^ t[13][x >> 16 & 0xFF]
                     ^ t[14][x >> 8 & 0xFF] ^ t[15][x & 0xFF])

    def update(self, data: bytes) -> None:
        # Each update() call zero-pads its own tail to a full block —
        # GCM hashes AAD and ciphertext as independently padded strings.
        for i in range(0, len(data), 16):
            chunk = data[i:i + 16]
            if len(chunk) < 16:
                chunk = chunk.ljust(16, b"\x00")
            self.update_block(chunk)  # pqtls: allow[CT110] — table-lookup GHASH is allowed at the sink, as the reference

    def digest(self) -> bytes:
        return self._acc.to_bytes(16, "big")
