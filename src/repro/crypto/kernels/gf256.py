"""Table-gather GF(2^8) polynomial multiplication (HQC's field, 0x11D).

Fast twin of ``repro.pqc.hqc.gf256.poly_mul``. Two regimes:

- **Small operands** keep PR 4's flat 64 KiB product table: the inner
  loop's ``gf_mul`` call (two log lookups, an add, an exp lookup, plus
  zero guards) collapses to a single byte fetch. Below ``_NUMPY_MIN``
  coefficient-products, interpreter dispatch beats array setup.
- **Everything else** is one numpy gather pipeline: log both operands,
  gather ``EXP[log a_i + log b_j]`` for the full outer product, then
  XOR-reduce the anti-diagonals through a strided view (each row of a
  ``(na, width+1)`` scratch buffer re-read at width ``width`` lands row
  *i* shifted right by *i* — the convolution alignment — with no Python
  loop). Zero operands need no masking: ``LOG[0]`` is a sentinel index
  into a zero-padded EXP table, so their products gather 0.

Output is identical either way — GF(256) multiplication has one answer,
and XOR accumulation is order-independent.

Self-contained: this module derives its own exp/log tables from the
same generator polynomial instead of importing ``repro.pqc.hqc.gf256``
(which imports it to register the binding). ``repro.crypto.kernels.hqc``
shares the numpy tables via :func:`np_tables`.

Reed–Solomon decoding runs ``poly_mul`` over syndrome/locator
polynomials derived from secret-adjacent codewords; like the reference,
the small-operand path branches on coefficient values and both paths
index tables by them (flagged lines carry ``pqtls: allow`` pragmas —
host timing is outside the simulation's measurement path).
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11D

# sentinel log of zero: EXP_NP[i] == 0 for every reachable sum involving
# it (the table is zero beyond index 509), so zero coefficients
# contribute nothing without a mask pass
_LOG_ZERO = 1280

# below this many coefficient-products, the flat-table loop wins
_NUMPY_MIN = 128

_MUL: bytes | None = None
_NP: tuple[np.ndarray, np.ndarray] | None = None


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


def _build_mul_table() -> bytes:
    exp, log = _build_tables()
    table = bytearray(65536)
    for x in range(1, 256):
        row = x << 8
        log_x = log[x]
        for y in range(1, 256):
            table[row | y] = exp[log_x + log[y]]
    return bytes(table)


def _mul_table() -> bytes:
    global _MUL
    if _MUL is None:
        _MUL = _build_mul_table()
    return _MUL


def np_tables() -> tuple[np.ndarray, np.ndarray]:
    """(EXP, LOG) as numpy gather tables with the zero sentinel.

    ``EXP`` has ``2 * _LOG_ZERO + 1`` int32 entries, zero past index
    509; ``LOG`` maps 0 to ``_LOG_ZERO``. Shared with the HQC decode
    kernels in ``repro.crypto.kernels.hqc``.
    """
    global _NP
    if _NP is None:
        exp, log = _build_tables()
        exp_np = np.zeros(2 * _LOG_ZERO + 1, dtype=np.int32)
        exp_np[:510] = exp[:510]
        log_np = np.full(256, _LOG_ZERO, dtype=np.int32)
        log_np[1:] = [log[v] for v in range(1, 256)]
        _NP = (exp_np, log_np)
    return _NP


def warm() -> None:
    """Build both lazy tables (called once per executor worker)."""
    _mul_table()
    np_tables()


def poly_mul(a: list[int], b: list[int]) -> list[int]:
    """Multiply polynomials with coefficients in GF(256) (index = degree)."""
    # public operand shapes pick the regime
    if len(a) * len(b) < _NUMPY_MIN:
        out = [0] * (len(a) + len(b) - 1)
        mul = _mul_table()
        for i, ai in enumerate(a):
            # pqtls: allow[CT001] — sparsity skip, same shape as the reference
            if ai:
                row = ai << 8
                for j, bj in enumerate(b):
                    # pqtls: allow[CT001]
                    if bj:
                        out[i + j] ^= mul[row | bj]  # pqtls: allow[CT003]
        return out
    exp_np, log_np = np_tables()
    la = log_np[np.asarray(a, dtype=np.int32)]  # pqtls: allow[CT003]
    lb = log_np[np.asarray(b, dtype=np.int32)]  # pqtls: allow[CT003]
    prod = exp_np[la[:, None] + lb[None, :]]  # pqtls: allow[CT003]
    na, nb = len(a), len(b)
    width = na + nb - 1
    # strided diagonal alignment: re-reading the (na, width + 1) buffer
    # at row width `width` shifts row i right by i, landing prod[i][j]
    # on output column i + j with zero padding everywhere else
    buf = np.zeros((na, width + 1), dtype=np.int32)
    buf[:, :nb] = prod
    shifted = buf.ravel()[: na * width].reshape(na, width)
    return np.bitwise_xor.reduce(shifted, axis=0).tolist()
