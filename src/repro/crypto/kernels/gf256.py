"""Table-driven GF(2^8) polynomial multiplication (HQC's field, 0x11D).

Fast twin of ``repro.pqc.hqc.gf256.poly_mul``: a lazily built 64 KiB
flat product table turns the inner loop's ``gf_mul`` call (two log
lookups, an add, an exp lookup, plus zero guards) into a single byte
fetch. Output is identical — GF(256) multiplication has one answer.

Self-contained: this module derives its own exp/log tables from the
same generator polynomial instead of importing ``repro.pqc.hqc.gf256``
(which imports it to register the binding).

Reed–Solomon decoding runs ``poly_mul`` over syndrome/locator
polynomials derived from secret-adjacent codewords; like the reference,
the sparsity guards branch on coefficient values (flagged lines carry
``pqtls: allow`` pragmas — host timing is outside the simulation's
measurement path).
"""

from __future__ import annotations

_POLY = 0x11D

_MUL: bytes | None = None


def _build_mul_table() -> bytes:
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    table = bytearray(65536)
    for x in range(1, 256):
        row = x << 8
        log_x = log[x]
        for y in range(1, 256):
            table[row | y] = exp[log_x + log[y]]
    return bytes(table)


def _mul_table() -> bytes:
    global _MUL
    if _MUL is None:
        _MUL = _build_mul_table()
    return _MUL


def poly_mul(a: list[int], b: list[int]) -> list[int]:
    """Multiply polynomials with coefficients in GF(256) (index = degree)."""
    out = [0] * (len(a) + len(b) - 1)
    mul = _mul_table()
    for i, ai in enumerate(a):
        # pqtls: allow[CT001] — sparsity skip, same shape as the reference
        if ai:
            row = ai << 8
            for j, bj in enumerate(b):
                # pqtls: allow[CT001]
                if bj:
                    out[i + j] ^= mul[row | bj]  # pqtls: allow[CT003]
    return out
