"""Fast Dilithium polynomial kernels (lane-packed add/sub, lazy NTT).

Byte-for-byte twins of ``repro.pqc.dilithium.poly``: ``add``/``sub``
pack the 256 coefficients into 32-bit lanes of one bigint and reduce all
lanes with a single conditional-subtract sequence; ``ntt``/``intt`` keep
the reference butterfly order but defer reduction of sums/differences to
one final pass (growth stays far below machine-int range: at most 8q
forward, 256q inverse); ``pointwise`` and the bit packers use the same
comprehension/bigint shapes as the Kyber kernels.

Constants are re-derived here from the round-3 spec formulas — this
module must not import ``repro.pqc.dilithium.poly``, which imports it to
register the ref/fast bindings.
"""

from __future__ import annotations

import struct

Q = 8380417
N = 256
_N_INV = pow(N, Q - 2, Q)


def _bitrev8(value: int) -> int:
    result = 0
    for _ in range(8):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


ZETAS = [pow(1753, _bitrev8(i), Q) for i in range(256)]

_PACK = struct.Struct("<256I")
_ONES = sum(1 << (32 * i) for i in range(N))
_HIGH = _ONES << 31
_QLANES = Q * _ONES


def _swar_mod_q(sums: int) -> list[int]:
    """Per-lane conditional subtract-q for lane values in [0, 2q)."""
    selector = (((sums | _HIGH) - _QLANES) >> 31) & _ONES
    reduced = sums - Q * selector
    return list(_PACK.unpack(reduced.to_bytes(1024, "little")))


def add(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        return [(x + y) % Q for x, y in zip(a, b)]
    return _swar_mod_q(ia + ib)


def sub(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        return [(x - y) % Q for x, y in zip(a, b)]
    return _swar_mod_q(ia + (_QLANES - ib))


def ntt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    zetas = ZETAS
    k = 0
    length = 128
    while length >= 64:
        for start in range(0, N, 2 * length):
            k += 1
            zeta = zetas[k]
            mid = start + length
            lo = f[start:mid]
            products = [zeta * x % Q for x in f[mid:mid + length]]
            f[start:mid] = [x + t for x, t in zip(lo, products)]
            f[mid:mid + length] = [x - t for x, t in zip(lo, products)]
        length //= 2
    while length >= 1:
        for start in range(0, N, 2 * length):
            k += 1
            zeta = zetas[k]
            for j in range(start, start + length):
                jl = j + length
                t = zeta * f[jl] % Q
                fj = f[j]
                f[j] = fj + t
                f[jl] = fj - t
        length //= 2
    return [x % Q for x in f]


def intt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    zetas = ZETAS
    k = 256
    length = 1
    while length <= 32:
        for start in range(0, N, 2 * length):
            k -= 1
            zeta = zetas[k]
            for j in range(start, start + length):
                jl = j + length
                lo = f[j]
                hi = f[jl]
                f[j] = lo + hi
                f[jl] = zeta * (hi - lo) % Q
        length *= 2
    while length < N:
        for start in range(0, N, 2 * length):
            k -= 1
            zeta = zetas[k]
            mid = start + length
            lo = f[start:mid]
            hi = f[mid:mid + length]
            f[start:mid] = [x + y for x, y in zip(lo, hi)]
            f[mid:mid + length] = [zeta * (y - x) % Q for x, y in zip(lo, hi)]
        length *= 2
    return [x * _N_INV % Q for x in f]


def pointwise(a: list[int], b: list[int]) -> list[int]:
    return [x * y % Q for x, y in zip(a, b)]


def pack_bits(values: list[int], bits: int) -> bytes:
    """Bigint bit-packing (merge tree), identical output to the reference."""
    mask = (1 << bits) - 1
    vals = [v & mask for v in values]
    width = bits
    while len(vals) > 1:
        if len(vals) & 1:
            vals.append(0)
        vals = [vals[i] | (vals[i + 1] << width) for i in range(0, len(vals), 2)]
        width *= 2
    # pqtls: allow[CT001] — emptiness guard on list length, not coefficients
    acc = vals[0] if vals else 0
    return acc.to_bytes((bits * len(values) + 7) // 8, "little")


def unpack_bits(data: bytes, bits: int, count: int = N) -> list[int]:
    if 8 * len(data) < bits * count:  # pqtls: allow[CT001] — public shape check
        raise ValueError("unpack_bits: not enough data")
    mask = (1 << bits) - 1
    acc = int.from_bytes(data, "little")
    return [(acc >> (bits * i)) & mask for i in range(count)]
