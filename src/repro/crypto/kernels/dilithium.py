"""Fast Dilithium polynomial kernels (lane-packed add/sub, batched numpy).

Byte-for-byte twins of ``repro.pqc.dilithium.poly``: ``add``/``sub``
pack the 256 coefficients into 32-bit lanes of one bigint and reduce all
lanes with a single conditional-subtract sequence; ``ntt``/``intt`` keep
the reference butterfly order but defer reduction of sums/differences to
one final pass (growth stays far below machine-int range: at most 8q
forward, 256q inverse); ``pointwise`` and the bit packers use the same
comprehension/bigint shapes as the Kyber kernels.

The ``*_vec`` family batches whole polynomial vectors — the unit of work
in Dilithium's sign rejection loop — as (rows, 256) int64 numpy arrays:
layer-parallel NTT/INTT butterflies (zeta slice ``ZETAS[m : 2m]`` for the
layer with m blocks, reversed on the inverse), one broadcast
matrix–vector pointwise accumulate, and Decompose/hint/norm arithmetic
as elementwise array ops. All arithmetic is exact mod-q integer math
(products bounded by q^2 < 2^63), so outputs equal the scalar reference
loops coefficient for coefficient.

Constants are re-derived here from the round-3 spec formulas — this
module must not import ``repro.pqc.dilithium.poly``, which imports it to
register the ref/fast bindings.
"""

from __future__ import annotations

import struct

import numpy as np

Q = 8380417
N = 256
_N_INV = pow(N, Q - 2, Q)


def _bitrev8(value: int) -> int:
    result = 0
    for _ in range(8):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


ZETAS = [pow(1753, _bitrev8(i), Q) for i in range(256)]

_PACK = struct.Struct("<256I")
_ONES = sum(1 << (32 * i) for i in range(N))
_HIGH = _ONES << 31
_QLANES = Q * _ONES


def _swar_mod_q(sums: int) -> list[int]:
    """Per-lane conditional subtract-q for lane values in [0, 2q)."""
    selector = (((sums | _HIGH) - _QLANES) >> 31) & _ONES
    reduced = sums - Q * selector
    return list(_PACK.unpack(reduced.to_bytes(1024, "little")))


def add(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        return [(x + y) % Q for x, y in zip(a, b)]
    return _swar_mod_q(ia + ib)


def sub(a: list[int], b: list[int]) -> list[int]:
    try:
        ia = int.from_bytes(_PACK.pack(*a), "little")
        ib = int.from_bytes(_PACK.pack(*b), "little")
    except struct.error:
        return [(x - y) % Q for x, y in zip(a, b)]
    return _swar_mod_q(ia + (_QLANES - ib))


def ntt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    zetas = ZETAS
    k = 0
    length = 128
    while length >= 64:
        for start in range(0, N, 2 * length):
            k += 1
            zeta = zetas[k]
            mid = start + length
            lo = f[start:mid]
            products = [zeta * x % Q for x in f[mid:mid + length]]
            f[start:mid] = [x + t for x, t in zip(lo, products)]
            f[mid:mid + length] = [x - t for x, t in zip(lo, products)]
        length //= 2
    while length >= 1:
        for start in range(0, N, 2 * length):
            k += 1
            zeta = zetas[k]
            for j in range(start, start + length):
                jl = j + length
                t = zeta * f[jl] % Q
                fj = f[j]
                f[j] = fj + t
                f[jl] = fj - t
        length //= 2
    return [x % Q for x in f]


def intt(coeffs: list[int]) -> list[int]:
    f = list(coeffs)
    zetas = ZETAS
    k = 256
    length = 1
    while length <= 32:
        for start in range(0, N, 2 * length):
            k -= 1
            zeta = zetas[k]
            for j in range(start, start + length):
                jl = j + length
                lo = f[j]
                hi = f[jl]
                f[j] = lo + hi
                f[jl] = zeta * (hi - lo) % Q
        length *= 2
    while length < N:
        for start in range(0, N, 2 * length):
            k -= 1
            zeta = zetas[k]
            mid = start + length
            lo = f[start:mid]
            hi = f[mid:mid + length]
            f[start:mid] = [x + y for x, y in zip(lo, hi)]
            f[mid:mid + length] = [zeta * (y - x) % Q for x, y in zip(lo, hi)]
        length *= 2
    return [x * _N_INV % Q for x in f]


def pointwise(a: list[int], b: list[int]) -> list[int]:
    return [x * y % Q for x, y in zip(a, b)]


def pack_bits(values: list[int], bits: int) -> bytes:
    """Bigint bit-packing (merge tree), identical output to the reference."""
    mask = (1 << bits) - 1
    vals = [v & mask for v in values]
    width = bits
    while len(vals) > 1:
        if len(vals) & 1:
            vals.append(0)
        vals = [vals[i] | (vals[i + 1] << width) for i in range(0, len(vals), 2)]
        width *= 2
    # pqtls: allow[CT001] — emptiness guard on list length, not coefficients
    acc = vals[0] if vals else 0
    return acc.to_bytes((bits * len(values) + 7) // 8, "little")


def unpack_bits(data: bytes, bits: int, count: int = N) -> list[int]:
    if 8 * len(data) < bits * count:  # pqtls: allow[CT001] — public shape check
        raise ValueError("unpack_bits: not enough data")
    mask = (1 << bits) - 1
    acc = int.from_bytes(data, "little")
    return [(acc >> (bits * i)) & mask for i in range(count)]


# -- batched polynomial-vector kernels (numpy int64) -------------------------

_ZETAS_NP = np.array(ZETAS, dtype=np.int64)


def _as_rows(rows) -> np.ndarray:
    return np.asarray(rows, dtype=np.int64)


def ntt_vec(rows: list[list[int]]) -> list[list[int]]:
    """Forward NTT of every row; layer-parallel butterflies."""
    f = _as_rows(rows) % Q
    nrows = f.shape[0]
    length = 128
    while length >= 1:
        nblocks = N // (2 * length)
        zetas = _ZETAS_NP[nblocks: 2 * nblocks][None, :, None]
        g = f.reshape(nrows, nblocks, 2, length)
        lo = g[:, :, 0, :]
        t = (zetas * g[:, :, 1, :]) % Q
        f = np.stack(((lo + t) % Q, (lo - t) % Q), axis=2).reshape(nrows, N)
        length //= 2
    return f.tolist()


def intt_vec(rows: list[list[int]]) -> list[list[int]]:
    """Inverse NTT of every row (zeta slice reversed per layer)."""
    f = _as_rows(rows) % Q
    nrows = f.shape[0]
    length = 1
    while length < N:
        nblocks = N // (2 * length)
        zetas = _ZETAS_NP[nblocks: 2 * nblocks][::-1][None, :, None]
        g = f.reshape(nrows, nblocks, 2, length)
        lo = g[:, :, 0, :]
        hi = g[:, :, 1, :]
        f = np.stack(
            ((lo + hi) % Q, (zetas * ((hi - lo) % Q)) % Q), axis=2
        ).reshape(nrows, N)
        length *= 2
    return ((f * _N_INV) % Q).tolist()


def pointwise_each(one: list[int], rows: list[list[int]]) -> list[list[int]]:
    return ((_as_rows(rows) * _as_rows(one)[None, :]) % Q).tolist()


def matvec_pointwise(mat, vec) -> list[list[int]]:
    """rows[i] = sum_j mat[i][j] * vec[j] (pointwise, mod q), NTT domain."""
    m = _as_rows(mat)
    v = _as_rows(vec)
    return (((m * v[None, :, :]) % Q).sum(axis=1) % Q).tolist()


def add_vec(a, b) -> list[list[int]]:
    return ((_as_rows(a) + _as_rows(b)) % Q).tolist()


def sub_vec(a, b) -> list[list[int]]:
    return ((_as_rows(a) - _as_rows(b)) % Q).tolist()


def neg_vec(rows) -> list[list[int]]:
    return ((-_as_rows(rows)) % Q).tolist()


def inf_norm_vec(rows) -> int:
    r = _as_rows(rows) % Q
    centered = np.where(r > Q // 2, r - Q, r)
    return int(np.abs(centered).max())


def _decompose_np(rows, alpha: int) -> tuple[np.ndarray, np.ndarray]:
    r = _as_rows(rows) % Q
    r0 = r % alpha
    r0 = np.where(r0 > alpha // 2, r0 - alpha, r0)
    wrap = (r - r0) == Q - 1  # the q-1 wraparound fix
    r1 = np.where(wrap, 0, (r - r0) // alpha)
    r0 = np.where(wrap, r0 - 1, r0)
    return r1, r0


def highbits_vec(rows, alpha: int) -> list[list[int]]:
    return _decompose_np(rows, alpha)[0].tolist()


def lowbits_vec(rows, alpha: int) -> list[list[int]]:
    return _decompose_np(rows, alpha)[1].tolist()


def make_hint_vec(z_rows, r_rows, alpha: int) -> list[list[int]]:
    """1 where adding z changes the high bits of r, elementwise."""
    r = _as_rows(r_rows)
    shifted = (r + _as_rows(z_rows)) % Q
    return (
        (_decompose_np(r, alpha)[0] != _decompose_np(shifted, alpha)[0])
        .astype(np.int64).tolist()
    )


def use_hint_vec(hints, rows, alpha: int) -> list[list[int]]:
    m = (Q - 1) // alpha
    r1, r0 = _decompose_np(rows, alpha)
    h = _as_rows(hints) != 0
    nudged = np.where(r0 > 0, (r1 + 1) % m, (r1 - 1) % m)
    return np.where(h, nudged, r1).tolist()


def power2round_vec(rows) -> tuple[list[list[int]], list[list[int]]]:
    """(t1 rows, t0 rows) with r = t1*2^D + t0, t0 in (-2^(D-1), 2^(D-1)]."""
    d = 13  # matches poly.D (dropped bits)
    r = _as_rows(rows) % Q
    r0 = r % (1 << d)
    r0 = np.where(r0 > (1 << (d - 1)), r0 - (1 << d), r0)
    return ((r - r0) >> d).tolist(), r0.tolist()


def rej_uniform(data: bytes, limit: int) -> tuple[list[int], int]:
    """Uniform-mod-q rejection sampling over 3-byte chunks (top bit cleared).

    Returns (accepted values, bytes consumed); consumption stops exactly
    after the chunk yielding the ``limit``-th acceptance, matching the
    reference byte-at-a-time loop.
    """
    chunks = len(data) // 3
    # pqtls: allow[CT001] — public stream-shape guards
    if chunks == 0 or limit <= 0:
        return [], 0
    # (parses the *public* matrix-A XOF stream; data/limit are never
    # secret at this call site)
    b = np.frombuffer(data[: 3 * chunks], dtype=np.uint8).reshape(chunks, 3)
    b = b.astype(np.int64)
    t = b[:, 0] | (b[:, 1] << 8) | ((b[:, 2] & 0x7F) << 16)
    good = t < Q
    counts = np.cumsum(good)
    if int(counts[-1]) <= limit:  # pqtls: allow[CT001] — public shape
        return t[good].tolist(), 3 * chunks  # pqtls: allow[CT003]
    stop = int(np.searchsorted(counts, limit)) + 1
    return t[:stop][good[:stop]].tolist(), 3 * stop  # pqtls: allow[CT003]
