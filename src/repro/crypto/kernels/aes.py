"""Fast AES block encryption: the 32-bit T-table formulation.

Four 256-entry tables fold SubBytes, ShiftRows and MixColumns into one
XOR chain per column per round — the classic Rijndael software shape.
The reference twin in ``repro.crypto.aes`` walks the FIPS 197 state
array byte by byte; this kernel is ~10x fewer Python operations per
block. Table indices depend on key and plaintext bytes, so this path is
deliberately not constant-time: simulated handshake latencies come from
the calibrated cost model, never from host wall clock (see DESIGN.md
"Fast kernels").
"""

from __future__ import annotations

from repro.crypto._aestables import SBOX, TE0, TE1, TE2, TE3


def encrypt_block(self, block: bytes) -> bytes:
    """T-table AES forward cipher; drop-in for ``AES.encrypt_block``."""
    if len(block) != 16:
        raise ValueError("AES block must be 16 bytes")
    rk = self._round_keys
    s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
    s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
    s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
    s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
    te0, te1, te2, te3 = TE0, TE1, TE2, TE3
    k = 4
    for _ in range(self.rounds - 1):
        # pqtls: allow[CT003] — data-dependent T-table lookups by design
        t0 = (te0[(s0 >> 24) & 0xFF] ^ te1[(s1 >> 16) & 0xFF]
              ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
        # pqtls: allow[CT003]
        t1 = (te0[(s1 >> 24) & 0xFF] ^ te1[(s2 >> 16) & 0xFF]
              ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
        # pqtls: allow[CT003]
        t2 = (te0[(s2 >> 24) & 0xFF] ^ te1[(s3 >> 16) & 0xFF]
              ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
        # pqtls: allow[CT003]
        t3 = (te0[(s3 >> 24) & 0xFF] ^ te1[(s0 >> 16) & 0xFF]
              ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
        k += 4
    sbox = SBOX
    # pqtls: allow[CT003] — final round S-box lookups
    out0 = ((sbox[(s0 >> 24) & 0xFF] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
    # pqtls: allow[CT003]
    out1 = ((sbox[(s1 >> 24) & 0xFF] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
    # pqtls: allow[CT003]
    out2 = ((sbox[(s2 >> 24) & 0xFF] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
    # pqtls: allow[CT003]
    out3 = ((sbox[(s3 >> 24) & 0xFF] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
    return (out0.to_bytes(4, "big") + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big") + out3.to_bytes(4, "big"))
