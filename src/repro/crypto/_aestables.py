"""AES lookup tables shared by the reference cipher and the fast kernels.

A leaf module with no intra-package imports: both ``repro.crypto.aes``
(reference implementation) and ``repro.crypto.kernels.aes`` /
``repro.crypto.kernels.haraka`` (fast twins) read these tables, and
keeping the constants here means neither side ever has to import the
other, which would be circular (the reference modules import the kernels
package at the bottom of their files to register ref/fast bindings).

The S-box is derived programmatically from the GF(2^8) inverse + affine
transform rather than pasted as constants; the T-tables fold SubBytes +
MixColumns into four 256-entry 32-bit tables (the classic Rijndael
formulation, the fastest portable pure-Python shape).
"""

from __future__ import annotations


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exponentiation by generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for byte in range(256):
        inverse = 0 if byte == 0 else exp[(255 - log[byte]) % 255]
        result = 0
        for bit in range(8):
            result |= (
                ((inverse >> bit)
                 ^ (inverse >> ((bit + 4) % 8))
                 ^ (inverse >> ((bit + 5) % 8))
                 ^ (inverse >> ((bit + 6) % 8))
                 ^ (inverse >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[byte] = result
    inv_sbox = [0] * 256
    for byte, substituted in enumerate(sbox):
        inv_sbox[substituted] = byte
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# T-tables: TE0[b] = MixColumn of column (S[b], S[b], S[b], S[b]) pattern.
TE0 = []
for _b in range(256):
    _s = SBOX[_b]
    _s2 = _xtime(_s)
    _s3 = _s2 ^ _s
    TE0.append((_s2 << 24) | (_s << 16) | (_s << 8) | _s3)
TE1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in TE0]
TE2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in TE0]
TE3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in TE0]

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
        0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]
