"""Constant-time helpers and audited declassification.

Pure Python can never be cycle-exact, but the pqtls-lint CT checker
enforces the same *structural* discipline constant-time C gives liboqs /
OpenSSL: no control flow and no memory indexing keyed on secrets.  These
helpers are the sanctioned escape hatches:

- :func:`ct_eq_bytes` / :func:`ct_select_bytes` express data-dependent
  choices (e.g. FO implicit rejection) as branchless arithmetic over
  both precomputed alternatives, mirroring the reference
  implementations' ``verify``/``cmov`` pair;
- :func:`declassify` marks a value as deliberately public.  The CT
  checker treats its result as untainted, so every such decision is a
  single greppable, reviewable call site.
"""

from __future__ import annotations


def ct_eq_bytes(a: bytes, b: bytes) -> int:
    """1 if *a* == *b* else 0, without early exit on the first difference.

    Lengths are public wire sizes, so a length mismatch may return
    immediately.
    """
    if len(a) != len(b):
        return 0
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    # diff in [0, 255]; arithmetic shift maps 0 -> 1, nonzero -> 0
    return ((diff - 1) >> 8) & 1


def ct_select_bytes(flag: int, when_true: bytes, when_false: bytes) -> bytes:
    """``when_true`` if *flag* is 1 else ``when_false``, branchlessly.

    Both alternatives must already be computed (that is the point: the
    caller does the same work on both paths) and equally long.  The flag
    is reduced mod 2 arithmetically — validating it with a branch would
    itself leak the secret selector this function exists to hide.
    """
    if len(when_true) != len(when_false):
        raise ValueError("alternatives must have equal (public) lengths")
    mask = -(flag & 1) & 0xFF  # 0x00 or 0xFF, branchlessly
    inv = mask ^ 0xFF
    return bytes((t & mask) | (f & inv) for t, f in zip(when_true, when_false))


def declassify(value):
    """Identity; marks *value* as deliberately public for the CT checker.

    Use only for values whose disclosure is part of the design: structural
    length prefixes, published signature components, protocol-visible
    accept/reject outcomes.  Cite the reason at the call site.
    """
    return value
