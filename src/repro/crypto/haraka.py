"""Haraka v2 short-input hash functions (Haraka-256 and Haraka-512).

The paper's fastest SPHINCS+ variant is ``sphincs-haraka-128f-simple``;
Haraka v2 is a 5-round AES-based permutation designed for exactly this
short-input use. Round constants are generated from the digits of pi as in
the Haraka v2 reference implementation (the "RC_i" constants are the first
40×16 bytes of pi's fractional part in hex).

SPHINCS+ additionally keys Haraka with the public seed by XORing the seed
expansion into the round constants; :class:`HarakaKeyed` provides that.
"""

from __future__ import annotations

import functools
import sys

from repro.crypto.aes import aes_round

# The Haraka v2 reference derives its 40 sixteen-byte round constants from
# the digits of pi. We generate ours from SHAKE-128 over a fixed label —
# a documented substitution (DESIGN.md): the constants are arbitrary public
# nothing-up-my-sleeve values; every structural property SPHINCS+ relies on
# (fixed public permutation, no symmetry) is preserved, but outputs differ
# from the official Haraka test vectors.
import hashlib as _hashlib

_RC_STREAM = _hashlib.shake_128(b"repro Haraka v2 round constants").digest(40 * 16)
RC = [_RC_STREAM[16 * i: 16 * (i + 1)] for i in range(40)]

_ZERO16 = b"\x00" * 16

# Word-level reference path: states are lists of big-endian 32-bit column
# words (4 words per 16-byte AES block), permuted with the shared T-tables.
# The fast twin (repro.crypto.kernels.haraka) compiles each round-constant
# set into a fully unrolled straight-line permutation instead.
from repro.crypto._aestables import TE0 as _T0, TE1 as _T1, TE2 as _T2, TE3 as _T3


def _words(data: bytes) -> list[int]:
    return [int.from_bytes(data[4 * i: 4 * i + 4], "big") for i in range(len(data) // 4)]


def _bytes_from_words(words: list[int]) -> bytes:
    return b"".join(w.to_bytes(4, "big") for w in words)


def _aes_round_words(s: list[int], off: int, rc: list[int], rc_off: int) -> None:
    """One AES round on the 4 words s[off:off+4], in place."""
    s0, s1, s2, s3 = s[off], s[off + 1], s[off + 2], s[off + 3]
    s[off] = (_T0[(s0 >> 24) & 0xFF] ^ _T1[(s1 >> 16) & 0xFF]
              ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ rc[rc_off])
    s[off + 1] = (_T0[(s1 >> 24) & 0xFF] ^ _T1[(s2 >> 16) & 0xFF]
                  ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ rc[rc_off + 1])
    s[off + 2] = (_T0[(s2 >> 24) & 0xFF] ^ _T1[(s3 >> 16) & 0xFF]
                  ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ rc[rc_off + 2])
    s[off + 3] = (_T0[(s3 >> 24) & 0xFF] ^ _T1[(s0 >> 16) & 0xFF]
                  ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ rc[rc_off + 3])


def _aes2(block: bytes, rc0: bytes, rc1: bytes) -> bytes:
    """Two AES rounds with the given round constants as keys."""
    return aes_round(aes_round(block, rc0), rc1)


def _mix256(s0: bytes, s1: bytes) -> tuple[bytes, bytes]:
    """Haraka-256 MIX: interleave 32-bit words of the two states."""
    a = s0[0:4] + s1[0:4] + s0[4:8] + s1[4:8]
    b = s0[8:12] + s1[8:12] + s0[12:16] + s1[12:16]
    return a, b


def _mix512(s: list[bytes]) -> list[bytes]:
    """Haraka-512 MIX: the unpacklo/unpackhi word shuffle of the reference."""
    w = []
    for block in s:
        w.extend(block[4 * i: 4 * i + 4] for i in range(4))
    order = [3, 11, 7, 15, 8, 0, 12, 4, 9, 1, 13, 5, 2, 10, 6, 14]
    shuffled = [w[i] for i in order]
    return [b"".join(shuffled[4 * i: 4 * i + 4]) for i in range(4)]


_MIX256_ORDER = [0, 4, 1, 5, 2, 6, 3, 7]
_MIX512_ORDER = [3, 11, 7, 15, 8, 0, 12, 4, 9, 1, 13, 5, 2, 10, 6, 14]


class Haraka:
    """Haraka v2 permutations with optional custom round constants."""

    def __init__(self, round_constants: list[bytes] | None = None):
        self._rc = round_constants if round_constants is not None else RC
        if len(self._rc) < 40:
            raise ValueError("Haraka needs 40 round constants")
        # Flattened word-form round constants for the fast path.
        self._rcw = _words(b"".join(self._rc[:40]))

    def _haraka256_ref(self, data: bytes) -> bytes:
        """32-byte → 32-byte Haraka-256 (permutation + feed-forward)."""
        if len(data) != 32:
            raise ValueError("Haraka-256 input must be 32 bytes")
        s = _words(data)
        rcw = self._rcw
        for r in range(5):
            base = 16 * r
            _aes_round_words(s, 0, rcw, base)
            _aes_round_words(s, 0, rcw, base + 4)
            _aes_round_words(s, 4, rcw, base + 8)
            _aes_round_words(s, 4, rcw, base + 12)
            s = [s[i] for i in _MIX256_ORDER]
        out = _bytes_from_words(s)
        return bytes(a ^ b for a, b in zip(out, data))

    def _haraka512_perm_ref(self, data: bytes) -> bytes:
        """The raw 64-byte Haraka-512 permutation (no feed-forward)."""
        if len(data) != 64:
            raise ValueError("Haraka-512 input must be 64 bytes")
        s = _words(data)
        rcw = self._rcw
        for r in range(5):
            base = 32 * r
            _aes_round_words(s, 0, rcw, base)
            _aes_round_words(s, 0, rcw, base + 4)
            _aes_round_words(s, 4, rcw, base + 8)
            _aes_round_words(s, 4, rcw, base + 12)
            _aes_round_words(s, 8, rcw, base + 16)
            _aes_round_words(s, 8, rcw, base + 20)
            _aes_round_words(s, 12, rcw, base + 24)
            _aes_round_words(s, 12, rcw, base + 28)
            s = [s[i] for i in _MIX512_ORDER]
        return _bytes_from_words(s)

    def _haraka512_ref(self, data: bytes) -> bytes:
        """64-byte → 32-byte Haraka-512 (permutation, feed-forward, truncation)."""
        permuted = self.haraka512_perm(data)
        mixed = bytes(a ^ b for a, b in zip(permuted, data))
        # Truncation: bytes 8..15 and 24..31 of each 32-byte half? The spec
        # keeps words 2,3,6,7,8,9,12,13 (4-byte words).
        words = [mixed[4 * i: 4 * i + 4] for i in range(16)]
        keep = [2, 3, 6, 7, 8, 9, 12, 13]
        return b"".join(words[i] for i in keep)

    def _haraka256_fast(self, data: bytes) -> bytes:
        if len(data) != 32:
            raise ValueError("Haraka-256 input must be 32 bytes")
        perm256, _ = _fast.perms_for(self)
        mixed = int.from_bytes(perm256(data), "big") ^ int.from_bytes(data, "big")
        return mixed.to_bytes(32, "big")

    def _haraka512_perm_fast(self, data: bytes) -> bytes:
        if len(data) != 64:
            raise ValueError("Haraka-512 input must be 64 bytes")
        return _fast.perms_for(self)[1](data)

    def _haraka512_fast(self, data: bytes) -> bytes:
        if len(data) != 64:
            raise ValueError("Haraka-512 input must be 64 bytes")
        permuted = _fast.perms_for(self)[1](data)
        mixed = int.from_bytes(permuted, "big") ^ int.from_bytes(data, "big")
        out = mixed.to_bytes(64, "big")
        # words 2,3 | 6,7,8,9 | 12,13 of the feed-forward result
        return out[8:16] + out[24:40] + out[48:56]

    def _haraka_sponge_fast(self, data: bytes, outlen: int) -> bytes:
        perm512 = _fast.perms_for(self)[1]
        rate = 32
        padded = data + b"\x1f"
        padded += b"\x00" * ((-len(padded)) % rate)
        padded = padded[:-1] + bytes([padded[-1] | 0x80])
        state = b"\x00" * 64
        for i in range(0, len(padded), rate):
            block = padded[i: i + rate]
            head = int.from_bytes(block, "big") ^ int.from_bytes(state[:rate], "big")
            state = perm512(head.to_bytes(rate, "big") + state[rate:])
        out = state[:rate]
        while len(out) < outlen:
            state = perm512(state)
            out += state[:rate]
        return out[:outlen]

    def _haraka_sponge_ref(self, data: bytes, outlen: int) -> bytes:
        """HarakaS: a sponge over the 512-bit permutation, rate 32 bytes.

        SPHINCS+ uses this for variable-length hashing (H_msg, PRF_msg).
        """
        rate = 32
        # pad10*1 on the rate
        padded = data + b"\x1f"
        padded += b"\x00" * ((-len(padded)) % rate)
        padded = padded[:-1] + bytes([padded[-1] | 0x80])
        state = b"\x00" * 64
        for i in range(0, len(padded), rate):
            block = padded[i: i + rate]
            state = bytes(a ^ b for a, b in zip(block, state[:rate])) + state[rate:]
            state = self.haraka512_perm(state)
        out = b""
        while len(out) < outlen:
            out += state[:rate]
            if len(out) < outlen:
                state = self.haraka512_perm(state)
        return out[:outlen]


_DEFAULT = Haraka()


def haraka256(data: bytes) -> bytes:
    return _DEFAULT.haraka256(data)


def haraka512(data: bytes) -> bytes:
    return _DEFAULT.haraka512(data)


def _haraka_keyed_ref(pub_seed: bytes) -> Haraka:
    """Haraka instance with round constants keyed by the SPHINCS+ public seed.

    Per the SPHINCS+ spec, the constants become ``HarakaS(pub_seed, 640)``
    split into 40 blocks, generated with the *default* constants.
    """
    stream = _DEFAULT.haraka_sponge(pub_seed, 40 * 16)
    return Haraka([stream[16 * i: 16 * (i + 1)] for i in range(40)])


# The fast path memoizes the keyed instance per public seed: a SPHINCS+
# signature makes thousands of backend calls against the same pub_seed,
# and each Haraka instance also carries its compiled permutations.
_haraka_keyed_fast = functools.lru_cache(maxsize=128)(_haraka_keyed_ref)


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import haraka as _fast  # noqa: E402

_kernels.bind(Haraka, "haraka256",
              ref=Haraka._haraka256_ref, fast=Haraka._haraka256_fast)
_kernels.bind(Haraka, "haraka512_perm",
              ref=Haraka._haraka512_perm_ref, fast=Haraka._haraka512_perm_fast)
_kernels.bind(Haraka, "haraka512",
              ref=Haraka._haraka512_ref, fast=Haraka._haraka512_fast)
_kernels.bind(Haraka, "haraka_sponge",
              ref=Haraka._haraka_sponge_ref, fast=Haraka._haraka_sponge_fast)
_kernels.bind(sys.modules[__name__], "haraka_keyed",
              ref=_haraka_keyed_ref, fast=_haraka_keyed_fast)
