"""Hash primitives: SHA-2/SHA-3/SHAKE wrappers, HMAC, and HKDF (RFC 5869).

TLS 1.3's key schedule is built entirely from HKDF; Kyber/Dilithium/SPHINCS+
use SHAKE/SHA-3. The Keccak and SHA-2 permutations themselves come from
:mod:`hashlib` (they are symmetric primitives outside the paper's scope —
its Grover discussion explicitly excludes them), everything layered on top
is implemented here.
"""

from __future__ import annotations

import hashlib


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def sha384(data: bytes) -> bytes:
    return hashlib.sha384(data).digest()


def sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def sha3_256(data: bytes) -> bytes:
    return hashlib.sha3_256(data).digest()


def sha3_512(data: bytes) -> bytes:
    return hashlib.sha3_512(data).digest()


def shake128(data: bytes, outlen: int) -> bytes:
    return hashlib.shake_128(data).digest(outlen)


def shake256(data: bytes, outlen: int) -> bytes:
    return hashlib.shake_256(data).digest(outlen)


_HASHES = {"sha256": hashlib.sha256, "sha384": hashlib.sha384, "sha512": hashlib.sha512}


def _block_size(name: str) -> int:
    return {"sha256": 64, "sha384": 128, "sha512": 128}[name]


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """HMAC built from the bare hash (RFC 2104), not :mod:`hmac`."""
    hash_fn = _HASHES[hash_name]
    block = _block_size(hash_name)
    if len(key) > block:
        key = hash_fn(key).digest()
    key = key.ljust(block, b"\x00")
    inner = hash_fn(bytes(b ^ 0x36 for b in key) + message).digest()
    return hash_fn(bytes(b ^ 0x5C for b in key) + inner).digest()


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """RFC 5869 HKDF-Extract."""
    if not salt:
        salt = b"\x00" * _HASHES[hash_name]().digest_size
    return hmac_digest(salt, ikm, hash_name)


def hkdf_expand(prk: bytes, info: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """RFC 5869 HKDF-Expand."""
    digest_size = _HASHES[hash_name]().digest_size
    if length > 255 * digest_size:
        raise ValueError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_digest(prk, previous + info + bytes([counter]), hash_name)
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def mgf1(seed: bytes, length: int, hash_name: str = "sha256") -> bytes:
    """PKCS#1 MGF1 mask generation (used by RSA-PSS)."""
    hash_fn = _HASHES[hash_name]
    out = b""
    counter = 0
    while len(out) < length:
        out += hash_fn(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return out[:length]
