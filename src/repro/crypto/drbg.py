"""Deterministic random bit generator.

All randomness in this repository — key generation, protocol nonces, netem
loss decisions — flows through :class:`Drbg`, a SHAKE-128 counter-mode
generator. Given the same seed, every experiment reproduces bit-exactly,
which substitutes for the paper's "automated, repeatable" measurement
pipeline (their §4).
"""

from __future__ import annotations

import hashlib

_BLOCK = 136  # one SHAKE-128 rate-block per squeeze keeps hashing cheap


class Drbg:
    """SHAKE-128 based deterministic RNG.

    The stream is ``SHAKE128(seed || counter)`` blocks. ``fork(label)``
    derives an independent child stream, so subsystems (keygen, netem, ...)
    can draw without perturbing each other's sequences.
    """

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, str):
            seed = seed.encode()
        elif isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def fork(self, label: bytes | str) -> "Drbg":
        """Derive an independent generator bound to *label*."""
        if isinstance(label, str):
            label = label.encode()
        child_seed = hashlib.shake_128(
            b"repro.fork" + len(self._seed).to_bytes(4, "big") + self._seed + label
        ).digest(32)
        return Drbg(child_seed)

    def _refill(self) -> None:
        block = hashlib.shake_128(
            self._seed + self._counter.to_bytes(8, "big")
        ).digest(_BLOCK)
        self._counter += 1
        self._buffer += block

    def random_bytes(self, n: int) -> bytes:
        """Return *n* pseudo-random bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        nbytes = (bound.bit_length() + 7) // 8
        mask = (1 << (8 * nbytes)) - 1
        limit = (mask + 1) - (mask + 1) % bound
        while True:
            candidate = int.from_bytes(self.random_bytes(nbytes), "big")
            if candidate < limit:
                return candidate % bound

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError("empty range")
        return low + self.randint_below(high - low + 1)

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (int.from_bytes(self.random_bytes(7), "big") >> 3) / (1 << 53)

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def choice(self, items):
        """Pick one element uniformly."""
        if not items:
            raise ValueError("empty sequence")
        return items[self.randint_below(len(items))]

    def sample_distinct(self, bound: int, count: int) -> list[int]:
        """*count* distinct integers in ``[0, bound)`` (sparse-vector support)."""
        if count > bound:
            raise ValueError("cannot sample more distinct values than the range holds")
        seen: set[int] = set()
        out: list[int] = []
        while len(out) < count:
            value = self.randint_below(bound)
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out
