"""AES-GCM AEAD (NIST SP 800-38D) for TLS 1.3 record protection.

The reference GHASH is implemented over GF(2^128) with the reflected
reduction polynomial ``x^128 + x^7 + x^2 + x + 1`` using a bit-serial
carry-less multiply — simple and obviously correct. The fast twin in
``repro.crypto.kernels.gcm`` replaces it with per-key byte tables
(``PQTLS_KERNELS`` selects; outputs are byte-identical).
"""

from __future__ import annotations

import sys

from repro.crypto.aes import AES

_R = 0xE1000000000000000000000000000000
_MASK128 = (1 << 128) - 1


def gf_mul(x: int, y: int) -> int:
    """Carry-less multiply in GF(2^128) with GCM's reflected bit order."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class _Ghash:
    def __init__(self, h: bytes):
        self._h = int.from_bytes(h, "big")
        self._acc = 0

    def update_block(self, block: bytes) -> None:
        self._acc = gf_mul(self._acc ^ int.from_bytes(block, "big"), self._h)

    def update(self, data: bytes) -> None:
        for i in range(0, len(data), 16):
            self.update_block(data[i: i + 16].ljust(16, b"\x00"))

    def digest(self) -> bytes:
        return self._acc.to_bytes(16, "big")


def _inc32(block: bytes) -> bytes:
    counter = (int.from_bytes(block[12:], "big") + 1) & 0xFFFFFFFF
    return block[:12] + counter.to_bytes(4, "big")


class AesGcm:
    """AES-GCM with 12-byte nonces and 16-byte tags (the TLS 1.3 shape)."""

    TAG_LEN = 16

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._h = self._aes.encrypt_block(b"\x00" * 16)

    def _ctr_ref(self, initial: bytes, data: bytes) -> bytes:
        out = bytearray()
        counter_block = initial
        for i in range(0, len(data), 16):
            counter_block = _inc32(counter_block)
            keystream = self._aes.encrypt_block(counter_block)
            chunk = data[i: i + 16]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
        return bytes(out)

    def _ctr_fast(self, initial: bytes, data: bytes) -> bytes:
        # Same keystream, but XORed in one bigint operation instead of a
        # per-byte generator.
        if not data:
            return b""
        encrypt = self._aes.encrypt_block
        counter_block = initial
        blocks = []
        for _ in range((len(data) + 15) // 16):
            counter_block = _inc32(counter_block)
            blocks.append(encrypt(counter_block))
        stream = b"".join(blocks)[:len(data)]
        xored = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        return xored.to_bytes(len(data), "big")

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = _Ghash(self._h)
        ghash.update(aad)
        ghash.update(ciphertext)
        ghash.update_block(
            (8 * len(aad)).to_bytes(8, "big") + (8 * len(ciphertext)).to_bytes(8, "big")
        )
        s = ghash.digest()
        ek = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, ek))

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        ciphertext = self._ctr(j0, plaintext)
        return ciphertext + self._tag(j0, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raise ValueError on failure."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        if len(data) < self.TAG_LEN:
            raise ValueError("ciphertext shorter than the tag")
        ciphertext, tag = data[: -self.TAG_LEN], data[-self.TAG_LEN:]
        j0 = nonce + b"\x00\x00\x00\x01"
        expected = self._tag(j0, aad, ciphertext)
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff:
            raise ValueError("GCM tag verification failed")
        return self._ctr(j0, ciphertext)


from repro.crypto import kernels as _kernels  # noqa: E402
from repro.crypto.kernels import gcm as _fast  # noqa: E402

_kernels.bind(sys.modules[__name__], "_Ghash", ref=_Ghash, fast=_fast.Ghash)
_kernels.bind(AesGcm, "_ctr", ref=AesGcm._ctr_ref, fast=AesGcm._ctr_fast)
