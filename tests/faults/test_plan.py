"""FaultPlan DSL: validation, canonical specs, parsing, the named table."""

import pytest

from repro.faults.plan import (
    CORRUPT_CHECKSUM,
    CORRUPT_DELIVER,
    FAULT_PLANS,
    FaultPlan,
    resolve_fault_plan,
)


def test_default_plan_is_inactive():
    plan = FaultPlan()
    assert not plan.active
    assert plan.spec == "none"
    assert plan.corrupt_mode == CORRUPT_CHECKSUM


def test_any_knob_activates():
    assert FaultPlan(corrupt=0.1).active
    assert FaultPlan(corrupt_nth=3).active
    assert FaultPlan(dup=0.1).active
    assert FaultPlan(reorder=0.1).active
    # reorder_delay alone is a parameter, not a knob
    assert not FaultPlan(reorder_delay=0.5).active


@pytest.mark.parametrize("kwargs", [
    {"corrupt": -0.1},
    {"corrupt": 1.5},
    {"dup": 2.0},
    {"reorder": -1e-9},
    {"corrupt_nth": -1},
    {"reorder_delay": -0.01},
    {"corrupt_mode": "maybe"},
])
def test_invalid_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_spec_omits_defaults_and_orders_fields():
    plan = FaultPlan(reorder=0.1, corrupt=0.02)
    # field order, not insertion order: stable across processes
    assert plan.spec == "corrupt=0.02,reorder=0.1"
    assert FaultPlan(corrupt_nth=4, corrupt_mode=CORRUPT_DELIVER).spec == \
        "corrupt_nth=4,corrupt_mode=deliver"


@pytest.mark.parametrize("plan", list(FAULT_PLANS.values()) + [
    FaultPlan(corrupt=0.5, corrupt_nth=2, dup=0.25, reorder=1.0, reorder_delay=0.125),
])
def test_spec_parse_roundtrip(plan):
    assert FaultPlan.parse(plan.spec) == plan


def test_parse_rejects_unknown_key_and_bad_shape():
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("jitter=0.1")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("corrupt")


def test_parse_empty_and_none_are_the_inactive_plan():
    assert FaultPlan.parse("") == FaultPlan()
    assert FaultPlan.parse("none") == FaultPlan()


def test_named_plans_sane():
    assert FAULT_PLANS["none"] == FaultPlan()
    assert not FAULT_PLANS["none"].active
    for name, plan in FAULT_PLANS.items():
        if name != "none":
            assert plan.active, name
    # the chaos plan exercises every probabilistic knob at once
    chaos = FAULT_PLANS["chaos"]
    assert chaos.corrupt and chaos.dup and chaos.reorder


def test_resolve_accepts_plan_name_spec_and_none():
    assert resolve_fault_plan(None) == FaultPlan()
    assert resolve_fault_plan("dup") is FAULT_PLANS["dup"]
    assert resolve_fault_plan("corrupt=0.5") == FaultPlan(corrupt=0.5)
    plan = FaultPlan(reorder=0.2)
    assert resolve_fault_plan(plan) is plan


def test_resolve_rejects_garbage():
    with pytest.raises(ValueError):
        resolve_fault_plan("definitely-not-a-plan")
