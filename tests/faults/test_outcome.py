"""HandshakeOutcome: the typed terminal state of every simulated handshake."""

from repro.faults.outcome import (
    FAILURE_KINDS,
    KIND_ALERT,
    KIND_SUCCESS,
    KIND_TIMEOUT,
    KIND_TRANSPORT,
    SUCCESS,
    HandshakeOutcome,
)
from repro.tls.errors import (
    ALERT_BAD_RECORD_MAC,
    ALERT_HANDSHAKE_FAILURE,
    ALERT_UNEXPECTED_MESSAGE,
)


def test_success_singleton():
    assert SUCCESS.ok
    assert SUCCESS.kind == KIND_SUCCESS
    assert SUCCESS.key == "success"
    assert SUCCESS == HandshakeOutcome.success()


def test_failure_kinds_are_not_ok():
    assert set(FAILURE_KINDS) == {KIND_ALERT, KIND_TIMEOUT, KIND_TRANSPORT}
    assert not HandshakeOutcome.timeout("clock ran out").ok
    assert not HandshakeOutcome.transport("tcp gave up").ok
    assert not HandshakeOutcome.from_alert(ALERT_BAD_RECORD_MAC).ok


def test_alert_outcomes_carry_code_and_dotted_key():
    outcome = HandshakeOutcome.from_alert(ALERT_BAD_RECORD_MAC, detail="boom")
    assert outcome.kind == KIND_ALERT
    assert outcome.alert == ALERT_BAD_RECORD_MAC
    assert outcome.detail == "boom"
    assert outcome.key == "alert.bad_record_mac"
    assert HandshakeOutcome.from_alert(ALERT_HANDSHAKE_FAILURE).key == \
        "alert.handshake_failure"
    assert HandshakeOutcome.from_alert(ALERT_UNEXPECTED_MESSAGE).key == \
        "alert.unexpected_message"


def test_non_alert_keys_are_the_kind():
    assert HandshakeOutcome.timeout().key == "timeout"
    assert HandshakeOutcome.transport().key == "transport-error"


def test_unknown_alert_code_still_produces_stable_key():
    key = HandshakeOutcome.from_alert(199).key
    assert key.startswith("alert.")
    assert key == HandshakeOutcome.from_alert(199).key


def test_outcomes_are_frozen_and_hashable():
    a = HandshakeOutcome.timeout("x")
    b = HandshakeOutcome.timeout("x")
    assert a == b and hash(a) == hash(b)
    assert len({a, b, SUCCESS}) == 2
