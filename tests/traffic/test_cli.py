"""pqtls-traffic end to end: argument plumbing, outputs, exit codes."""

import json

from repro.traffic.cli import build_config, build_parser, main


def test_build_config_crosses_kem_and_sig_mixes():
    args = build_parser().parse_args([
        "--kem", "kyber512", "--kem", "kyber768",
        "--sig", "dilithium2",
        "--arrival", "poisson:50/s", "--duration", "0.5"])
    config = build_config(args)
    assert config.pairs == (("kyber512", "dilithium2"),
                            ("kyber768", "dilithium2"))
    assert config.arrival == "poisson:50/s"


def test_main_end_to_end_writes_metrics_and_flight_record(tmp_path, capsys):
    metrics_path = tmp_path / "out" / "traffic.json"
    flight_path = tmp_path / "out" / "flight.jsonl"
    code = main(["--arrival", "poisson:100/s", "--duration", "0.5",
                 "--shard-seconds", "0.25",
                 "--metrics", str(metrics_path),
                 "--flight-record", str(flight_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "kyber512/dilithium2" in out
    assert "p99.9" in out
    assert "load factor" in out
    snapshot = json.loads(metrics_path.read_text())
    total = snapshot["histograms"]["traffic.kyber512.dilithium2.total"]
    assert total["count"] > 0
    events = [json.loads(line)
              for line in flight_path.read_text().splitlines()]
    kinds = {e["event"] for e in events}
    assert {"traffic_begin", "shard_finish", "traffic_end"} <= kinds


def test_main_rejects_bad_arrival_spec(tmp_path, capsys):
    assert main(["--arrival", "pareto:100/s", "--duration", "1"]) == 2
    assert "pqtls-traffic" in capsys.readouterr().err


def test_main_rejects_bad_duration(capsys):
    assert main(["--duration", "0"]) == 2
    assert "duration" in capsys.readouterr().err
