"""The traffic engine: queueing semantics, sharding, --jobs bit-identity."""

import json

import pytest

from repro.core import executor
from repro.obs.metrics import Metrics
from repro.obs.recorder import FlightRecorder
from repro.traffic.engine import (
    TrafficConfig,
    metric_key,
    run_traffic,
    shard_windows,
)
from repro.traffic.profile import handshake_profile

PAIR = ("kyber512", "dilithium2")
PREFIX = "traffic.kyber512.dilithium2."


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the host has 4 cores so jobs > 1 exercises the pool."""
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 4)


def _run(metrics=None, **overrides):
    config = TrafficConfig(pairs=(PAIR,), **overrides)
    metrics = Metrics() if metrics is None else metrics
    summary = run_traffic(config, metrics=metrics)
    return metrics, summary


# -- layout ------------------------------------------------------------------

def test_shard_windows_partition_the_timeline():
    windows = shard_windows(TrafficConfig(duration=10.0, shard_seconds=3.0))
    assert [w.index for w in windows] == [0, 1, 2, 3]
    assert windows[0].start == 0.0
    assert all(a.end == b.start for a, b in zip(windows, windows[1:]))
    assert windows[-1].end == 10.0          # last window absorbs the remainder
    assert len(shard_windows(TrafficConfig(duration=6.0,
                                           shard_seconds=3.0))) == 2
    assert len(shard_windows(TrafficConfig(duration=2.0,
                                           shard_seconds=60.0))) == 1


@pytest.mark.parametrize("overrides", [
    {"duration": 0.0},
    {"shard_seconds": 0.0},
    {"arrival": "pareto:100/s"},
])
def test_run_traffic_rejects_bad_configs(overrides):
    with pytest.raises(ValueError):
        run_traffic(TrafficConfig(**overrides))


def test_metric_key_sanitizes_names():
    assert metric_key("Kyber-512") == "kyber_512"
    assert metric_key("rsa:2048") == "rsa_2048"


# -- queueing semantics ------------------------------------------------------

def test_uncontended_run_reproduces_the_calibrated_baseline():
    profile = handshake_profile(*PAIR)
    metrics, summary = _run(arrival="poisson:20/s", duration=2.0)
    total = metrics.histogram(PREFIX + "total")
    assert total.count == summary.completed > 0
    # at rho ~2% the median handshake never queues: exact base latency
    assert total.quantile(0.5) == pytest.approx(profile.total, abs=1e-12)
    assert total.min == pytest.approx(profile.total, abs=1e-12)
    # part B is constant under load by design (client Finished processing
    # happens after the client's flight is already on the wire)
    part_b = metrics.histogram(PREFIX + "part_b")
    assert part_b.max - part_b.min < 1e-12
    assert summary.dropped == 0
    assert summary.load_factor < 0.1


def test_overload_amplifies_the_tail_not_part_b():
    profile = handshake_profile(*PAIR)
    metrics, summary = _run(arrival="poisson:2000/s", duration=1.0)
    assert summary.load_factor > 1.5        # ~2x overload on one core
    total = metrics.histogram(PREFIX + "total")
    assert total.quantile(0.99) > 5 * profile.total
    wait = metrics.histogram(PREFIX + "server_wait")
    assert wait.max > 0.1                   # backlog grows through the window
    part_b = metrics.histogram(PREFIX + "part_b")
    assert part_b.max - part_b.min < 1e-12


def test_more_server_cores_shrink_the_tail():
    _, one = _run(arrival="poisson:1500/s", duration=1.0, server_cores=1)
    metrics4, four = _run(arrival="poisson:1500/s", duration=1.0,
                          server_cores=4)
    assert one.load_factor > 1.0
    assert four.load_factor < 0.6
    wait = metrics4.histogram(PREFIX + "server_wait")
    assert wait.quantile(0.99) < 0.01       # queueing nearly vanishes


def test_admission_cap_drops_and_accounts_for_overflow():
    _, summary = _run(arrival="poisson:3000/s", duration=1.0,
                      max_in_flight=50)
    assert summary.dropped > 0
    assert summary.offered == summary.completed + summary.dropped
    assert summary.peak_in_flight <= 50


def test_closed_loop_bounds_in_flight_by_the_client_count():
    _, summary = _run(arrival="closed:25,think=0.001", duration=1.0)
    assert summary.peak_in_flight <= 25
    assert summary.completed > 25           # clients cycle many times
    assert summary.dropped == 0
    # the connection pool is bounded by concurrency, not completions
    assert summary.pool_peak <= 25


def test_pair_mix_observes_every_pair():
    config = TrafficConfig(arrival="poisson:400/s", duration=1.0,
                           pairs=(PAIR, ("kyber512", "falcon512")))
    metrics = Metrics()
    summary = run_traffic(config, metrics=metrics)
    counts = [metrics.histogram(
        f"traffic.{metric_key(k)}.{metric_key(s)}.total").count
        for k, s in config.pairs]
    assert all(c > 0 for c in counts)
    assert sum(counts) == summary.completed
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["traffic.completed"] == summary.completed


# -- determinism / sharding --------------------------------------------------

def test_sharding_is_invisible_to_results_offered_wise():
    # shard boundaries change which DRBG generates which arrival, so the
    # exact timelines differ — but the process statistics must not drift
    _, whole = _run(arrival="poisson:1000/s", duration=2.0,
                    shard_seconds=2.0)
    _, split = _run(arrival="poisson:1000/s", duration=2.0,
                    shard_seconds=0.5)
    assert split.shards == 4 and whole.shards == 1
    assert abs(split.offered - whole.offered) < 6 * 45  # 6 sigma at n=2000


def test_jobs_bit_identity(multicore):
    config = TrafficConfig(arrival="poisson:500/s", duration=1.5,
                           pairs=(PAIR,), shard_seconds=0.5)
    serial, parallel = Metrics(), Metrics()
    s1 = run_traffic(config, jobs=1, metrics=serial)
    s3 = run_traffic(config, jobs=3, metrics=parallel)
    assert (json.dumps(serial.snapshot(), sort_keys=True)
            == json.dumps(parallel.snapshot(), sort_keys=True))
    assert s1.jobs == 1 and s3.jobs == 3
    assert (s1.offered, s1.completed, s1.dropped) \
        == (s3.offered, s3.completed, s3.dropped)
    assert s1.busy_seconds == pytest.approx(s3.busy_seconds, abs=1e-12)


def test_resume_mix_splits_the_pair_and_is_cheaper():
    config = TrafficConfig(arrival="poisson:400/s", duration=1.0,
                           pairs=(PAIR,), resume=(0.5,))
    metrics = Metrics()
    summary = run_traffic(config, metrics=metrics)
    full = metrics.histogram(PREFIX + "total")
    resumed = metrics.histogram(PREFIX + "resume.total")
    assert full.count > 0 and resumed.count > 0
    assert full.count + resumed.count == summary.completed
    # a resumed handshake skips the certificate flight: the server's
    # burst shrinks and the uncontended total drops
    assert (metrics.histogram(PREFIX + "resume.part_b").mean
            < metrics.histogram(PREFIX + "part_b").mean)
    assert "resume=0.5" in config.key


def test_all_full_config_key_is_unchanged():
    # pre-lifecycle cache/DRBG keys must stay stable: an unset (or
    # all-zero) resume mix adds nothing to the key
    assert "resume" not in TrafficConfig(pairs=(PAIR,)).key
    assert "resume" not in TrafficConfig(pairs=(PAIR,), resume=(0.0,)).key


def test_resume_mix_rejects_bad_fractions():
    with pytest.raises(ValueError, match="one fraction per pair"):
        run_traffic(TrafficConfig(pairs=(PAIR,), resume=(0.5, 0.5)),
                    metrics=Metrics())
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        run_traffic(TrafficConfig(pairs=(PAIR,), resume=(1.5,)),
                    metrics=Metrics())


def test_resume_mix_jobs_bit_identity(multicore):
    config = TrafficConfig(arrival="poisson:500/s", duration=1.5,
                           pairs=(PAIR, ("x25519", "rsa:2048")),
                           shard_seconds=0.5, resume=(0.6, 0.3))
    serial, parallel = Metrics(), Metrics()
    s1 = run_traffic(config, jobs=1, metrics=serial)
    s3 = run_traffic(config, jobs=3, metrics=parallel)
    assert (json.dumps(serial.snapshot(), sort_keys=True)
            == json.dumps(parallel.snapshot(), sort_keys=True))
    assert (s1.offered, s1.completed) == (s3.offered, s3.completed)


def test_run_is_reproducible_and_seed_sensitive():
    a, _ = _run(arrival="poisson:300/s", duration=1.0)
    b, _ = _run(arrival="poisson:300/s", duration=1.0)
    c, _ = _run(arrival="poisson:300/s", duration=1.0, seed="other")
    dumps = [json.dumps(m.snapshot(), sort_keys=True) for m in (a, b, c)]
    assert dumps[0] == dumps[1]
    assert dumps[0] != dumps[2]


# -- constant memory ---------------------------------------------------------

def test_memory_is_flat_in_the_handshake_count():
    # past the retention window histograms spill to sketch + reservoir;
    # sample lists stay capped no matter how many handshakes stream in
    metrics = Metrics(retention=256)
    _, summary = _run(arrival="poisson:2000/s", duration=1.0,
                      metrics=metrics)
    total = metrics.histogram(PREFIX + "total")
    assert summary.completed > 1000
    assert total.count == summary.completed
    assert total.spilled
    assert len(total.samples) == 0          # raw samples were released
    assert total.quantile(0.5) > 0


# -- observation -------------------------------------------------------------

def test_flight_recorder_sees_heartbeats_and_shard_finishes():
    recorder = FlightRecorder()
    config = TrafficConfig(arrival="poisson:3000/s", duration=1.0,
                           pairs=(PAIR,), shard_seconds=0.5)
    run_traffic(config, metrics=Metrics(), recorder=recorder,
                heartbeat_seconds=0.0)
    kinds = [e["event"] for e in recorder.events]
    assert kinds[0] == "traffic_begin"
    assert kinds[-1] == "traffic_end"
    assert kinds.count("shard_finish") == 2
    beats = [e for e in recorder.events if e["event"] == "heartbeat"]
    # heartbeat_seconds=0 emits on every 1024-completion check
    assert beats
    for beat in beats:
        assert beat["completed"] > 0
        assert "in_flight" in beat and "sim_t" in beat
        assert beat.get("rss_mb") is None or beat["rss_mb"] > 0
    finish = next(e for e in recorder.events if e["event"] == "shard_finish")
    assert finish["mode"] == "serial"
    assert finish["completed"] > 0
