"""Arrival models: spec parsing, thinning correctness, determinism."""

import pytest

from repro.crypto.drbg import Drbg
from repro.traffic.arrivals import (
    ClosedSpec,
    DiurnalSpec,
    FlashSpec,
    PoissonSpec,
    Window,
    open_arrivals,
    parse_arrival,
)


def _drain(spec, window, label="arrivals"):
    arrivals = open_arrivals(spec, window, Drbg("test").fork(label))
    times = []
    while (t := arrivals.next_time()) is not None:
        times.append(t)
    return times


# -- parsing -----------------------------------------------------------------

def test_parse_poisson():
    spec = parse_arrival("poisson:1000/s", duration=60.0)
    assert spec == PoissonSpec(rate=1000.0)
    assert parse_arrival("poisson:250", 1.0).rate == 250.0  # /s optional


def test_parse_diurnal_defaults_period_to_duration():
    spec = parse_arrival("diurnal:100/s", duration=120.0)
    assert spec == DiurnalSpec(rate=100.0, amplitude=0.5, period=120.0)
    spec = parse_arrival("diurnal:100/s,amp=0.9,period=10", duration=120.0)
    assert spec.amplitude == 0.9 and spec.period == 10.0
    assert spec.peak_rate == pytest.approx(190.0)


def test_parse_flash_defaults_derive_from_duration():
    spec = parse_arrival("flash:200/s", duration=100.0)
    assert spec == FlashSpec(rate=200.0, peak=2000.0, at=50.0, width=10.0)
    spec = parse_arrival("flash:200/s,peak=500/s,at=5,width=2", duration=100.0)
    assert spec == FlashSpec(rate=200.0, peak=500.0, at=5.0, width=2.0)


def test_parse_closed():
    assert parse_arrival("closed:500", 1.0) == ClosedSpec(clients=500)
    assert parse_arrival("closed:8,think=0.25", 1.0) == ClosedSpec(
        clients=8, think=0.25)


@pytest.mark.parametrize("bad", [
    "poisson",                     # no rate
    "poisson:zero/s",              # non-numeric rate
    "poisson:-5/s",                # non-positive rate
    "poisson:100/s,burst=2",       # unknown option
    "diurnal:100/s,amp=1.5",       # amplitude out of [0, 1)
    "diurnal:100/s,period=0",      # non-positive period
    "flash:100/s,width=-1",        # non-positive width
    "flash:100/s,peak",            # option without '='
    "closed:0",                    # no clients
    "closed:4,think=-1",           # negative think
    "pareto:100/s",                # unknown kind
])
def test_parse_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        parse_arrival(bad, duration=60.0)


def test_open_arrivals_rejects_closed_spec():
    with pytest.raises(ValueError):
        open_arrivals(ClosedSpec(clients=4), Window(0, 0.0, 1.0), Drbg("t"))


# -- the thinned processes ---------------------------------------------------

def test_poisson_count_near_rate_times_duration():
    times = _drain(PoissonSpec(rate=1000.0), Window(0, 0.0, 4.0))
    # mean 4000, sd ~63: a 6-sigma band that still catches rate bugs
    assert 3600 < len(times) < 4400


def test_arrivals_are_strictly_inside_the_window_and_ordered():
    window = Window(2, 3.0, 4.5)
    times = _drain(DiurnalSpec(rate=800.0, amplitude=0.9, period=2.0), window)
    assert times == sorted(times)
    assert all(window.start <= t < window.end for t in times)


def test_same_seed_same_timeline_different_fork_differs():
    spec = PoissonSpec(rate=500.0)
    window = Window(0, 0.0, 2.0)
    assert _drain(spec, window, "a") == _drain(spec, window, "a")
    assert _drain(spec, window, "a") != _drain(spec, window, "b")


def test_flash_burst_is_denser_than_baseline():
    spec = FlashSpec(rate=100.0, peak=1000.0, at=1.0, width=1.0)
    times = _drain(spec, Window(0, 0.0, 3.0))
    burst = sum(1 for t in times if 1.0 <= t < 2.0)
    outside = len(times) - burst
    # ~1000 in-burst vs ~200 outside; 2x the off-burst *total* is a
    # comfortable margin for a 10x rate step
    assert burst > 2 * outside


def test_thinning_skips_candidates_without_shifting_later_draws():
    # at amp -> 0 the diurnal process degenerates to homogeneous Poisson;
    # both consume (gap, accept) per candidate, so the timelines coincide
    flat = _drain(PoissonSpec(rate=300.0), Window(0, 0.0, 2.0))
    nearly_flat = _drain(DiurnalSpec(rate=300.0, amplitude=0.0, period=1.0),
                         Window(0, 0.0, 2.0))
    assert flat == nearly_flat
