"""Calibration profiles: burst decomposition and the lossless-twin rule."""

import pytest

from repro.traffic.profile import build_profile, handshake_profile


@pytest.fixture(scope="module")
def profile():
    return handshake_profile("kyber512", "dilithium2")


def test_bursts_sum_exactly_to_calibrated_server_cpu(profile):
    # burst A absorbs everything the analytic phase-B ops don't cover
    # (tooling, per-packet costs), so the split never invents CPU time
    assert profile.burst_a + profile.burst_b == pytest.approx(
        profile.server_cpu, abs=1e-15)
    assert profile.burst_a > 0
    assert profile.burst_b > 0


def test_timeline_offsets_are_physical(profile):
    assert profile.a_enqueue > 0          # the CH takes time to arrive
    assert profile.b_gap >= 0
    assert profile.resp_transit > 0
    # TTFB covers at least the server flight: CH arrival + both bursts
    assert profile.ttfb >= profile.a_enqueue + profile.server_cpu


def test_uncontended_baselines_are_positive_and_ordered(profile):
    assert 0 < profile.part_a < profile.total
    assert 0 < profile.part_b < profile.total
    assert profile.total == pytest.approx(profile.part_a + profile.part_b,
                                          rel=0.05)
    assert profile.wire_bytes > 0
    assert profile.client_cpu > 0


def test_profile_cache_returns_the_same_object(profile):
    assert handshake_profile("kyber512", "dilithium2") is profile


def test_lossy_scenario_calibrates_on_its_lossless_twin():
    # the baseline must be the deterministic common case: same spec run
    # twice is identical, and no retransmit tail leaks into the totals
    a = build_profile("kyber512", "dilithium2", scenario="high-loss")
    b = build_profile("kyber512", "dilithium2", scenario="high-loss")
    assert a == b
    none = handshake_profile("kyber512", "dilithium2")
    # high-loss shares the fast-network shape once loss is zeroed, so the
    # calibrated totals stay in the same regime (no 1s retransmit spikes)
    assert a.total < none.total * 10


def test_heavier_signature_costs_more_server_cpu():
    light = handshake_profile("kyber512", "dilithium2")
    heavy = handshake_profile("kyber512", "sphincs128")
    assert heavy.server_cpu > light.server_cpu
    assert heavy.wire_bytes > light.wire_bytes
