"""Haraka v2: structural properties (constants are substituted, DESIGN.md)."""

import pytest

from repro.crypto.haraka import Haraka, RC, haraka256, haraka512, haraka_keyed


def test_output_lengths():
    assert len(haraka256(bytes(32))) == 32
    assert len(haraka512(bytes(64))) == 32


def test_input_lengths_enforced():
    with pytest.raises(ValueError):
        haraka256(bytes(31))
    with pytest.raises(ValueError):
        haraka512(bytes(63))


def test_determinism():
    data = bytes(range(32))
    assert haraka256(data) == haraka256(data)


def test_diffusion_single_bit():
    base = haraka256(bytes(32))
    flipped = haraka256(b"\x01" + bytes(31))
    differing = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
    assert differing > 80  # ~128 expected for a good permutation


def test_512_diffusion():
    base = haraka512(bytes(64))
    flipped = haraka512(bytes(63) + b"\x01")
    assert base != flipped


def test_permutation_is_invertible_by_construction():
    """haraka512_perm must be a bijection: distinct inputs map distinctly."""
    h = Haraka()
    seen = {h.haraka512_perm(i.to_bytes(1, "big") + bytes(63)) for i in range(64)}
    assert len(seen) == 64


def test_round_constants_shape():
    assert len(RC) == 40
    assert all(len(rc) == 16 for rc in RC)
    assert len(set(RC)) == 40  # no repeated constants


def test_keyed_instance_differs_and_is_deterministic():
    keyed = haraka_keyed(b"\xAB" * 16)
    keyed2 = haraka_keyed(b"\xAB" * 16)
    other = haraka_keyed(b"\xCD" * 16)
    data = bytes(range(32))
    assert keyed.haraka256(data) == keyed2.haraka256(data)
    assert keyed.haraka256(data) != haraka256(data)
    assert keyed.haraka256(data) != other.haraka256(data)


def test_sponge_lengths_and_domain_separation():
    h = Haraka()
    assert len(h.haraka_sponge(b"msg", 100)) == 100
    assert h.haraka_sponge(b"a", 32) != h.haraka_sponge(b"b", 32)
    # pad10*1: a message and the message plus a zero byte must differ
    assert h.haraka_sponge(b"x", 32) != h.haraka_sponge(b"x\x00", 32)


def test_sponge_not_prefix_extendable():
    h = Haraka()
    out64 = h.haraka_sponge(b"data", 64)
    out32 = h.haraka_sponge(b"data", 32)
    assert out64[:32] == out32  # squeezing more extends the same stream


def test_custom_constants_require_forty():
    with pytest.raises(ValueError):
        Haraka([b"\x00" * 16] * 39)
