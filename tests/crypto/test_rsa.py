"""RSA: keygen structure, PKCS#1 v1.5 and PSS signatures."""

import pytest

from repro.crypto import rsa
from repro.crypto.drbg import Drbg
from repro.crypto.modmath import is_probable_prime


@pytest.fixture(scope="module")
def key():
    return rsa.generate_keypair(1024, Drbg("rsa-test-key"))


def test_key_structure(key):
    assert key.n == key.p * key.q
    assert key.p != key.q
    assert is_probable_prime(key.p) and is_probable_prime(key.q)
    assert key.n.bit_length() == 1024
    assert key.e == 65537
    assert key.e * key.d % ((key.p - 1) * (key.q - 1)) == 1


def test_crt_private_op_matches_plain_pow(key):
    c = 0xDEADBEEF
    assert key._decrypt(c) == pow(c, key.d, key.n)


def test_public_key_codec(key):
    encoded = key.public.encode()
    decoded = rsa.RsaPublicKey.decode(encoded)
    assert decoded == key.public
    assert len(encoded) == 2 + 128 + 4


def test_public_key_decode_errors():
    with pytest.raises(ValueError):
        rsa.RsaPublicKey.decode(b"\x00")
    with pytest.raises(ValueError):
        rsa.RsaPublicKey.decode(b"\x00\x10" + b"\x00" * 10)


def test_pkcs1_roundtrip_and_tamper(key):
    sig = rsa.sign_pkcs1(key, b"message")
    assert len(sig) == 128
    assert rsa.verify_pkcs1(key.public, b"message", sig)
    assert not rsa.verify_pkcs1(key.public, b"messagx", sig)
    bad = bytes([sig[0] ^ 1]) + sig[1:]
    assert not rsa.verify_pkcs1(key.public, b"message", bad)


def test_pkcs1_deterministic(key):
    assert rsa.sign_pkcs1(key, b"m") == rsa.sign_pkcs1(key, b"m")


def test_pss_roundtrip_and_tamper(key):
    drbg = Drbg("pss-salt")
    sig = rsa.sign_pss(key, b"message", drbg)
    assert len(sig) == 128
    assert rsa.verify_pss(key.public, b"message", sig)
    assert not rsa.verify_pss(key.public, b"messagx", sig)
    bad = sig[:-1] + bytes([sig[-1] ^ 1])
    assert not rsa.verify_pss(key.public, b"message", bad)


def test_pss_randomized_signatures_differ_but_both_verify(key):
    drbg = Drbg("salts")
    s1 = rsa.sign_pss(key, b"m", drbg)
    s2 = rsa.sign_pss(key, b"m", drbg)
    assert s1 != s2
    assert rsa.verify_pss(key.public, b"m", s1)
    assert rsa.verify_pss(key.public, b"m", s2)


def test_pss_without_drbg_is_deterministic(key):
    assert rsa.sign_pss(key, b"m") == rsa.sign_pss(key, b"m")
    assert rsa.verify_pss(key.public, b"m", rsa.sign_pss(key, b"m"))


def test_signature_length_checks(key):
    sig = rsa.sign_pss(key, b"m", Drbg("x"))
    assert not rsa.verify_pss(key.public, b"m", sig[:-1])
    assert not rsa.verify_pkcs1(key.public, b"m", b"\x01" * 127)


def test_cross_scheme_rejection(key):
    pkcs1 = rsa.sign_pkcs1(key, b"m")
    pss = rsa.sign_pss(key, b"m", Drbg("y"))
    assert not rsa.verify_pss(key.public, b"m", pkcs1)
    assert not rsa.verify_pkcs1(key.public, b"m", pss)


def test_signature_ge_modulus_rejected(key):
    too_big = (key.n + 1).to_bytes(129, "big")[-128:]
    # value >= n must be rejected, not wrapped
    assert not rsa.verify_pkcs1(key.public, b"m", (key.n - 0).to_bytes(128, "big"))
    assert not rsa.verify_pss(key.public, b"m", too_big)


def test_odd_modulus_size_rejected():
    with pytest.raises(ValueError):
        rsa.generate_keypair(1023, Drbg("z"))
