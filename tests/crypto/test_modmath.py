"""Modular arithmetic, Miller–Rabin, prime generation, Tonelli–Shanks."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import Drbg
from repro.crypto.modmath import generate_prime, invmod, is_probable_prime, legendre, sqrt_mod


@given(st.integers(min_value=2, max_value=10**9))
def test_invmod_inverse_property(m):
    a = 1234567891
    try:
        inv = invmod(a, m)
    except ValueError:
        from math import gcd
        assert gcd(a, m) != 1
        return
    assert a * inv % m == 1


def test_invmod_edge_cases():
    assert invmod(1, 7) == 1
    assert invmod(-1, 7) == 6
    with pytest.raises(ValueError):
        invmod(6, 9)  # gcd 3
    with pytest.raises(ValueError):
        invmod(3, 0)


KNOWN_PRIMES = [2, 3, 5, 101, 104729, 2**31 - 1, 2**61 - 1,
                0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF]
KNOWN_COMPOSITES = [0, 1, 4, 561, 41041, 825265, 2**31, 2**61 - 3,
                    104729 * 104729]


def test_miller_rabin_primes():
    assert all(is_probable_prime(p) for p in KNOWN_PRIMES)


def test_miller_rabin_composites_including_carmichael():
    assert not any(is_probable_prime(c) for c in KNOWN_COMPOSITES)


def test_generate_prime_properties():
    drbg = Drbg("prime-test")
    for bits in (64, 128, 256):
        p = generate_prime(bits, drbg)
        assert p.bit_length() == bits
        assert p % 2 == 1
        assert is_probable_prime(p)
        # top two bits set (RSA modulus size guarantee)
        assert (p >> (bits - 2)) & 0b11 == 0b11


def test_generate_prime_rejects_tiny():
    with pytest.raises(ValueError):
        generate_prime(8, Drbg("x"))


def test_legendre_symbol():
    p = 104729
    assert legendre(4, p) == 1           # obvious square
    # a non-residue has symbol p-1
    non_residues = [a for a in range(2, 50) if legendre(a, p) == p - 1]
    assert non_residues


@given(st.integers(min_value=0, max_value=10**6))
def test_sqrt_mod_on_squares(x):
    p = 2**31 - 1  # p % 4 == 3 branch
    root = sqrt_mod(x * x % p, p)
    assert root * root % p == x * x % p


def test_sqrt_mod_tonelli_branch():
    p = 104729  # p % 4 == 1: exercises the full Tonelli–Shanks loop
    for x in (2, 3, 12345, 99999):
        square = x * x % p
        root = sqrt_mod(square, p)
        assert root * root % p == square


def test_sqrt_mod_non_residue_rejected():
    p = 104729
    non_residue = next(a for a in range(2, 50) if legendre(a, p) == p - 1)
    with pytest.raises(ValueError):
        sqrt_mod(non_residue, p)


def test_sqrt_mod_zero():
    assert sqrt_mod(0, 7) == 0
