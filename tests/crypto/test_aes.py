"""AES: FIPS-197 vectors, CTR mode, and the raw round function."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX, aes_ctr_keystream, aes_ctr_xor, aes_round

FIPS_KEY_PT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_fips197_aes128():
    aes = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    assert aes.encrypt_block(FIPS_KEY_PT) == bytes.fromhex(
        "69c4e0d86a7b0430d8cdb78070b4c55a")


def test_fips197_aes192():
    aes = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"))
    assert aes.encrypt_block(FIPS_KEY_PT) == bytes.fromhex(
        "dda97ca4864cdfe06eaf70a0ec0d7191")


def test_fips197_aes256():
    aes = AES(bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"))
    assert aes.encrypt_block(FIPS_KEY_PT) == bytes.fromhex(
        "8ea2b7ca516745bfeafc49904b496089")


def test_sbox_known_values_and_inverse():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert all(INV_SBOX[SBOX[b]] == b for b in range(256))
    assert sorted(SBOX) == list(range(256))  # bijection


def test_bad_key_and_block_sizes_rejected():
    with pytest.raises(ValueError):
        AES(b"short")
    aes = AES(b"k" * 16)
    with pytest.raises(ValueError):
        aes.encrypt_block(b"x" * 15)


def test_ctr_keystream_deterministic_and_prefix_consistent():
    key, nonce = b"k" * 16, b"n" * 12
    long = aes_ctr_keystream(key, nonce, 100)
    short = aes_ctr_keystream(key, nonce, 40)
    assert long[:40] == short


def test_ctr_nonce_length_enforced():
    with pytest.raises(ValueError):
        aes_ctr_keystream(b"k" * 16, b"n" * 11, 16)


@given(st.binary(min_size=0, max_size=200))
def test_ctr_xor_is_involution(data):
    key, nonce = b"\x01" * 16, b"\x02" * 12
    assert aes_ctr_xor(key, nonce, aes_ctr_xor(key, nonce, data)) == data


def test_distinct_nonces_give_distinct_streams():
    key = b"k" * 32
    s1 = aes_ctr_keystream(key, b"\x00" * 12, 32)
    s2 = aes_ctr_keystream(key, b"\x01" + b"\x00" * 11, 32)
    assert s1 != s2


def test_aes_round_matches_block_cipher_structure():
    """A 10-round AES-128 built from aes_round + manual first/last steps
    must agree with the T-table encrypt_block (final round differs: no
    MixColumns), so check aes_round against one explicit middle round."""
    key = bytes(range(16))
    aes = AES(key)
    # reconstruct round keys as bytes
    rks = [b"".join(w.to_bytes(4, "big") for w in aes._round_keys[4 * i: 4 * i + 4])
           for i in range(11)]
    state = bytes(a ^ b for a, b in zip(FIPS_KEY_PT, rks[0]))
    for r in range(1, 10):
        state = aes_round(state, rks[r])
    # last round (SubBytes + ShiftRows + AddRoundKey) done by hand
    sub = bytes(SBOX[b] for b in state)
    shifted = bytearray(16)
    for c in range(4):
        for r in range(4):
            shifted[4 * c + r] = sub[4 * ((c + r) % 4) + r]
    final = bytes(a ^ b for a, b in zip(shifted, rks[10]))
    assert final == aes.encrypt_block(FIPS_KEY_PT)


def test_aes_round_rejects_bad_lengths():
    with pytest.raises(ValueError):
        aes_round(b"x" * 15, b"k" * 16)
    with pytest.raises(ValueError):
        aes_round(b"x" * 16, b"k" * 15)
