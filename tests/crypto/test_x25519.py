"""X25519: RFC 7748 vectors and Diffie–Hellman properties."""

import pytest

from repro.crypto.ec.x25519 import x25519, x25519_base


def test_rfc7748_vector_1():
    k = bytes.fromhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
    u = bytes.fromhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
    assert x25519(k, u) == bytes.fromhex(
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")


def test_rfc7748_vector_2():
    k = bytes.fromhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
    u = bytes.fromhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
    assert x25519(k, u) == bytes.fromhex(
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")


def test_rfc7748_iterated_vector_one_round():
    k = u = (9).to_bytes(32, "little")
    result = x25519(k, u)
    assert result == bytes.fromhex(
        "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")


def test_diffie_hellman_agreement():
    alice_sk = bytes(range(32))
    bob_sk = bytes(range(32, 64))
    alice_pk = x25519_base(alice_sk)
    bob_pk = x25519_base(bob_sk)
    assert x25519(alice_sk, bob_pk) == x25519(bob_sk, alice_pk)


def test_clamping_makes_low_bits_irrelevant():
    base = bytearray(b"\x40" + b"\x11" * 31)
    variant = bytearray(base)
    variant[0] |= 0x07  # bits cleared by clamping
    assert x25519_base(bytes(base)) == x25519_base(bytes(variant))


def test_high_bit_of_u_ignored():
    k = b"\x01" * 32
    u = bytearray(b"\x09" + b"\x00" * 31)
    u_with_bit = bytearray(u)
    u_with_bit[31] |= 0x80
    assert x25519(k, bytes(u)) == x25519(k, bytes(u_with_bit))


def test_length_validation():
    with pytest.raises(ValueError):
        x25519(b"\x00" * 31, b"\x09" + b"\x00" * 31)
    with pytest.raises(ValueError):
        x25519(b"\x00" * 32, b"\x09" + b"\x00" * 30)
