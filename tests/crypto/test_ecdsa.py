"""ECDSA: correctness, determinism (RFC 6979), and rejection paths."""

import pytest

from repro.crypto.drbg import Drbg
from repro.crypto.ec import ecdsa
from repro.crypto.ec.curves import P256, P384, P521

ALL = [P256, P384, P521]


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_sign_verify_roundtrip(curve):
    drbg = Drbg("ecdsa-" + curve.name)
    private, public = ecdsa.generate_keypair(curve, drbg)
    sig = ecdsa.sign(curve, private, b"authenticated message")
    assert len(sig) == 2 * curve.coord_bytes
    assert ecdsa.verify(curve, public, b"authenticated message", sig)


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_wrong_message_rejected(curve):
    drbg = Drbg("ecdsa-neg-" + curve.name)
    private, public = ecdsa.generate_keypair(curve, drbg)
    sig = ecdsa.sign(curve, private, b"original")
    assert not ecdsa.verify(curve, public, b"altered!", sig)


def test_deterministic_nonces():
    drbg = Drbg("det")
    private, _ = ecdsa.generate_keypair(P256, drbg)
    assert ecdsa.sign(P256, private, b"m") == ecdsa.sign(P256, private, b"m")
    assert ecdsa.sign(P256, private, b"m1") != ecdsa.sign(P256, private, b"m2")


def test_tampered_signature_rejected():
    drbg = Drbg("tamper")
    private, public = ecdsa.generate_keypair(P256, drbg)
    sig = bytearray(ecdsa.sign(P256, private, b"m"))
    sig[10] ^= 0xFF
    assert not ecdsa.verify(P256, public, b"m", bytes(sig))


def test_wrong_key_rejected():
    drbg = Drbg("wrongkey")
    private, _ = ecdsa.generate_keypair(P256, drbg)
    _, other_public = ecdsa.generate_keypair(P256, drbg)
    sig = ecdsa.sign(P256, private, b"m")
    assert not ecdsa.verify(P256, other_public, b"m", sig)


def test_malformed_inputs_return_false():
    drbg = Drbg("malformed")
    private, public = ecdsa.generate_keypair(P256, drbg)
    sig = ecdsa.sign(P256, private, b"m")
    assert not ecdsa.verify(P256, public, b"m", sig[:-1])          # bad length
    assert not ecdsa.verify(P256, public, b"m", b"\x00" * 64)      # r = s = 0
    assert not ecdsa.verify(P256, b"\x04" + b"\x01" * 64, b"m", sig)  # bad point


def test_cross_curve_signature_rejected():
    drbg = Drbg("crosscurve")
    private, public = ecdsa.generate_keypair(P256, drbg)
    sig = ecdsa.sign(P256, private, b"m")
    assert not ecdsa.verify(P384, public, b"m", sig)
