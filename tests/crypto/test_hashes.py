"""Hashes, HMAC (vs the stdlib), HKDF (RFC 5869 vectors), MGF1."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, strategies as st

from repro.crypto.hashes import (
    hkdf_expand,
    hkdf_extract,
    hmac_digest,
    mgf1,
    sha256,
    sha384,
    shake128,
    shake256,
)


def test_wrappers_match_hashlib():
    data = b"The quick brown fox"
    assert sha256(data) == hashlib.sha256(data).digest()
    assert sha384(data) == hashlib.sha384(data).digest()
    assert shake128(data, 17) == hashlib.shake_128(data).digest(17)
    assert shake256(data, 99) == hashlib.shake_256(data).digest(99)


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_hmac_matches_stdlib(key, message):
    ours = hmac_digest(key, message, "sha256")
    theirs = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert ours == theirs


def test_hmac_sha384_matches_stdlib():
    key, msg = b"k" * 200, b"block-size-exceeding key path"
    assert hmac_digest(key, msg, "sha384") == stdlib_hmac.new(
        key, msg, hashlib.sha384).digest()


def test_hkdf_rfc5869_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk == bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
    okm = hkdf_expand(prk, info, 42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865")


def test_hkdf_rfc5869_case_3_empty_salt_info():
    ikm = bytes.fromhex("0b" * 22)
    prk = hkdf_extract(b"", ikm)
    okm = hkdf_expand(prk, b"", 42)
    assert okm == bytes.fromhex(
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8")


def test_hkdf_expand_length_limit():
    import pytest

    prk = b"\x01" * 32
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 255 * 32 + 1)


@given(st.integers(min_value=0, max_value=500))
def test_mgf1_length_and_prefix(length):
    full = mgf1(b"seed", 500)
    assert mgf1(b"seed", length) == full[:length]


def test_mgf1_counter_progression():
    # output block i is Hash(seed || I2OSP(i, 4))
    block0 = hashlib.sha256(b"s" + (0).to_bytes(4, "big")).digest()
    block1 = hashlib.sha256(b"s" + (1).to_bytes(4, "big")).digest()
    assert mgf1(b"s", 64) == block0 + block1
