"""NIST P-curves: group laws, orders, encodings, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.ec.curves import CURVES, INFINITY, P256, P384, P521, Point

ALL = [P256, P384, P521]


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_generator_on_curve(curve):
    assert curve.is_on_curve(curve.g)


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_order_annihilates_generator(curve):
    # n*G == infinity checked without the k %= n shortcut:
    # (n-1)*G + G must be infinity
    almost = curve.scalar_mult(curve.n - 1)
    assert curve.add(almost, curve.g).is_infinity


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_scalar_mult_matches_repeated_addition(curve):
    acc = INFINITY
    for k in range(1, 8):
        acc = curve.add(acc, curve.g)
        assert curve.scalar_mult(k) == acc


@given(st.integers(min_value=1, max_value=2**100), st.integers(min_value=1, max_value=2**100))
def test_scalar_mult_additive_homomorphism(k1, k2):
    curve = P256
    lhs = curve.add(curve.scalar_mult(k1), curve.scalar_mult(k2))
    rhs = curve.scalar_mult(k1 + k2)
    assert lhs == rhs


@given(st.integers(min_value=2, max_value=2**64))
def test_scalar_mult_composition(k):
    curve = P256
    q = curve.scalar_mult(k)
    assert curve.scalar_mult(3, q) == curve.scalar_mult(3 * k)


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_point_codec_roundtrip(curve):
    q = curve.scalar_mult(987654321)
    assert curve.decode_point(curve.encode_point(q)) == q


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_encoding_length(curve):
    q = curve.scalar_mult(2)
    assert len(curve.encode_point(q)) == 1 + 2 * curve.coord_bytes


def test_decode_rejects_bad_prefix_and_length():
    q = P256.encode_point(P256.scalar_mult(5))
    with pytest.raises(ValueError):
        P256.decode_point(b"\x02" + q[1:])
    with pytest.raises(ValueError):
        P256.decode_point(q[:-1])


def test_decode_rejects_off_curve_point():
    bad = b"\x04" + (5).to_bytes(32, "big") + (7).to_bytes(32, "big")
    with pytest.raises(ValueError):
        P256.decode_point(bad)


def test_infinity_handling():
    assert P256.add(INFINITY, P256.g) == P256.g
    assert P256.add(P256.g, INFINITY) == P256.g
    assert P256.scalar_mult(0).is_infinity
    with pytest.raises(ValueError):
        P256.encode_point(INFINITY)


def test_inverse_points_sum_to_infinity():
    q = P256.scalar_mult(11)
    neg = Point(q.x, P256.p - q.y)
    assert P256.add(q, neg).is_infinity


def test_lift_x_round_trips():
    q = P384.scalar_mult(123)
    lifted = P384.lift_x(q.x, q.y % 2)
    assert lifted == q


def test_curves_registry():
    assert set(CURVES) == {"p256", "p384", "p521"}
    assert CURVES["p521"].coord_bytes == 66


@pytest.mark.parametrize("curve", ALL, ids=lambda c: c.name)
def test_known_order_is_prime_sized(curve):
    assert curve.n.bit_length() in (256, 384, 521)
    assert curve.n != curve.p
