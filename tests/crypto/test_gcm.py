"""AES-GCM: NIST test vectors and AEAD properties."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.gcm import AesGcm, gf_mul


def test_nist_case_1_empty():
    gcm = AesGcm(b"\x00" * 16)
    assert gcm.encrypt(b"\x00" * 12, b"") == bytes.fromhex(
        "58e2fccefa7e3061367f1d57a4e7455a")


def test_nist_case_2_single_block():
    gcm = AesGcm(b"\x00" * 16)
    out = gcm.encrypt(b"\x00" * 12, b"\x00" * 16)
    assert out == bytes.fromhex(
        "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")


def test_nist_case_4_with_aad():
    gcm = AesGcm(bytes.fromhex("feffe9928665731c6d6a8f9467308308"))
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39")
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    out = gcm.encrypt(iv, plaintext, aad)
    assert out[-16:] == bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")
    assert gcm.decrypt(iv, out, aad) == plaintext


@given(st.binary(max_size=300), st.binary(max_size=64))
def test_roundtrip(plaintext, aad):
    gcm = AesGcm(b"k" * 16)
    nonce = b"n" * 12
    assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


def test_ciphertext_tamper_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"hello world"))
    out[0] ^= 1
    with pytest.raises(ValueError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_tag_tamper_detected():
    gcm = AesGcm(b"k" * 16)
    out = bytearray(gcm.encrypt(b"n" * 12, b"hello world"))
    out[-1] ^= 1
    with pytest.raises(ValueError):
        gcm.decrypt(b"n" * 12, bytes(out))


def test_aad_mismatch_detected():
    gcm = AesGcm(b"k" * 16)
    out = gcm.encrypt(b"n" * 12, b"data", aad=b"right")
    with pytest.raises(ValueError):
        gcm.decrypt(b"n" * 12, out, aad=b"wrong")


def test_truncated_input_rejected():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(ValueError):
        gcm.decrypt(b"n" * 12, b"too-short")


def test_bad_nonce_length_rejected():
    gcm = AesGcm(b"k" * 16)
    with pytest.raises(ValueError):
        gcm.encrypt(b"n" * 11, b"x")
    with pytest.raises(ValueError):
        gcm.decrypt(b"n" * 13, b"x" * 16)


def test_distinct_nonces_distinct_ciphertexts():
    gcm = AesGcm(b"k" * 16)
    c1 = gcm.encrypt(b"\x00" * 12, b"message")
    c2 = gcm.encrypt(b"\x01" + b"\x00" * 11, b"message")
    assert c1 != c2


def test_aes256_gcm_works():
    gcm = AesGcm(b"k" * 32)
    nonce = b"n" * 12
    assert gcm.decrypt(nonce, gcm.encrypt(nonce, b"payload")) == b"payload"


# -- GF(2^128) multiply ------------------------------------------------------

def test_gf_mul_identity_and_commutativity():
    # 1 in GCM's reflected representation is the MSB-first value 2^127
    one = 1 << 127
    x = 0x0123456789ABCDEF0123456789ABCDEF
    y = 0x00FEDCBA98765432100123456789ABCD
    assert gf_mul(x, one) == x
    assert gf_mul(one, y) == y
    assert gf_mul(x, y) == gf_mul(y, x)


def test_gf_mul_distributive():
    a, b, c = 0xAAAA << 100, 0x1234567, (1 << 127) | 0x42
    assert gf_mul(a ^ b, c) == gf_mul(a, c) ^ gf_mul(b, c)
