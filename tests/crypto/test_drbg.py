"""Deterministic RNG: reproducibility, stream independence, distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import Drbg


def test_same_seed_same_stream():
    assert Drbg("seed").random_bytes(100) == Drbg("seed").random_bytes(100)


def test_different_seeds_differ():
    assert Drbg("seed-a").random_bytes(32) != Drbg("seed-b").random_bytes(32)


def test_seed_types_accepted():
    assert Drbg(b"x").random_bytes(8)
    assert Drbg("x").random_bytes(8)
    assert Drbg(12345).random_bytes(8)


def test_byte_seed_matches_str_seed():
    assert Drbg("abc").random_bytes(16) == Drbg(b"abc").random_bytes(16)


def test_incremental_reads_match_bulk_read():
    bulk = Drbg("seed").random_bytes(64)
    inc = Drbg("seed")
    assert inc.random_bytes(10) + inc.random_bytes(30) + inc.random_bytes(24) == bulk


def test_fork_is_independent_of_parent_position():
    parent1 = Drbg("seed")
    parent2 = Drbg("seed")
    parent2.random_bytes(100)  # advance
    assert parent1.fork("child").random_bytes(32) == parent2.fork("child").random_bytes(32)


def test_fork_labels_distinct():
    parent = Drbg("seed")
    assert parent.fork("a").random_bytes(32) != parent.fork("b").random_bytes(32)


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        Drbg("s").random_bytes(-1)


@given(st.integers(min_value=1, max_value=10**12))
def test_randint_below_in_range(bound):
    value = Drbg(b"bnd").randint_below(bound)
    assert 0 <= value < bound


def test_randint_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        Drbg("s").randint_below(0)


def test_randint_inclusive_endpoints_reachable():
    drbg = Drbg("endpoints")
    seen = {drbg.randint(0, 1) for _ in range(64)}
    assert seen == {0, 1}


def test_randint_empty_range_rejected():
    with pytest.raises(ValueError):
        Drbg("s").randint(3, 2)


def test_random_unit_interval():
    drbg = Drbg("floats")
    values = [drbg.random() for _ in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert 0.3 < sum(values) / len(values) < 0.7  # roughly uniform


def test_shuffle_is_permutation():
    drbg = Drbg("shuffle")
    items = list(range(50))
    shuffled = list(items)
    drbg.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_choice_from_singleton_and_empty():
    assert Drbg("s").choice([42]) == 42
    with pytest.raises(ValueError):
        Drbg("s").choice([])


@given(st.integers(min_value=1, max_value=500), st.data())
def test_sample_distinct_properties(bound, data):
    count = data.draw(st.integers(min_value=0, max_value=bound))
    sample = Drbg(b"sd").sample_distinct(bound, count)
    assert len(sample) == count
    assert len(set(sample)) == count
    assert all(0 <= v < bound for v in sample)


def test_sample_distinct_overdraw_rejected():
    with pytest.raises(ValueError):
        Drbg("s").sample_distinct(5, 6)


def test_uniformity_of_randint_below():
    drbg = Drbg("uniform")
    counts = [0] * 7
    for _ in range(7000):
        counts[drbg.randint_below(7)] += 1
    assert min(counts) > 800 and max(counts) < 1200
