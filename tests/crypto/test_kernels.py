"""Fast kernels are byte-for-byte equivalent to their reference twins.

Every switch point registered in ``repro.crypto.kernels`` is exercised
under both modes with randomized (Drbg-derived, so reproducible) inputs
and compared exactly — the fast path must be an *observationally
invisible* substitution. The final test closes the loop at campaign
level: a handshake recorded under ``PQTLS_KERNELS=ref`` in a fresh
interpreter is identical to one recorded under ``fast``.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.crypto import kernels
from repro.crypto.drbg import Drbg

pytestmark = pytest.mark.kernels


def both_modes(fn):
    """Call ``fn`` under each kernel mode, return {mode: result}."""
    out = {}
    for mode in ("ref", "fast"):
        with kernels.override(mode):
            out[mode] = fn()
    return out


def test_mode_env_default_and_override():
    assert kernels.mode() in ("ref", "fast")
    with kernels.override("ref"):
        assert kernels.mode() == "ref" and not kernels.fast_enabled()
    with kernels.override("fast"):
        assert kernels.mode() == "fast" and kernels.fast_enabled()


# -- AES / GCM ---------------------------------------------------------------

def test_aes_block_ref_equals_fast():
    from repro.crypto.aes import AES

    drbg = Drbg(b"kernels-aes")
    for key_len in (16, 24, 32):
        key = drbg.random_bytes(key_len)
        blocks = [drbg.random_bytes(16) for _ in range(8)] + [bytes(16)]
        got = both_modes(lambda: [AES(key).encrypt_block(b) for b in blocks])
        assert got["ref"] == got["fast"]


def test_aes_ctr_keystream_ref_equals_fast():
    from repro.crypto import aes

    drbg = Drbg(b"kernels-ctr")
    key, nonce = drbg.random_bytes(16), drbg.random_bytes(12)
    for length in (0, 1, 15, 16, 17, 500, 4096):
        got = both_modes(lambda: aes.aes_ctr_keystream(key, nonce, length))
        assert got["ref"] == got["fast"], length


def test_aes_gcm_ref_equals_fast_and_tamper_detected():
    from repro.crypto.gcm import AesGcm

    drbg = Drbg(b"kernels-gcm")
    key = drbg.random_bytes(16)
    for pt_len, aad_len in [(0, 0), (1, 7), (16, 16), (100, 0), (4096, 13)]:
        nonce = drbg.random_bytes(12)
        pt, aad = drbg.random_bytes(pt_len), drbg.random_bytes(aad_len)
        got = both_modes(lambda: AesGcm(key).encrypt(nonce, pt, aad))
        assert got["ref"] == got["fast"], (pt_len, aad_len)
        ct = got["fast"]
        with kernels.override("fast"):
            assert AesGcm(key).decrypt(nonce, ct, aad) == pt
            flipped = bytes([ct[0] ^ 1]) + ct[1:]
            with pytest.raises(ValueError):
                AesGcm(key).decrypt(nonce, flipped, aad)


# -- Haraka ------------------------------------------------------------------

def test_haraka_ref_equals_fast():
    from repro.crypto import haraka

    drbg = Drbg(b"kernels-haraka")
    for _ in range(5):
        d32, d64 = drbg.random_bytes(32), drbg.random_bytes(64)
        got = both_modes(lambda: (haraka.haraka256(d32),
                                  haraka.haraka512(d64)))
        assert got["ref"] == got["fast"]


def test_haraka_sponge_and_keyed_ref_equals_fast():
    from repro.crypto import haraka

    drbg = Drbg(b"kernels-harakas")
    seed = drbg.random_bytes(32)
    msg = drbg.random_bytes(177)

    def run():
        keyed = haraka.haraka_keyed(seed)
        return (keyed.haraka_sponge(msg, 40),
                keyed.haraka512(msg[:64]),
                haraka.haraka_keyed(seed) is keyed if kernels.fast_enabled()
                else True)  # fast path memoizes the keyed instance
    got = both_modes(run)
    assert got["ref"][:2] == got["fast"][:2]
    assert got["fast"][2] is True


# -- Kyber / Dilithium polynomial ops ----------------------------------------

def test_kyber_poly_ops_ref_equals_fast():
    from repro.pqc.kyber import poly as kp

    drbg = Drbg(b"kernels-kyber")
    a = [drbg.randint(0, kp.Q - 1) for _ in range(256)]
    b = [drbg.randint(0, kp.Q - 1) for _ in range(256)]

    def run():
        ah, bh = kp.ntt(list(a)), kp.ntt(list(b))
        prod = kp.basemul(ah, bh)
        return (ah, bh, prod, kp.intt(list(prod)),
                kp.poly_add(a, b), kp.poly_sub(a, b),
                kp.compress(a, 10), kp.decompress(kp.compress(a, 4), 4),
                kp.pack_bits(a, 12), kp.unpack_bits(kp.pack_bits(a, 12), 12))
    got = both_modes(run)
    assert got["ref"] == got["fast"]


def test_kyber_cbd_and_parse_uniform_ref_equals_fast():
    from repro.pqc.kyber import poly as kp

    drbg = Drbg(b"kernels-cbd")
    for eta in (2, 3):
        data = drbg.random_bytes(64 * eta)
        got = both_modes(lambda: kp.cbd(data, eta))
        assert got["ref"] == got["fast"], eta

    seed = drbg.random_bytes(32)

    def stream():
        return kp.XofStream(
            lambda ctr: hashlib.shake_128(seed + ctr.to_bytes(4, "big")).digest(168))
    got = both_modes(lambda: kp.parse_uniform(stream()))
    assert got["ref"] == got["fast"]


def test_dilithium_poly_ops_ref_equals_fast():
    from repro.pqc.dilithium import poly as dp

    drbg = Drbg(b"kernels-dilithium")
    a = [drbg.randint(0, dp.Q - 1) for _ in range(256)]
    b = [drbg.randint(0, dp.Q - 1) for _ in range(256)]

    def run():
        ah, bh = dp.ntt(list(a)), dp.ntt(list(b))
        prod = dp.pointwise(ah, bh)
        return (ah, bh, prod, dp.intt(list(prod)), dp.add(a, b), dp.sub(a, b),
                dp.pack_bits(a, 23), dp.unpack_bits(dp.pack_bits(a, 23), 23))
    got = both_modes(run)
    assert got["ref"] == got["fast"]


def test_kyber90s_xof_roundtrip_ref_equals_fast():
    # exercises the incremental AES-CTR XOF against the sliced reference
    from repro.pqc.registry import get_kem

    def run():
        kem = get_kem("kyber90s512")
        drbg = Drbg(b"kernels-90s")
        pk, sk = kem.keygen(drbg)
        ct, ss = kem.encaps(pk, drbg)
        return pk, sk, ct, ss, kem.decaps(sk, ct)
    got = both_modes(run)
    assert got["ref"] == got["fast"]


# -- RSA / EC / GF(256) ------------------------------------------------------

def test_rsa_crt_ref_equals_fast():
    from repro.pqc.registry import get_sig

    sig = get_sig("rsa:1024")
    pk, sk = sig.keygen(Drbg(b"kernels-rsa"))
    msg = b"kernel equivalence"

    def run():
        drbg = Drbg(b"kernels-rsa-sign")
        s = sig.sign(sk, msg, drbg)
        return s, sig.verify(pk, msg, s)
    got = both_modes(run)
    assert got["ref"] == got["fast"]
    assert got["fast"][1] is True


def test_ec_scalar_mult_ref_equals_fast():
    from repro.crypto.ec.curves import CURVES

    drbg = Drbg(b"kernels-ec")
    for name, curve in CURVES.items():
        ks = [1, 2, 3, curve.n - 1, curve.n + 5,
              drbg.randint(1, curve.n - 1)]

        def run():
            fixed = [curve.scalar_mult(k) for k in ks]
            p = curve.scalar_mult(ks[-1])
            arbitrary = [curve.scalar_mult(k, p) for k in ks]
            zero = curve.scalar_mult(0)
            return fixed, arbitrary, zero
        got = both_modes(run)
        assert got["ref"] == got["fast"], name
        assert got["fast"][2].x is None  # k = 0 -> point at infinity


def test_gf256_poly_mul_ref_equals_fast():
    from repro.pqc.hqc import gf256

    drbg = Drbg(b"kernels-gf256")
    cases = [([], [1, 2]), ([0, 0], [0]), ([1], [255])]
    for _ in range(10):
        la, lb = drbg.randint(1, 40), drbg.randint(1, 40)
        cases.append(([drbg.randint(0, 255) for _ in range(la)],
                      [drbg.randint(0, 255) for _ in range(lb)]))
    for a, b in cases:
        got = both_modes(lambda: gf256.poly_mul(a, b))
        assert got["ref"] == got["fast"], (a, b)


def test_gf256_poly_mul_crosses_the_numpy_threshold():
    # the gather kernel only engages above _NUMPY_MIN products; exercise
    # both sides of the cutover, RS-decoder-shaped sizes, and sparsity
    from repro.pqc.hqc import gf256

    drbg = Drbg(b"kernels-gf256-np")
    cases = [(8, 8), (16, 8), (30, 31), (46, 16), (90, 60), (128, 1)]
    for la, lb in cases:
        a = [drbg.randint(0, 255) for _ in range(la)]
        b = [drbg.randint(0, 255) for _ in range(lb)]
        for i in range(0, la, 3):     # sprinkle zero coefficients
            a[i] = 0
        got = both_modes(lambda: gf256.poly_mul(a, b))
        assert got["ref"] == got["fast"], (la, lb)


# -- HQC sparse/dense products and RS-RM decode ------------------------------

def test_hqc_sparse_mul_ref_equals_fast():
    import numpy as np

    from repro.pqc.hqc import kem as hqc_kem

    drbg = Drbg(b"kernels-sparse")
    for n, weight in [(97, 5), (17669, 66)]:   # toy ring + real hqc-128 ring
        dense = np.array([drbg.randint(0, 1) for _ in range(n)], dtype=np.uint8)
        support = drbg.sample_distinct(n, weight)
        support = sorted(set(support) | {0, n - 1})  # edge shifts
        got = both_modes(lambda: hqc_kem._sparse_mul(support, dense))
        assert got["ref"].dtype == got["fast"].dtype
        assert np.array_equal(got["ref"], got["fast"]), n


def test_hqc_rm_decode_ref_equals_fast_on_corrupted_codewords():
    import numpy as np

    from repro.pqc.hqc import reedmuller

    drbg = Drbg(b"kernels-rm")
    for n1, multiplicity in [(46, 3), (56, 5)]:
        symbols = bytes(drbg.randint(0, 255) for _ in range(n1))
        bits = reedmuller.rm_encode(symbols, multiplicity)
        # flip a noisy-but-decodable fraction of the bits, then a heavy
        # fraction: the modes must agree even when decoding goes wrong
        for flips in (bits.shape[0] // 20, bits.shape[0] // 3):
            corrupted = bits.copy()
            for pos in drbg.sample_distinct(bits.shape[0], flips):
                corrupted[pos] ^= 1
            got = both_modes(
                lambda: reedmuller.rm_decode(corrupted, n1, multiplicity))
            assert got["ref"] == got["fast"], (n1, multiplicity, flips)
        with kernels.override("fast"):
            assert reedmuller.rm_decode(bits, n1, multiplicity) == symbols
            with pytest.raises(ValueError, match="expected"):
                reedmuller.rm_decode(bits[:-1], n1, multiplicity)


def _outcome(fn):
    """Result or (exception type, message): failure parity across modes."""
    try:
        return fn()
    except ValueError as exc:
        return (type(exc).__name__, str(exc))


def test_hqc_rs_decode_ref_equals_fast_across_error_weights():
    from repro.pqc.hqc.reedsolomon import ReedSolomon

    drbg = Drbg(b"kernels-rs")
    for n, k in [(46, 16), (56, 24)]:
        rs = ReedSolomon(n, k)
        message = bytes(drbg.randint(0, 255) for _ in range(k))
        codeword = both_modes(lambda: rs.encode(message))
        assert codeword["ref"] == codeword["fast"]
        # 0..delta errors decode; delta+2 and a blasted word must fail
        # with the same exception type and message under both modes
        for errors in (0, 1, rs.delta // 2, rs.delta, rs.delta + 2, n // 2):
            corrupted = bytearray(codeword["fast"])
            for pos in drbg.sample_distinct(n, errors):
                corrupted[pos] ^= drbg.randint(1, 255)
            got = both_modes(lambda: _outcome(
                lambda: rs.decode(bytes(corrupted))))
            assert got["ref"] == got["fast"], (n, k, errors)
            if errors <= rs.delta:
                assert got["fast"] == message


def test_hqc_kem_roundtrip_ref_equals_fast():
    from repro.pqc.registry import get_kem

    def run():
        kem = get_kem("hqc128")
        drbg = Drbg(b"kernels-hqc")
        pk, sk = kem.keygen(drbg)
        ct, ss = kem.encaps(pk, drbg)
        # tampered ciphertext drives the decode-failure / implicit-
        # rejection path; both modes must still agree byte-for-byte
        tampered = bytes([ct[0] ^ 1]) + ct[1:]
        return pk, sk, ct, ss, kem.decaps(sk, ct), kem.decaps(sk, tampered)
    got = both_modes(run)
    assert got["ref"] == got["fast"]
    assert got["fast"][3] == got["fast"][4]      # encaps ss == decaps ss
    assert got["fast"][5] != got["fast"][3]      # rejection key differs


# -- Dilithium batched vector ops --------------------------------------------

DILITHIUM_ALPHAS = (190464, 523776)   # 2*gamma2 for dilithium2 and 3/5


def test_dilithium_vec_ntt_and_matvec_ref_equals_fast():
    from repro.pqc.dilithium import poly as dp

    drbg = Drbg(b"kernels-dvec")
    vec = [[drbg.randint(0, dp.Q - 1) for _ in range(256)] for _ in range(4)]
    mat = [[[drbg.randint(0, dp.Q - 1) for _ in range(256)]
            for _ in range(4)] for _ in range(3)]
    one = [drbg.randint(0, dp.Q - 1) for _ in range(256)]

    def run():
        v_hat = dp.ntt_vec([list(row) for row in vec])
        return (v_hat, dp.intt_vec([list(row) for row in v_hat]),
                dp.matvec_pointwise(mat, v_hat),
                dp.pointwise_each(one, v_hat),
                dp.add_vec(vec, v_hat), dp.sub_vec(vec, v_hat),
                dp.neg_vec(vec), dp.inf_norm_vec(vec))
    got = both_modes(run)
    assert got["ref"] == got["fast"]


@pytest.mark.parametrize("alpha", DILITHIUM_ALPHAS)
def test_dilithium_vec_decompose_and_hints_ref_equals_fast(alpha):
    from repro.pqc.dilithium import poly as dp

    drbg = Drbg(b"kernels-hints")
    # include the q-1 wraparound corner and the alpha boundary values
    specials = [0, 1, dp.Q - 1, dp.Q - 2, alpha, alpha - 1, alpha // 2,
                alpha // 2 + 1, dp.Q - alpha, dp.Q - alpha // 2]
    rows = [specials + [drbg.randint(0, dp.Q - 1)
                        for _ in range(256 - len(specials))]
            for _ in range(4)]
    z_rows = [[drbg.randint(0, dp.Q - 1) for _ in range(256)]
              for _ in range(4)]

    def run():
        hints = dp.make_hint_vec(z_rows, rows, alpha)
        return (dp.highbits_vec(rows, alpha), dp.lowbits_vec(rows, alpha),
                hints, dp.use_hint_vec(hints, rows, alpha),
                dp.power2round_vec(rows))
    got = both_modes(run)
    assert got["ref"] == got["fast"]
    # scalar reference cross-check on the first row
    with kernels.override("fast"):
        assert dp.highbits_vec(rows, alpha)[0] == \
            [dp.highbits(r, alpha) for r in rows[0]]


def test_dilithium_rej_uniform_ref_equals_fast():
    from repro.pqc.dilithium import poly as dp

    drbg = Drbg(b"kernels-rej")
    stream = drbg.random_bytes(3 * 300)
    # force some rejections: 3-byte chunks decoding >= Q get skipped
    hot = bytearray(stream)
    for i in range(0, 90, 9):
        hot[i:i + 3] = b"\xff\xff\x7f"
    cases = [(stream, 256), (bytes(hot), 256), (stream, 1), (stream, 0),
             (b"", 4), (stream[:5], 4), (stream[:3 * 4], 256)]
    for data, limit in cases:
        got = both_modes(lambda: dp.rej_uniform(data, limit))
        assert got["ref"] == got["fast"], (len(data), limit)
        coeffs, used = got["fast"]
        assert used <= len(data) and all(c < dp.Q for c in coeffs)


@pytest.mark.parametrize("name", ["dilithium2", "dilithium3", "dilithium5"])
def test_dilithium_sign_roundtrip_ref_equals_fast(name):
    from repro.pqc.registry import get_sig

    sig = get_sig(name)
    msg = b"kernel equivalence " + name.encode()

    def run():
        drbg = Drbg(b"kernels-dsig-" + name.encode())
        pk, sk = sig.keygen(drbg)
        s = sig.sign(sk, msg, Drbg(b"sign-" + name.encode()))
        return pk, sk, s, sig.verify(pk, msg, s), sig.verify(pk, msg + b"!", s)
    got = both_modes(run)
    assert got["ref"] == got["fast"]
    assert got["fast"][3] is True and got["fast"][4] is False


# -- campaign-level equivalence ----------------------------------------------

_RECORD_SNIPPET = """
import hashlib, pickle, sys
from repro.core.experiment import ExperimentConfig, run_experiment
result = run_experiment(
    ExperimentConfig(kem="kyber512", sig="dilithium2", duration=5.0))
sys.stdout.write(hashlib.sha256(pickle.dumps(result)).hexdigest())
"""


def test_recording_bit_identical_across_kernel_modes(tmp_path):
    """A fresh-interpreter recording under ref == one under fast.

    This is the contract the whole PR rests on: kernel selection may
    change wall-clock time, never a single byte of any artifact.
    """
    digests = {}
    for mode in ("ref", "fast"):
        env = dict(os.environ,
                   PQTLS_KERNELS=mode,
                   REPRO_CACHE_DIR=str(tmp_path / mode),
                   PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
        proc = subprocess.run([sys.executable, "-c", _RECORD_SNIPPET],
                              capture_output=True, text=True, env=env,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr
        digests[mode] = proc.stdout.strip()
    assert digests["ref"] == digests["fast"]
