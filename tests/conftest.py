"""Shared fixtures and hypothesis settings."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.crypto.drbg import Drbg

# Crypto-heavy properties: fewer examples, no deadline (pure-Python crypto).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def drbg() -> Drbg:
    return Drbg("pytest-fixture-seed")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-size PQC / full-campaign tests (minutes when the cache is cold)"
    )
