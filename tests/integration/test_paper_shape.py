"""The paper's headline findings must hold in the reproduction.

These are the qualitative claims of §5/§6/§7 — who wins, by roughly what
factor, where crossovers fall. Uses the experiment cache; the heavy
SPHINCS+ cases are marked slow.
"""

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment


def _run(kem, sig, scenario="none", **kwargs):
    return run_experiment(ExperimentConfig(kem=kem, sig=sig, scenario=scenario,
                                           **kwargs))


def test_kyber_is_on_par_with_x25519_at_level_one():
    kyber = _run("kyber512", "rsa:2048")
    x25519 = _run("x25519", "rsa:2048")
    assert kyber.total_median < x25519.total_median * 1.25


def test_hqc_is_on_par_at_level_one():
    hqc = _run("hqc128", "rsa:2048")
    x25519 = _run("x25519", "rsa:2048")
    assert hqc.total_median < x25519.total_median * 1.6


def test_dilithium_and_falcon_beat_rsa2048():
    """'Dilithium and Falcon are even faster than RSA' (conclusion)."""
    rsa = _run("x25519", "rsa:2048")
    for sig in ("dilithium2", "dilithium3", "dilithium5", "falcon512"):
        assert _run("x25519", sig).part_b_median < rsa.part_b_median, sig


def test_pqc_outperforms_classical_on_higher_levels():
    """'On NIST security levels three to five, PQC outperforms all
    algorithms in use today.'"""
    assert _run("kyber768", "rsa:2048").part_a_median < _run(
        "p384", "rsa:2048").part_a_median / 3
    assert _run("kyber1024", "rsa:2048").part_a_median < _run(
        "p521", "rsa:2048").part_a_median / 5


def test_hybrids_no_significant_overhead_level_one():
    for hybrid, pure in (("p256_kyber512", "kyber512"),
                         ("p256_hqc128", "hqc128")):
        h = _run(hybrid, "rsa:2048")
        p = _run(pure, "rsa:2048")
        assert h.total_median < p.total_median + 0.0015, hybrid


def test_classical_bottlenecks_hybrids_on_level_five():
    """p521 hybrids are dominated by the p521 half."""
    hybrid = _run("p521_kyber1024", "rsa:2048")
    classical = _run("p521", "rsa:2048")
    pure = _run("kyber1024", "rsa:2048")
    assert hybrid.total_median > classical.total_median * 0.9
    assert hybrid.total_median > pure.total_median * 2


def test_bike_is_the_slow_kem_at_level_one():
    bike = _run("bikel1", "rsa:2048")
    others = [_run(k, "rsa:2048") for k in ("kyber512", "hqc128", "x25519")]
    assert all(bike.part_b_median > o.part_b_median for o in others)


def test_rsa_scaling_with_modulus():
    latencies = [_run("x25519", f"rsa:{bits}").part_b_median
                 for bits in (1024, 2048, 3072, 4096)]
    assert latencies == sorted(latencies)
    assert latencies[3] > 4 * latencies[0]


def test_data_volumes_match_paper_shape():
    """Kyber adds ~800 B to the CH; HQC's server flight is the largest KEM."""
    x = _run("x25519", "rsa:2048")
    kyber = _run("kyber512", "rsa:2048")
    hqc = _run("hqc256", "rsa:2048")
    assert 700 <= kyber.client_bytes - x.client_bytes <= 900
    assert hqc.server_bytes > 15000


def test_loss_scenario_mildest_bandwidth_hits_big_payloads():
    """Finding (i)/(ii) of §5.4."""
    none = _run("kyber512", "rsa:2048")
    loss = _run("kyber512", "rsa:2048", scenario="high-loss")
    bandwidth = _run("kyber512", "rsa:2048", scenario="low-bandwidth")
    assert loss.total_median < bandwidth.total_median
    assert bandwidth.total_median > 5 * none.total_median


def test_latency_grows_linearly_with_delay():
    """Finding (iii): 1 s of RTT adds ~1 s for 1-RTT handshakes."""
    none = _run("kyber512", "rsa:2048")
    delay = _run("kyber512", "rsa:2048", scenario="high-delay")
    assert delay.total_median == pytest.approx(none.total_median + 1.0, abs=0.05)


def test_realistic_scenarios_dominated_by_rtt():
    lte = _run("kyber512", "rsa:2048", scenario="lte-m")
    g5 = _run("kyber512", "rsa:2048", scenario="5g")
    assert 0.2 < lte.total_median < 0.6
    assert 0.044 < g5.total_median < 0.08


@pytest.mark.slow
def test_sphincs_is_an_order_of_magnitude_worse():
    """'handshake latency and data usage were up to 20x higher'."""
    sphincs = _run("x25519", "sphincs128")
    rsa = _run("x25519", "rsa:2048")
    assert sphincs.part_b_median > 7 * rsa.part_b_median
    assert sphincs.server_bytes > 15 * rsa.server_bytes


@pytest.mark.slow
def test_sphincs_cwnd_overflow_rtts():
    """sphincs128 -> 2 RTT, sphincs192 -> 3, sphincs256 -> 4 at 1 s RTT."""
    for sig, rtts in (("sphincs128", 2), ("sphincs192", 3), ("sphincs256", 4)):
        result = _run("x25519", sig, scenario="high-delay")
        assert rtts - 0.2 < result.total_median < rtts + 0.3, sig


@pytest.mark.slow
def test_amplification_factor_up_to_tens():
    """§5.5: server replies up to ~x96 the client request (SPHINCS+)."""
    sphincs = _run("x25519", "sphincs256")
    assert sphincs.server_bytes / sphincs.client_bytes > 40
    rsa = _run("x25519", "rsa:2048")
    assert rsa.server_bytes / rsa.client_bytes < 4
