"""End-to-end: real PQ-TLS handshakes through the full simulated testbed."""

import pytest

from repro.crypto.drbg import Drbg
from repro.netsim.scripted import load_credentials
from repro.netsim.testbed import Testbed
from repro.tls.server import BufferPolicy


def _bed(kem, sig, **kwargs):
    cert, sk, store = load_credentials(sig)
    return Testbed(kem, sig, cert, sk, store, **kwargs)


@pytest.mark.parametrize("kem,sig", [
    ("kyber512", "dilithium2"),
    ("p256_kyber512", "p256_dilithium2"),
    ("bikel1", "falcon512"),
    ("hqc128", "rsa:2048"),
])
def test_real_pq_handshakes_over_testbed(kem, sig):
    trace = _bed(kem, sig).run_handshake()
    assert trace.part_a > 0 and trace.part_b > 0
    assert trace.server_wire_bytes > 1000


def test_hybrid_overhead_is_small_at_level_one():
    """Paper: 'almost no overhead in using hybrid algorithms' (L1)."""
    pure = _bed("kyber512", "rsa:2048").run_handshake()
    hybrid = _bed("p256_kyber512", "rsa:2048").run_handshake()
    assert hybrid.total < pure.total + 0.0008  # < ~1 ms extra


def test_high_delay_cwnd_overflow_matrix():
    """Table 4's RTT counts at 1 s RTT."""
    expectations = [
        ("x25519", "rsa:1024", 1), ("x25519", "dilithium2", 1),
        ("x25519", "falcon512", 1), ("x25519", "dilithium5", 2),
        ("kyber512", "rsa:2048", 1),
    ]
    for kem, sig, rtts in expectations:
        total = _bed(kem, sig, scenario="high-delay").run_handshake().total
        assert rtts - 0.1 < total < rtts + 0.3, (kem, sig, total)


def test_low_bandwidth_proportional_to_bytes():
    small = _bed("x25519", "rsa:1024", scenario="low-bandwidth").run_handshake()
    big = _bed("x25519", "dilithium5", scenario="low-bandwidth").run_handshake()
    ratio_bytes = (big.server_wire_bytes + big.client_wire_bytes) / (
        small.server_wire_bytes + small.client_wire_bytes)
    ratio_latency = big.total / small.total
    # mildly super-linear, as in the paper (Table 4b: rsa:1024 -> dilithium5
    # is ~7.9x the bytes but ~9.7x the latency: multi-flight pacing)
    assert ratio_bytes * 0.9 < ratio_latency < ratio_bytes * 1.6


def test_lte_m_completes_with_losses():
    bed = _bed("kyber512", "dilithium2", scenario="lte-m")
    totals = [bed.run_handshake().total for _ in range(8)]
    assert all(t >= 0.2 for t in totals)   # at least one RTT
    assert min(totals) < 0.5               # clean handshakes stay ~1 RTT


def test_whitebox_bike_attribution_flows_to_profile():
    trace = _bed("bikel1", "dilithium2", profiling=True).run_handshake()
    assert trace.client_cpu.get("libssl", 0) > trace.client_cpu.get("libcrypto", 0)
    # the server side (encaps) stays in libcrypto
    assert trace.server_cpu["libcrypto"] > trace.server_cpu["libssl"]


def test_default_vs_optimized_latency_effect():
    """The paper's Figure 3c: the optimized push helps when KA and SA both
    cost real CPU (overlap), here p256 decaps with rsa:3072 signing."""
    optimized = _bed("p256", "rsa:3072").run_handshake()
    default = _bed("p256", "rsa:3072", policy=BufferPolicy.DEFAULT).run_handshake()
    assert optimized.total <= default.total + 1e-9


def test_traces_are_reproducible_with_fixed_drbg():
    t1 = _bed("kyber512", "dilithium2", drbg=Drbg("fixed")).run_handshake()
    t2 = _bed("kyber512", "dilithium2", drbg=Drbg("fixed")).run_handshake()
    assert t1.part_a == t2.part_a and t1.part_b == t2.part_b
